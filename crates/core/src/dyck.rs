//! The Dyck/CFL-reachability disjointness engine.
//!
//! "Optimal Dyck Reachability for Data-Dependence and Alias Analysis"
//! (Chatterjee et al.) recasts path-expression disjointness as a
//! graph-reachability problem. This module is that second backend: the
//! axiom set plus the two access-path languages are lowered onto a finite
//! *heap-shape product graph* whose vertices are pairs of Brzozowski
//! residuals `(origin-mode, d(a), d(b))`, and the query is answered by a
//! single backward reachability pass — is a *conflict* vertex (one where
//! the two paths may denote the same heap node and no axiom discharges
//! it) reachable from the start vertex?
//!
//! # The product graph
//!
//! A vertex `(m, ra, rb)` stands for the claim "after reading some prefix
//! pair, the two cursors are related by `m` (provably **equal** for
//! [`Origin::Same`], provably **distinct** for [`Origin::Distinct`]) and
//! the remaining languages are `L(ra)` and `L(rb)`". Edges step one field
//! symbol on each side (heap edges are single-valued, so equal cursors
//! stepping the same field stay equal). When an aliasing axiom applies to
//! the single-symbol step (`s ∈ L(lhs)`, `t ∈ L(rhs)` for the matching
//! origin form), the successor cursors are provably distinct; otherwise
//! the relation is unknown and the vertex must be safe under **both**
//! successor modes — a sound case split over all heaps.
//!
//! # Conflict vertices
//!
//! * `m = Same` with both residuals nullable: the two paths can both end
//!   *here*, on the same node — a dependence no axiom can talk away.
//! * A nullable residual on one side whose opposite side still has
//!   nonempty words, with no axiom of the matching origin form covering
//!   the `ε`-versus-rest split (the acyclicity axioms `p.F+ <> p.eps` are
//!   exactly this shape).
//! * Any vertex cut off by the state cap or the budget (conservatively
//!   treated as conflicting — limits may only weaken the verdict).
//!
//! A vertex whose full residual pair is contained in one axiom's two
//! sides is discharged outright and sprouts no edges.
//!
//! The pass is sound but deliberately incomplete: equality axioms are
//! ignored (dropping constraints only grows the model class, so a proof
//! here is a proof everywhere), and cyclic-structure queries that need
//! rewriting stay `Maybe`. The point of the portfolio is that this engine
//! answers a different (and differently-priced) slice of the query space
//! than the axiomatic prover.

use crate::config::Budget;
use crate::goal::Origin;
use crate::verdict::MaybeReason;
use apt_axioms::{AxiomKind, AxiomSet};
use apt_regex::derivative::derive;
use apt_regex::{ops, FxHashMap, LimitExceeded, Limits, Path, Regex, RegexId, Symbol};
use std::time::Instant;

/// Hard cap on product-graph vertices when the caller does not bound them
/// through [`Budget::max_dfa_states`].
pub const DEFAULT_STATE_CAP: usize = 2048;

/// The result of one Dyck-reachability decision.
#[derive(Debug, Clone)]
pub struct DyckResult {
    /// Whether disjointness was established.
    pub proved: bool,
    /// Why the answer is not definite (`None` when `proved`, or when the
    /// search completed and the lowering genuinely cannot decide the
    /// query).
    pub reason: Option<MaybeReason>,
    /// Product-graph vertices materialized.
    pub states: usize,
    /// Language-containment checks performed against axiom sides.
    pub subset_checks: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Vertex {
    mode: Origin,
    ra: RegexId,
    rb: RegexId,
}

struct Search<'a> {
    axioms: &'a AxiomSet,
    limits: Limits,
    deadline: Option<Instant>,
    cancel: Option<crate::config::CancelToken>,
    state_cap: usize,
    /// Local memo for containment checks (ids are process-global, the
    /// memo is per-query).
    subset_memo: FxHashMap<(RegexId, RegexId), bool>,
    subset_checks: u64,
    /// Set when any containment check was stopped by a limit: a `false`
    /// answer may then be a budget artifact, so a failed proof degrades
    /// to the recorded reason instead of "genuinely unknown".
    degraded: Option<MaybeReason>,
}

impl Search<'_> {
    fn check_stop(&mut self) -> Option<MaybeReason> {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Some(MaybeReason::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(MaybeReason::DeadlineExceeded);
            }
        }
        None
    }

    /// `L(sub) ⊆ L(sup)`, budget-bounded; a limit hit reads as "not
    /// contained" and records the degradation.
    fn subset(&mut self, sub: RegexId, sup: RegexId) -> bool {
        if let Some(&hit) = self.subset_memo.get(&(sub, sup)) {
            return hit;
        }
        self.subset_checks += 1;
        let answer = match ops::try_is_subset(&sub.to_regex(), &sup.to_regex(), &self.limits) {
            Ok(holds) => holds,
            Err(e) => {
                let reason = match e {
                    LimitExceeded::States { .. } => MaybeReason::RegexBudget,
                    LimitExceeded::Deadline => MaybeReason::DeadlineExceeded,
                    LimitExceeded::Cancelled => MaybeReason::Cancelled,
                };
                self.degraded.get_or_insert(reason);
                false
            }
        };
        self.subset_memo.insert((sub, sup), answer);
        answer
    }

    /// Whether some axiom of `kind` covers the full residual pair (either
    /// side assignment) — the vertex is then discharged outright.
    fn discharged(&mut self, kind: AxiomKind, ra: RegexId, rb: RegexId) -> bool {
        let pairs: Vec<(RegexId, RegexId)> = self
            .axioms
            .of_kind(kind)
            .map(|ax| (ax.lhs_id(), ax.rhs_id()))
            .collect();
        for (lhs, rhs) in pairs {
            if (self.subset(ra, lhs) && self.subset(rb, rhs))
                || (self.subset(ra, rhs) && self.subset(rb, lhs))
            {
                return true;
            }
        }
        false
    }

    /// Whether some axiom of `kind` separates the single-symbol words `s`
    /// and `t` — the step's successor cursors are then provably distinct.
    fn step_axiom(&self, kind: AxiomKind, s: Symbol, t: Symbol) -> bool {
        self.axioms.of_kind(kind).any(|ax| {
            (ax.lhs().matches(&[s]) && ax.rhs().matches(&[t]))
                || (ax.lhs().matches(&[t]) && ax.rhs().matches(&[s]))
        })
    }

    /// Whether some axiom of `kind` discharges "one path ends here, the
    /// other continues": an `ε`-admitting side for the ended path and the
    /// continuing residual contained in the other side (mod `ε`).
    fn epsilon_split_covered(&mut self, kind: AxiomKind, continuing: RegexId) -> bool {
        let pairs: Vec<(RegexId, RegexId)> = self
            .axioms
            .of_kind(kind)
            .map(|ax| (ax.lhs_id(), ax.rhs_id()))
            .collect();
        for (lhs, rhs) in pairs {
            for (eps_side, rest_side) in [(lhs, rhs), (rhs, lhs)] {
                if eps_side.to_regex().is_nullable() {
                    let padded =
                        RegexId::intern(&Regex::alt(rest_side.to_regex(), Regex::epsilon()));
                    if self.subset(continuing, padded) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

fn axiom_kind_for(mode: Origin) -> AxiomKind {
    match mode {
        Origin::Same => AxiomKind::DisjointSameOrigin,
        Origin::Distinct => AxiomKind::DisjointDistinctOrigins,
    }
}

/// Decides `origin ⊢ a <> b` by reachability on the residual product
/// graph. Sound: `proved == true` implies the paths are disjoint in every
/// heap satisfying the disjointness axioms (equality axioms are ignored,
/// which only enlarges the model class).
pub fn decide(
    axioms: &AxiomSet,
    origin: Origin,
    a: &Path,
    b: &Path,
    budget: &Budget,
    state_cap: usize,
) -> DyckResult {
    let mut limits = Limits::none();
    if let Some(m) = budget.max_dfa_states {
        limits = limits.with_max_states(m);
    }
    let deadline = budget.deadline.map(|d| Instant::now() + d);
    if let Some(d) = deadline {
        limits = limits.with_deadline(d);
    }
    if let Some(c) = &budget.cancel {
        limits = limits.with_cancel(c.as_flag());
    }
    let mut search = Search {
        axioms,
        limits,
        deadline,
        cancel: budget.cancel.clone(),
        state_cap: state_cap.max(1),
        subset_memo: FxHashMap::default(),
        subset_checks: 0,
        degraded: None,
    };

    let ra0 = a.to_regex();
    let rb0 = b.to_regex();
    // The stepping alphabet: only symbols the two path languages can
    // actually consume (derivatives by anything else are empty).
    let mut alpha = ra0.symbols();
    alpha.extend(rb0.symbols());
    alpha.sort_unstable();
    alpha.dedup();

    let start = Vertex {
        mode: origin,
        ra: RegexId::intern(&ra0),
        rb: RegexId::intern(&rb0),
    };

    // Forward exploration: materialize vertices, their conjunctive
    // successor requirements, and the initial conflict set.
    let mut index: FxHashMap<Vertex, usize> = FxHashMap::default();
    let mut deps: Vec<Vec<usize>> = Vec::new(); // vertex -> required successors
    let mut bad: Vec<bool> = Vec::new();
    let mut queue: Vec<Vertex> = Vec::new();
    let mut verts: Vec<Vertex> = Vec::new();

    let intern_vertex = |v: Vertex,
                         index: &mut FxHashMap<Vertex, usize>,
                         deps: &mut Vec<Vec<usize>>,
                         bad: &mut Vec<bool>,
                         verts: &mut Vec<Vertex>,
                         queue: &mut Vec<Vertex>| {
        *index.entry(v).or_insert_with(|| {
            let id = deps.len();
            deps.push(Vec::new());
            bad.push(false);
            verts.push(v);
            queue.push(v);
            id
        })
    };
    intern_vertex(
        start, &mut index, &mut deps, &mut bad, &mut verts, &mut queue,
    );

    let mut head = 0;
    let mut capped = false;
    while head < queue.len() {
        if let Some(reason) = search.check_stop() {
            return DyckResult {
                proved: false,
                reason: Some(reason),
                states: deps.len(),
                subset_checks: search.subset_checks,
            };
        }
        let v = queue[head];
        let id = index[&v];
        head += 1;

        let ra = v.ra.to_regex();
        let rb = v.rb.to_regex();
        let kind = axiom_kind_for(v.mode);

        // Whole-residual discharge: no edges, never a conflict.
        if search.discharged(kind, v.ra, v.rb) {
            continue;
        }

        let ra_nullable = ra.is_nullable();
        let rb_nullable = rb.is_nullable();
        let ra_steps = !ra.first_symbols().is_empty();
        let rb_steps = !rb.first_symbols().is_empty();

        // Base conflict: equal cursors, both paths may end here.
        if v.mode == Origin::Same && ra_nullable && rb_nullable {
            bad[id] = true;
            continue;
        }
        // ε-versus-rest splits: one path ends at the current cursor while
        // the other continues; only an ε-admitting axiom of the matching
        // form (acyclicity) can discharge it.
        if ra_nullable && rb_steps && !search.epsilon_split_covered(kind, v.rb) {
            bad[id] = true;
            continue;
        }
        if rb_nullable && ra_steps && !search.epsilon_split_covered(kind, v.ra) {
            bad[id] = true;
            continue;
        }

        // Symbol-pair steps. Every required successor is conjunctive: one
        // unprovable continuation word pair defeats the whole claim.
        for &s in &alpha {
            let da = derive(&ra, s);
            if da.is_empty_language() {
                continue;
            }
            let ia = RegexId::intern(&da);
            for &t in &alpha {
                let db = derive(&rb, t);
                if db.is_empty_language() {
                    continue;
                }
                let ib = RegexId::intern(&db);
                let mut need: Vec<Origin> = Vec::with_capacity(2);
                if v.mode == Origin::Same && s == t {
                    // Single-valued fields: equal cursors stay equal.
                    need.push(Origin::Same);
                } else if search.step_axiom(kind, s, t) {
                    need.push(Origin::Distinct);
                } else {
                    // Successor relation unknown: sound under both.
                    need.push(Origin::Same);
                    need.push(Origin::Distinct);
                }
                for mode in need {
                    let succ = Vertex {
                        mode,
                        ra: ia,
                        rb: ib,
                    };
                    if deps.len() >= search.state_cap && !index.contains_key(&succ) {
                        capped = true;
                        bad[id] = true;
                        continue;
                    }
                    let sid = intern_vertex(
                        succ, &mut index, &mut deps, &mut bad, &mut verts, &mut queue,
                    );
                    deps[id].push(sid);
                }
            }
        }
    }

    // Backward conflict propagation: a vertex requiring a conflicting
    // successor conflicts itself (requirements are conjunctive).
    let n = deps.len();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (from, succs) in deps.iter().enumerate() {
        for &to in succs {
            rev[to].push(from);
        }
    }
    let mut work: Vec<usize> = (0..n).filter(|&i| bad[i]).collect();
    while let Some(i) = work.pop() {
        for &p in &rev[i] {
            if !bad[p] {
                bad[p] = true;
                work.push(p);
            }
        }
    }

    let proved = !bad[index[&start]];
    let reason = if proved {
        None
    } else if capped {
        Some(search.degraded.unwrap_or(MaybeReason::RegexBudget))
    } else {
        Some(search.degraded.unwrap_or(MaybeReason::GenuinelyUnknown))
    };
    DyckResult {
        proved,
        reason,
        states: n,
        subset_checks: search.subset_checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_axioms::adds;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn fig3() -> AxiomSet {
        adds::leaf_linked_tree_axioms()
    }

    #[test]
    fn proves_figure3_sibling_leaves() {
        let r = decide(
            &fig3(),
            Origin::Same,
            &p("L.L.N"),
            &p("L.R.N"),
            &Budget::new(),
            DEFAULT_STATE_CAP,
        );
        assert!(r.proved, "L.L.N <> L.R.N must be proved: {r:?}");
    }

    #[test]
    fn refuses_identical_paths() {
        let r = decide(
            &fig3(),
            Origin::Same,
            &p("L.L.N"),
            &p("L.L.N"),
            &Budget::new(),
            DEFAULT_STATE_CAP,
        );
        assert!(!r.proved);
        assert_eq!(r.reason, Some(MaybeReason::GenuinelyUnknown));
    }

    #[test]
    fn proves_distinct_origin_injectivity_chain() {
        // forall p<>q, p.N <> q.N: distinct cursors stepping N stay
        // distinct, so p.N.N <> q.N.N from distinct origins.
        let axioms = AxiomSet::parse(
            "A1: forall p <> q, p.N <> q.N\n\
             A2: forall p, p.N+ <> p.eps",
        )
        .unwrap();
        let r = decide(
            &axioms,
            Origin::Distinct,
            &p("N.N"),
            &p("N.N"),
            &Budget::new(),
            DEFAULT_STATE_CAP,
        );
        assert!(r.proved, "{r:?}");
    }

    #[test]
    fn acyclicity_discharges_epsilon_split() {
        // p <> p.N+ needs the acyclicity axiom's ε side.
        let axioms = AxiomSet::parse(
            "A1: forall p <> q, p.N <> q.N\n\
             A2: forall p, p.N+ <> p.eps",
        )
        .unwrap();
        let r = decide(
            &axioms,
            Origin::Same,
            &p("eps"),
            &p("N+"),
            &Budget::new(),
            DEFAULT_STATE_CAP,
        );
        assert!(r.proved, "{r:?}");
        // Without acyclicity the split must stay open.
        let weak = AxiomSet::parse("A1: forall p <> q, p.N <> q.N").unwrap();
        let r = decide(
            &weak,
            Origin::Same,
            &p("eps"),
            &p("N+"),
            &Budget::new(),
            DEFAULT_STATE_CAP,
        );
        assert!(!r.proved);
    }

    #[test]
    fn refuses_same_origin_lists_without_divergence() {
        // p.N vs p.N.N on a list: the longer path re-meets the shorter
        // one's node only if cycles exist; acyclic axioms DO prove it.
        let axioms = AxiomSet::parse(
            "A1: forall p <> q, p.N <> q.N\n\
             A2: forall p, p.N+ <> p.eps",
        )
        .unwrap();
        let r = decide(
            &axioms,
            Origin::Same,
            &p("N"),
            &p("N.N"),
            &Budget::new(),
            DEFAULT_STATE_CAP,
        );
        assert!(r.proved, "{r:?}");
        // But from *distinct* origins q.N can be p's own cell: unprovable.
        let r = decide(
            &axioms,
            Origin::Distinct,
            &p("eps"),
            &p("N"),
            &Budget::new(),
            DEFAULT_STATE_CAP,
        );
        assert!(!r.proved, "{r:?}");
    }

    #[test]
    fn state_cap_degrades_to_maybe() {
        let r = decide(
            &fig3(),
            Origin::Same,
            &p("(L|R)+.N"),
            &p("(L|R)+.L.N"),
            &Budget::new(),
            1,
        );
        assert!(!r.proved);
        assert!(r.reason.is_some());
    }

    #[test]
    fn cancellation_stops_the_search() {
        let token = crate::config::CancelToken::new();
        token.cancel();
        let r = decide(
            &fig3(),
            Origin::Same,
            &p("L.L.N"),
            &p("L.R.N"),
            &Budget::new().with_cancel(token),
            DEFAULT_STATE_CAP,
        );
        assert!(!r.proved);
        assert_eq!(r.reason, Some(MaybeReason::Cancelled));
    }

    #[test]
    fn theorem_t_shape_is_proved() {
        // Theorem T (ncolE+ <> nrowE+.ncolE+) under the full Appendix A
        // set: S4 contains the residual pair outright.
        let axioms = adds::sparse_matrix_axioms();
        let r = decide(
            &axioms,
            Origin::Same,
            &p("ncolE+"),
            &p("nrowE+.ncolE+"),
            &Budget::new(),
            DEFAULT_STATE_CAP,
        );
        assert!(r.proved, "{r:?}");
        // The minimal §5 set needs the axiomatic prover's common-prefix
        // induction — out of reach for this lowering, which must stay
        // honestly Maybe (the portfolio's axiomatic lane wins that one).
        let minimal = adds::sparse_matrix_minimal_axioms();
        let r = decide(
            &minimal,
            Origin::Same,
            &p("ncolE+"),
            &p("nrowE+.ncolE+"),
            &Budget::new(),
            DEFAULT_STATE_CAP,
        );
        assert!(!r.proved);
    }
}
