//! Prover configuration and statistics.
//!
//! §4.2 of the paper: "the proof process can be pruned heuristically and
//! cutoff points set, allowing a tradeoff between accuracy and efficiency.
//! This may even be user controllable, e.g. via a compiler option."
//! [`ProverConfig`] is that compiler option; the individual rule switches
//! additionally drive the ablation benchmarks.

/// Tunable limits and rule switches for the [`crate::Prover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProverConfig {
    /// Total number of goal attempts before the prover gives up (returns
    /// Maybe). Guards against pathological axiom sets.
    pub fuel: u64,
    /// Maximum proof-tree depth.
    pub max_depth: usize,
    /// Maximum number of equality-axiom rewrites along one branch.
    pub max_rewrites: usize,
    /// Enable the suffix-decomposition rule (the core of `proveDisj`).
    pub enable_decompose: bool,
    /// Enable single-field tail peeling via injectivity axioms.
    pub enable_tail_peel: bool,
    /// Enable head peeling of common definite fields.
    pub enable_head_peel: bool,
    /// Enable the Kleene-run induction rules (closure peels).
    pub enable_closure_peel: bool,
    /// Enable alternation splitting.
    pub enable_alt_split: bool,
    /// Enable rewriting with equality axioms.
    pub enable_rewrite: bool,
}

impl ProverConfig {
    /// The default, fully-enabled configuration.
    pub fn new() -> ProverConfig {
        ProverConfig {
            fuel: 100_000,
            max_depth: 64,
            max_rewrites: 4,
            enable_decompose: true,
            enable_tail_peel: true,
            enable_head_peel: true,
            enable_closure_peel: true,
            enable_alt_split: true,
            enable_rewrite: true,
        }
    }

    /// A configuration with every rule except direct axiom application
    /// disabled — approximates a pure "intersect the path expressions"
    /// tester and is used by the ablation benches.
    pub fn direct_only() -> ProverConfig {
        ProverConfig {
            enable_decompose: false,
            enable_tail_peel: false,
            enable_head_peel: false,
            enable_closure_peel: false,
            enable_alt_split: false,
            enable_rewrite: false,
            ..ProverConfig::new()
        }
    }
}

impl Default for ProverConfig {
    fn default() -> Self {
        ProverConfig::new()
    }
}

/// Counters describing one prover run; the §4.2 complexity experiment
/// reports these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProverStats {
    /// Goals attempted (cache misses).
    pub goals_attempted: u64,
    /// Goals answered from the proof cache.
    pub cache_hits: u64,
    /// Regular-expression subset tests performed (the dominant cost per
    /// §4.2).
    pub subset_checks: u64,
    /// Goals abandoned because fuel or depth ran out.
    pub cutoffs: u64,
}

impl ProverStats {
    /// Adds another run's counters into this one.
    pub fn merge(&mut self, other: &ProverStats) {
        self.goals_attempted += other.goals_attempted;
        self.cache_hits += other.cache_hits;
        self.subset_checks += other.subset_checks;
        self.cutoffs += other.cutoffs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let c = ProverConfig::default();
        assert!(c.enable_decompose && c.enable_tail_peel && c.enable_closure_peel);
        assert!(c.fuel > 0);
    }

    #[test]
    fn direct_only_disables_structural_rules() {
        let c = ProverConfig::direct_only();
        assert!(!c.enable_decompose);
        assert!(!c.enable_tail_peel);
    }

    #[test]
    fn stats_merge_adds() {
        let mut a = ProverStats {
            goals_attempted: 1,
            cache_hits: 2,
            subset_checks: 3,
            cutoffs: 0,
        };
        a.merge(&ProverStats {
            goals_attempted: 10,
            cache_hits: 20,
            subset_checks: 30,
            cutoffs: 1,
        });
        assert_eq!(a.goals_attempted, 11);
        assert_eq!(a.cache_hits, 22);
        assert_eq!(a.subset_checks, 33);
        assert_eq!(a.cutoffs, 1);
    }
}
