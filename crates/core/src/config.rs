//! Prover configuration, resource budgets, and statistics.
//!
//! §4.2 of the paper: "the proof process can be pruned heuristically and
//! cutoff points set, allowing a tradeoff between accuracy and efficiency.
//! This may even be user controllable, e.g. via a compiler option."
//! [`ProverConfig`] is that compiler option. The [`Budget`] half of it
//! unifies every resource brake the prover honours — search fuel,
//! wall-clock deadline, DFA state budget, proof-cache capacity, and a
//! cooperative cancellation token — so degradation is a single, uniformly
//! plumbed concept rather than a scatter of counters.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::verdict::MaybeReason;

/// A shareable cooperative cancellation flag.
///
/// Cloning yields a handle to the *same* flag; any holder may call
/// [`CancelToken::cancel`], and the prover polls it between goal attempts
/// and inside the DFA constructions. Cancellation is advisory and
/// monotonic: once set it stays set.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent, callable from any thread).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The underlying shared flag (for handing to `apt_regex::Limits`).
    pub fn as_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

impl Eq for CancelToken {}

/// Unified resource budget for one prover (or one query batch).
///
/// Every field is an independent brake; `None` (or `u64::MAX` fuel) means
/// "unbounded". Exhausting any brake degrades the answer to *Maybe* with
/// the corresponding [`MaybeReason`] — it never flips a verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Budget {
    /// Total number of goal attempts per query before the prover gives up.
    pub fuel: u64,
    /// Wall-clock allowance per query (measured from the start of the
    /// query, not of the process).
    pub deadline: Option<Duration>,
    /// Maximum DFA states any single subset-construction may materialize.
    pub max_dfa_states: Option<usize>,
    /// Maximum number of settled entries kept in the proof cache; older
    /// unconditional entries are evicted first.
    pub cache_capacity: Option<usize>,
    /// Cooperative cancellation token polled during the search.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// The default budget: generous fuel, everything else unbounded.
    pub fn new() -> Budget {
        Budget {
            fuel: 100_000,
            deadline: None,
            max_dfa_states: None,
            cache_capacity: None,
            cancel: None,
        }
    }

    /// A budget with no limits at all (even fuel).
    pub fn unlimited() -> Budget {
        Budget {
            fuel: u64::MAX,
            ..Budget::new()
        }
    }

    /// Sets the goal-attempt fuel.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Budget {
        self.fuel = fuel;
        self
    }

    /// Sets the per-query wall-clock allowance.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Bounds DFA subset construction.
    #[must_use]
    pub fn with_max_dfa_states(mut self, max_states: usize) -> Budget {
        self.max_dfa_states = Some(max_states);
        self
    }

    /// Bounds the proof cache.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Budget {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Budget {
        self.cancel = Some(cancel);
        self
    }

    /// The requested budget clamped by a server-side `ceiling`: every
    /// brake becomes the tighter of the two, so an untrusted caller can
    /// shrink its allowance but never exceed the ceiling. The requested
    /// cancellation token is kept (the ceiling's is used only when the
    /// request carries none) — cancellation is a liveness device, not a
    /// resource grant.
    #[must_use]
    pub fn clamped_to(&self, ceiling: &Budget) -> Budget {
        fn tighter<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) | (None, x) => x,
            }
        }
        Budget {
            fuel: self.fuel.min(ceiling.fuel),
            deadline: tighter(self.deadline, ceiling.deadline),
            max_dfa_states: tighter(self.max_dfa_states, ceiling.max_dfa_states),
            cache_capacity: tighter(self.cache_capacity, ceiling.cache_capacity),
            cancel: self.cancel.clone().or_else(|| ceiling.cancel.clone()),
        }
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::new()
    }
}

/// Tunable limits and rule switches for the [`crate::Prover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProverConfig {
    /// Resource budget (fuel, deadline, DFA states, cache, cancellation).
    pub budget: Budget,
    /// Maximum proof-tree depth.
    pub max_depth: usize,
    /// Maximum number of equality-axiom rewrites along one branch.
    pub max_rewrites: usize,
    /// Enable the suffix-decomposition rule (the core of `proveDisj`).
    pub enable_decompose: bool,
    /// Enable single-field tail peeling via injectivity axioms.
    pub enable_tail_peel: bool,
    /// Enable head peeling of common definite fields.
    pub enable_head_peel: bool,
    /// Enable the Kleene-run induction rules (closure peels).
    pub enable_closure_peel: bool,
    /// Enable alternation splitting.
    pub enable_alt_split: bool,
    /// Enable rewriting with equality axioms.
    pub enable_rewrite: bool,
    /// Enable the compiled-axiom dispatch index: first-/last-symbol
    /// signature pruning before every axiom applicability check and the
    /// compile-time injectivity map. Dispatch only skips axioms whose
    /// subset checks were certain to fail, so verdicts and proofs are
    /// identical to the linear scan; disabling it restores the literal
    /// §4.2 "try every axiom" loop (the benchmarks' baseline).
    pub enable_axiom_dispatch: bool,
    /// Enable the context-aware negative memo: definite "no rule applies"
    /// failures are cached keyed on the canonical goal with the minimum
    /// rewrite depth they are valid for, instead of only in pristine
    /// root contexts. Budget- and depth-cutoff failures are never
    /// memoized under either setting.
    pub enable_negative_memo: bool,
}

impl ProverConfig {
    /// The default, fully-enabled configuration.
    pub fn new() -> ProverConfig {
        ProverConfig {
            budget: Budget::new(),
            max_depth: 64,
            max_rewrites: 4,
            enable_decompose: true,
            enable_tail_peel: true,
            enable_head_peel: true,
            enable_closure_peel: true,
            enable_alt_split: true,
            enable_rewrite: true,
            enable_axiom_dispatch: true,
            enable_negative_memo: true,
        }
    }

    /// The default rules under a caller-supplied budget.
    pub fn with_budget(budget: Budget) -> ProverConfig {
        ProverConfig {
            budget,
            ..ProverConfig::new()
        }
    }

    /// A configuration with every rule except direct axiom application
    /// disabled — approximates a pure "intersect the path expressions"
    /// tester and is used by the ablation benches.
    pub fn direct_only() -> ProverConfig {
        ProverConfig {
            enable_decompose: false,
            enable_tail_peel: false,
            enable_head_peel: false,
            enable_closure_peel: false,
            enable_alt_split: false,
            enable_rewrite: false,
            ..ProverConfig::new()
        }
    }
}

impl Default for ProverConfig {
    fn default() -> Self {
        ProverConfig::new()
    }
}

/// Per-category cutoff counters: how often each resource brake fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CutoffStats {
    /// Goals abandoned because fuel ran out.
    pub fuel: u64,
    /// Goals abandoned at the depth bound.
    pub depth: u64,
    /// Rewrite opportunities skipped at the rewrite bound.
    pub rewrites: u64,
    /// Searches stopped by the wall-clock deadline.
    pub deadline: u64,
    /// Subset checks abandoned at the DFA state budget.
    pub regex_budget: u64,
    /// Searches stopped by cooperative cancellation.
    pub cancelled: u64,
}

impl CutoffStats {
    /// The per-category difference since an `earlier` snapshot (saturating,
    /// so a reset prover never underflows).
    pub fn since(&self, earlier: &CutoffStats) -> CutoffStats {
        CutoffStats {
            fuel: self.fuel.saturating_sub(earlier.fuel),
            depth: self.depth.saturating_sub(earlier.depth),
            rewrites: self.rewrites.saturating_sub(earlier.rewrites),
            deadline: self.deadline.saturating_sub(earlier.deadline),
            regex_budget: self.regex_budget.saturating_sub(earlier.regex_budget),
            cancelled: self.cancelled.saturating_sub(earlier.cancelled),
        }
    }
}

impl CutoffStats {
    /// Total cutoffs across all categories.
    pub fn total(&self) -> u64 {
        self.fuel + self.depth + self.rewrites + self.deadline + self.regex_budget + self.cancelled
    }

    /// Bumps the counter matching `reason` (no-op for
    /// [`MaybeReason::GenuinelyUnknown`], which is not a cutoff).
    pub fn record(&mut self, reason: MaybeReason) {
        use crate::verdict::SearchLimit;
        match reason {
            MaybeReason::SearchExhausted(SearchLimit::Fuel) => self.fuel += 1,
            MaybeReason::SearchExhausted(SearchLimit::Depth) => self.depth += 1,
            MaybeReason::SearchExhausted(SearchLimit::Rewrites) => self.rewrites += 1,
            MaybeReason::DeadlineExceeded => self.deadline += 1,
            MaybeReason::RegexBudget => self.regex_budget += 1,
            MaybeReason::Cancelled => self.cancelled += 1,
            MaybeReason::GenuinelyUnknown => {}
        }
    }

    /// Adds another run's counters into this one.
    pub fn merge(&mut self, other: &CutoffStats) {
        self.fuel += other.fuel;
        self.depth += other.depth;
        self.rewrites += other.rewrites;
        self.deadline += other.deadline;
        self.regex_budget += other.regex_budget;
        self.cancelled += other.cancelled;
    }
}

/// Counters describing one prover run; the §4.2 complexity experiment
/// reports these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProverStats {
    /// Goals attempted (cache misses).
    pub goals_attempted: u64,
    /// Goals answered from the proof cache.
    pub cache_hits: u64,
    /// Goals answered from a [`crate::DepEngine`]'s shared cross-prover
    /// cache — a subset of `cache_hits`.
    pub shared_hits: u64,
    /// Regular-expression subset tests performed (the dominant cost per
    /// §4.2).
    pub subset_checks: u64,
    /// Axiom candidates admitted by the dispatch index (their subset
    /// checks actually ran).
    pub dispatch_hits: u64,
    /// Axiom candidates pruned by the dispatch index — each one a
    /// linear-scan applicability check (often several subset tests and a
    /// DFA build) that never happened.
    pub dispatch_misses: u64,
    /// Goal failures answered by the context-aware negative memo.
    pub neg_memo_hits: u64,
    /// Goals abandoned per resource category.
    pub cutoffs: CutoffStats,
}

impl ProverStats {
    /// Adds another run's counters into this one.
    pub fn merge(&mut self, other: &ProverStats) {
        self.goals_attempted += other.goals_attempted;
        self.cache_hits += other.cache_hits;
        self.shared_hits += other.shared_hits;
        self.subset_checks += other.subset_checks;
        self.dispatch_hits += other.dispatch_hits;
        self.dispatch_misses += other.dispatch_misses;
        self.neg_memo_hits += other.neg_memo_hits;
        self.cutoffs.merge(&other.cutoffs);
    }

    /// The difference since an `earlier` snapshot of the same prover —
    /// the cost of just the queries run in between.
    pub fn since(&self, earlier: &ProverStats) -> ProverStats {
        ProverStats {
            goals_attempted: self.goals_attempted.saturating_sub(earlier.goals_attempted),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            shared_hits: self.shared_hits.saturating_sub(earlier.shared_hits),
            subset_checks: self.subset_checks.saturating_sub(earlier.subset_checks),
            dispatch_hits: self.dispatch_hits.saturating_sub(earlier.dispatch_hits),
            dispatch_misses: self.dispatch_misses.saturating_sub(earlier.dispatch_misses),
            neg_memo_hits: self.neg_memo_hits.saturating_sub(earlier.neg_memo_hits),
            cutoffs: self.cutoffs.since(&earlier.cutoffs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verdict::{MaybeReason, SearchLimit};

    #[test]
    fn default_enables_everything() {
        let c = ProverConfig::default();
        assert!(c.enable_decompose && c.enable_tail_peel && c.enable_closure_peel);
        assert!(c.budget.fuel > 0);
        assert!(c.budget.deadline.is_none());
    }

    #[test]
    fn direct_only_disables_structural_rules() {
        let c = ProverConfig::direct_only();
        assert!(!c.enable_decompose);
        assert!(!c.enable_tail_peel);
    }

    #[test]
    fn budget_builder_composes() {
        let token = CancelToken::new();
        let b = Budget::new()
            .with_fuel(7)
            .with_deadline(std::time::Duration::from_millis(5))
            .with_max_dfa_states(100)
            .with_cache_capacity(32)
            .with_cancel(token.clone());
        assert_eq!(b.fuel, 7);
        assert_eq!(b.max_dfa_states, Some(100));
        assert_eq!(b.cache_capacity, Some(32));
        assert_eq!(b.cancel, Some(token));
    }

    #[test]
    fn cancel_token_is_shared_and_monotonic() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        assert_eq!(a, b);
        assert_ne!(a, CancelToken::new());
    }

    #[test]
    fn stats_merge_adds_per_category() {
        let mut a = ProverStats {
            goals_attempted: 1,
            cache_hits: 2,
            shared_hits: 0,
            subset_checks: 3,
            ..ProverStats::default()
        };
        let mut other = ProverStats {
            goals_attempted: 10,
            cache_hits: 20,
            shared_hits: 1,
            subset_checks: 30,
            dispatch_hits: 4,
            dispatch_misses: 5,
            neg_memo_hits: 6,
            ..ProverStats::default()
        };
        other
            .cutoffs
            .record(MaybeReason::SearchExhausted(SearchLimit::Fuel));
        other.cutoffs.record(MaybeReason::DeadlineExceeded);
        a.merge(&other);
        assert_eq!(a.goals_attempted, 11);
        assert_eq!(a.cache_hits, 22);
        assert_eq!(a.shared_hits, 1);
        assert_eq!(a.subset_checks, 33);
        assert_eq!(a.dispatch_hits, 4);
        assert_eq!(a.dispatch_misses, 5);
        assert_eq!(a.neg_memo_hits, 6);
        assert_eq!(a.cutoffs.fuel, 1);
        assert_eq!(a.cutoffs.deadline, 1);
        assert_eq!(a.cutoffs.total(), 2);

        let delta = a.since(&other);
        assert_eq!(delta.goals_attempted, 1);
        assert_eq!(delta.cache_hits, 2);
        assert_eq!(delta.shared_hits, 0);
        // a absorbed other's cutoffs, so the delta cancels them out.
        assert_eq!(delta.cutoffs.total(), 0);
    }

    #[test]
    fn genuinely_unknown_is_not_a_cutoff() {
        let mut c = CutoffStats::default();
        c.record(MaybeReason::GenuinelyUnknown);
        assert_eq!(c.total(), 0);
    }
}
