//! Portfolio solving: three engines racing per query.
//!
//! A production dependence test wants a *definite* answer from whichever
//! engine gets there first. This module races up to three backends under
//! the existing [`Budget`]/[`CancelToken`] machinery:
//!
//! * **axiomatic** — the induction prover behind [`DepEngine`]; answers
//!   `No` (disjoint, with a machine-checkable [`Proof`]) or `Yes`
//!   (equality queries).
//! * **dyck** — the [`crate::dyck`] CFL-reachability engine; answers `No`
//!   for disjointness by reachability over the residual product graph.
//! * **refuter** — the [`crate::refuter`] bounded concrete-heap search;
//!   answers `Yes` (a definite dependence) with an attached [`Witness`]
//!   heap that re-validates independently.
//!
//! The first definite verdict cancels the losers through a private race
//! token; the caller's own token keeps working because the coordinator
//! forwards external cancellation into the race. Engines never share
//! mutable state: dyck and refuter hold no handle to the engine's shared
//! proof cache, and the axiomatic prover publishes definite results only,
//! so a cancelled backend cannot pollute anything (`cancelled ⇒ Maybe ⇒`
//! nothing published).
//!
//! Soundness across engines is compositional, not coordinated: axiomatic
//! `No` carries a checkable proof; dyck `No` is a proof over a *superset*
//! of the axiom models; refuter `Yes` carries a concrete heap checked by
//! [`apt_axioms::check_set`] plus path re-execution. Definite verdicts
//! therefore can never disagree unless an engine is unsound — debug
//! builds assert it.

use crate::config::{Budget, CancelToken, ProverStats};
use crate::deptest::Answer;
use crate::dyck;
use crate::engine::{DepEngine, DepQuery, Outcome, QueryKind};
use crate::goal::Origin;
use crate::refuter::{self, RefuterConfig, RefuterOutcome};
use crate::verdict::{MaybeReason, SearchLimit, Verdict};
use apt_axioms::check::check_set;
use apt_axioms::graph::{HeapGraph, NodeId};
use apt_axioms::AxiomSet;
use apt_regex::{Path, Symbol};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Which backend produced an [`Outcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The axiomatic induction prover (the default, proof-carrying path).
    Axiomatic,
    /// The Dyck/CFL-reachability engine.
    Dyck,
    /// The bounded concrete-heap refuter.
    Refuter,
}

impl EngineKind {
    /// All engines, in reporting order.
    pub const ALL: [EngineKind; 3] = [EngineKind::Axiomatic, EngineKind::Dyck, EngineKind::Refuter];

    /// Stable wire/persistence code; round-trips through
    /// [`EngineKind::from_code`].
    pub fn code(&self) -> &'static str {
        match self {
            EngineKind::Axiomatic => "axiomatic",
            EngineKind::Dyck => "dyck",
            EngineKind::Refuter => "refuter",
        }
    }

    /// Parses an [`EngineKind::code`] string.
    pub fn from_code(code: &str) -> Option<EngineKind> {
        Some(match code {
            "axiomatic" => EngineKind::Axiomatic,
            "dyck" => EngineKind::Dyck,
            "refuter" => EngineKind::Refuter,
            _ => return None,
        })
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Which engines a portfolio run may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSelection {
    /// Run the axiomatic prover.
    pub axiomatic: bool,
    /// Run the Dyck-reachability engine.
    pub dyck: bool,
    /// Run the bounded-heap refuter.
    pub refuter: bool,
}

impl EngineSelection {
    /// Every engine.
    pub fn all() -> EngineSelection {
        EngineSelection {
            axiomatic: true,
            dyck: true,
            refuter: true,
        }
    }

    /// The axiomatic prover alone (pre-portfolio behavior).
    pub fn axiomatic_only() -> EngineSelection {
        EngineSelection {
            axiomatic: true,
            dyck: false,
            refuter: false,
        }
    }

    /// Parses a `--engines` spec: `all`, or a comma-separated subset of
    /// `axiomatic`, `dyck`, `refuter`.
    pub fn parse(spec: &str) -> Result<EngineSelection, String> {
        if spec.trim() == "all" {
            return Ok(EngineSelection::all());
        }
        let mut sel = EngineSelection {
            axiomatic: false,
            dyck: false,
            refuter: false,
        };
        for part in spec.split(',') {
            match part.trim() {
                "axiomatic" => sel.axiomatic = true,
                "dyck" => sel.dyck = true,
                "refuter" => sel.refuter = true,
                "" => {}
                other => {
                    return Err(format!(
                        "unknown engine '{other}' (expected all, axiomatic, dyck, refuter)"
                    ))
                }
            }
        }
        if !(sel.axiomatic || sel.dyck || sel.refuter) {
            return Err("no engines selected".to_string());
        }
        Ok(sel)
    }

    /// Whether `kind` is selected.
    pub fn contains(&self, kind: EngineKind) -> bool {
        match kind {
            EngineKind::Axiomatic => self.axiomatic,
            EngineKind::Dyck => self.dyck,
            EngineKind::Refuter => self.refuter,
        }
    }

    /// Number of selected engines.
    pub fn count(&self) -> usize {
        usize::from(self.axiomatic) + usize::from(self.dyck) + usize::from(self.refuter)
    }
}

impl fmt::Display for EngineSelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == EngineSelection::all() {
            return f.write_str("all");
        }
        let mut first = true;
        for kind in EngineKind::ALL {
            if self.contains(kind) {
                if !first {
                    f.write_str(",")?;
                }
                f.write_str(kind.code())?;
                first = false;
            }
        }
        Ok(())
    }
}

/// Portfolio tuning knobs.
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// Engines in play.
    pub engines: EngineSelection,
    /// Largest refuter candidate heap, in nodes (`--refuter-max-heap`).
    pub refuter_max_heap: usize,
    /// Product-graph vertex cap for the Dyck engine.
    pub dyck_state_cap: usize,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            engines: EngineSelection::all(),
            refuter_max_heap: RefuterConfig::default().max_heap_nodes,
            dyck_state_cap: dyck::DEFAULT_STATE_CAP,
        }
    }
}

/// A concrete dependence witness: a small heap satisfying every axiom in
/// which both access paths reach the same node.
///
/// Witnesses are *evidence*, not trust: [`Witness::validate`] re-derives
/// the heap from the edge list, re-checks the axiom set with
/// [`apt_axioms::check_set`], and re-executes both path languages — the
/// same discipline applied to imported proofs (a forged witness is
/// rejected, never believed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Node count; nodes are `0..nodes`.
    pub nodes: usize,
    /// Single-valued field edges `(from, field, to)`.
    pub edges: Vec<(usize, String, usize)>,
    /// The node the first path starts from.
    pub p_origin: usize,
    /// The node the second path starts from (equals `p_origin` for
    /// same-origin queries).
    pub q_origin: usize,
    /// The node both paths reach.
    pub meet: usize,
}

impl Witness {
    /// Rebuilds the heap graph from the edge list.
    ///
    /// Fails on out-of-range nodes or a duplicated `(from, field)` edge
    /// (heaps are single-valued per field).
    pub fn to_heap(&self) -> Result<HeapGraph, String> {
        let mut heap = HeapGraph::new();
        heap.add_nodes(self.nodes);
        for (from, field, to) in &self.edges {
            if *from >= self.nodes || *to >= self.nodes {
                return Err(format!(
                    "witness edge n{from} -{field}-> n{to} out of range (heap has {} nodes)",
                    self.nodes
                ));
            }
            let sym = Symbol::intern(field);
            if heap.edge(NodeId(*from), sym).is_some() {
                return Err(format!("witness duplicates edge n{from}.{field}"));
            }
            heap.set_edge(NodeId(*from), sym, NodeId(*to));
        }
        Ok(heap)
    }

    /// The re-check available without the original query's access paths
    /// (the incremental table stores only the query's rendered key):
    /// structural sanity plus axiom conformance of the decoded heap.
    /// Mirrors the proof spot-check run on imported table entries.
    ///
    /// # Errors
    ///
    /// Describes the first structural or axiom violation found.
    pub fn check_heap(&self, axioms: &AxiomSet) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("witness heap has no nodes".to_string());
        }
        for (name, node) in [
            ("p", self.p_origin),
            ("q", self.q_origin),
            ("meet", self.meet),
        ] {
            if node >= self.nodes {
                return Err(format!("witness {name} node n{node} out of range"));
            }
        }
        let heap = self.to_heap()?;
        if let Err(v) = check_set(&heap, axioms) {
            return Err(format!("witness heap violates axiom {}", v.axiom));
        }
        Ok(())
    }

    /// Full independent validation against the query the witness claims
    /// to refute: structural sanity, origin relation, axiom conformance,
    /// and re-execution of both paths to the meet node.
    pub fn validate(
        &self,
        axioms: &AxiomSet,
        origin: Origin,
        a: &Path,
        b: &Path,
    ) -> Result<(), String> {
        self.check_heap(axioms)?;
        match origin {
            Origin::Same if self.p_origin != self.q_origin => {
                return Err("same-origin witness has distinct origins".to_string());
            }
            Origin::Distinct if self.p_origin == self.q_origin => {
                return Err("distinct-origin witness shares its origin".to_string());
            }
            _ => {}
        }
        let heap = self.to_heap()?;
        let meet = NodeId(self.meet);
        if !heap
            .targets(NodeId(self.p_origin), &a.to_regex())
            .contains(&meet)
        {
            return Err(format!(
                "path {a} does not reach n{} from n{}",
                self.meet, self.p_origin
            ));
        }
        if !heap
            .targets(NodeId(self.q_origin), &b.to_regex())
            .contains(&meet)
        {
            return Err(format!(
                "path {b} does not reach n{} from n{}",
                self.meet, self.q_origin
            ));
        }
        Ok(())
    }

    /// A stable single-line encoding for wire frames and snapshot rows.
    /// Round-trips through [`Witness::decode`].
    pub fn encode(&self) -> String {
        let edges: Vec<String> = self
            .edges
            .iter()
            .map(|(f, s, t)| format!("{f}:{s}:{t}"))
            .collect();
        format!(
            "n={};p={};q={};m={};e={}",
            self.nodes,
            self.p_origin,
            self.q_origin,
            self.meet,
            edges.join(",")
        )
    }

    /// Parses an [`Witness::encode`] string.
    pub fn decode(text: &str) -> Option<Witness> {
        let mut nodes = None;
        let mut p = None;
        let mut q = None;
        let mut m = None;
        let mut edges: Option<Vec<(usize, String, usize)>> = None;
        for part in text.trim().split(';') {
            let (key, value) = part.split_once('=')?;
            match key {
                "n" => nodes = Some(value.parse().ok()?),
                "p" => p = Some(value.parse().ok()?),
                "q" => q = Some(value.parse().ok()?),
                "m" => m = Some(value.parse().ok()?),
                "e" => {
                    let mut list = Vec::new();
                    if !value.is_empty() {
                        for edge in value.split(',') {
                            let mut it = edge.split(':');
                            let from = it.next()?.parse().ok()?;
                            let field = it.next()?.to_string();
                            let to = it.next()?.parse().ok()?;
                            if it.next().is_some() || field.is_empty() {
                                return None;
                            }
                            list.push((from, field, to));
                        }
                    }
                    edges = Some(list);
                }
                _ => return None,
            }
        }
        Some(Witness {
            nodes: nodes?,
            edges: edges?,
            p_origin: p?,
            q_origin: q?,
            meet: m?,
        })
    }
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "heap of {} node{} [",
            self.nodes,
            if self.nodes == 1 { "" } else { "s" }
        )?;
        for (i, (from, field, to)) in self.edges.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "n{from} -{field}-> n{to}")?;
        }
        write!(
            f,
            "], p=n{}, q=n{}, meet=n{}",
            self.p_origin, self.q_origin, self.meet
        )
    }
}

/// Cumulative per-engine race accounting for one engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineTally {
    /// Queries this engine settled (its definite verdict was adopted).
    pub wins: u64,
    /// Races this engine ran in but did not settle.
    pub losses: u64,
    /// Runs that ended cancelled (almost always: a rival won first).
    pub cancelled: u64,
}

/// A snapshot of portfolio accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortfolioStats {
    /// Axiomatic-prover tallies.
    pub axiomatic: EngineTally,
    /// Dyck-engine tallies.
    pub dyck: EngineTally,
    /// Refuter tallies.
    pub refuter: EngineTally,
    /// Dependence witnesses produced (and validated).
    pub witnesses: u64,
}

impl PortfolioStats {
    /// The tally for one engine.
    pub fn tally(&self, kind: EngineKind) -> EngineTally {
        match kind {
            EngineKind::Axiomatic => self.axiomatic,
            EngineKind::Dyck => self.dyck,
            EngineKind::Refuter => self.refuter,
        }
    }

    /// Merges another snapshot into this one.
    pub fn merge(&mut self, other: &PortfolioStats) {
        for (mine, theirs) in [
            (&mut self.axiomatic, other.axiomatic),
            (&mut self.dyck, other.dyck),
            (&mut self.refuter, other.refuter),
        ] {
            mine.wins += theirs.wins;
            mine.losses += theirs.losses;
            mine.cancelled += theirs.cancelled;
        }
        self.witnesses += other.witnesses;
    }
}

#[derive(Default)]
struct Counters {
    wins: [AtomicU64; 3],
    losses: [AtomicU64; 3],
    cancelled: [AtomicU64; 3],
    witnesses: AtomicU64,
}

/// A shareable, thread-safe tally store. Clones share the underlying
/// counters, so many portfolios — one per axiom-set group in a batch,
/// one per query in a report loop — aggregate into a single set of
/// per-engine totals that outlives any individual [`Portfolio`].
#[derive(Clone, Default)]
pub struct TallySink {
    counters: Arc<Counters>,
}

impl TallySink {
    /// A fresh sink with zeroed tallies.
    pub fn new() -> TallySink {
        TallySink::default()
    }

    /// A snapshot of the tallies recorded so far.
    pub fn stats(&self) -> PortfolioStats {
        let tally = |i: usize| EngineTally {
            wins: self.counters.wins[i].load(Ordering::Relaxed),
            losses: self.counters.losses[i].load(Ordering::Relaxed),
            cancelled: self.counters.cancelled[i].load(Ordering::Relaxed),
        };
        PortfolioStats {
            axiomatic: tally(0),
            dyck: tally(1),
            refuter: tally(2),
            witnesses: self.counters.witnesses.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for TallySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TallySink")
            .field("stats", &self.stats())
            .finish()
    }
}

fn engine_index(kind: EngineKind) -> usize {
    match kind {
        EngineKind::Axiomatic => 0,
        EngineKind::Dyck => 1,
        EngineKind::Refuter => 2,
    }
}

/// How often the race coordinator polls the caller's own cancel token
/// while waiting on engine results.
const COORDINATOR_POLL: Duration = Duration::from_millis(5);

/// The racing front-end over a [`DepEngine`].
///
/// Cloning shares the underlying engine caches *and* the portfolio
/// tallies.
#[derive(Clone)]
pub struct Portfolio {
    engine: DepEngine,
    config: PortfolioConfig,
    counters: Arc<Counters>,
}

impl Portfolio {
    /// A portfolio over `engine` with `config`.
    pub fn new(engine: DepEngine, config: PortfolioConfig) -> Portfolio {
        Portfolio {
            engine,
            config,
            counters: Arc::new(Counters::default()),
        }
    }

    /// The underlying axiomatic engine.
    pub fn engine(&self) -> &DepEngine {
        &self.engine
    }

    /// The portfolio configuration.
    pub fn config(&self) -> &PortfolioConfig {
        &self.config
    }

    /// Builder: record race tallies into `sink` (shared with other
    /// portfolios and with the caller) instead of this portfolio's
    /// private counters.
    #[must_use]
    pub fn with_tallies(mut self, sink: &TallySink) -> Portfolio {
        self.counters = Arc::clone(&sink.counters);
        self
    }

    /// A sink handle sharing this portfolio's counters.
    pub fn tallies(&self) -> TallySink {
        TallySink {
            counters: Arc::clone(&self.counters),
        }
    }

    /// A snapshot of the cumulative per-engine tallies.
    pub fn stats(&self) -> PortfolioStats {
        self.tallies().stats()
    }

    /// Engines that can actually run `kind`: equality queries are the
    /// axiomatic prover's alone (dyck and the refuter decide
    /// disjointness), and a selection without any engine for the kind
    /// falls back to the axiomatic prover rather than answering nothing.
    fn roster(&self, kind: QueryKind) -> Vec<EngineKind> {
        let sel = self.config.engines;
        let mut roster = Vec::new();
        match kind {
            QueryKind::Equal => roster.push(EngineKind::Axiomatic),
            QueryKind::Disjoint => {
                for engine in EngineKind::ALL {
                    if sel.contains(engine) {
                        roster.push(engine);
                    }
                }
                if roster.is_empty() {
                    roster.push(EngineKind::Axiomatic);
                }
            }
        }
        roster
    }

    /// The budget a race participant runs under: the query override or
    /// the engine default, with the cancel token swapped for `race`.
    fn raced_budget(&self, query: &DepQuery, race: &CancelToken) -> Budget {
        let mut budget = query
            .budget_override()
            .cloned()
            .unwrap_or_else(|| self.engine.config().budget.clone());
        budget.cancel = Some(race.clone());
        budget
    }

    fn run_engine(&self, kind: EngineKind, query: &DepQuery, budget: &Budget) -> Outcome {
        match kind {
            EngineKind::Axiomatic => query.clone().with_budget(budget.clone()).run(&self.engine),
            EngineKind::Dyck => {
                let result = dyck::decide(
                    self.engine.axioms(),
                    query.origin_relation(),
                    query.a(),
                    query.b(),
                    budget,
                    self.config.dyck_state_cap,
                );
                let verdict = if result.proved {
                    Verdict::definite(Answer::No)
                } else {
                    Verdict::maybe(result.reason.unwrap_or(MaybeReason::GenuinelyUnknown))
                };
                let mut stats = ProverStats {
                    subset_checks: result.subset_checks,
                    ..ProverStats::default()
                };
                if let Some(reason) = verdict.reason {
                    stats.cutoffs.record(reason);
                }
                Outcome {
                    maybe_reason: verdict.reason,
                    verdict,
                    proof: None,
                    stats,
                    engine: EngineKind::Dyck,
                    witness: None,
                }
            }
            EngineKind::Refuter => {
                let config = RefuterConfig {
                    max_heap_nodes: self.config.refuter_max_heap,
                    ..RefuterConfig::default()
                };
                let outcome = refuter::search(
                    self.engine.axioms(),
                    query.origin_relation(),
                    query.a(),
                    query.b(),
                    budget,
                    &config,
                );
                let (verdict, witness) = match outcome {
                    RefuterOutcome::Witness(w) => (Verdict::definite(Answer::Yes), Some(w)),
                    RefuterOutcome::Exhausted => (
                        Verdict::maybe(MaybeReason::SearchExhausted(SearchLimit::Fuel)),
                        None,
                    ),
                    RefuterOutcome::Stopped(reason) => (Verdict::maybe(reason), None),
                };
                let mut stats = ProverStats::default();
                if let Some(reason) = verdict.reason {
                    stats.cutoffs.record(reason);
                }
                Outcome {
                    maybe_reason: verdict.reason,
                    verdict,
                    proof: None,
                    stats,
                    engine: EngineKind::Refuter,
                    witness,
                }
            }
        }
    }

    fn tally(&self, winner: Option<EngineKind>, results: &[(EngineKind, Outcome)]) {
        for (kind, outcome) in results {
            let i = engine_index(*kind);
            if Some(*kind) == winner {
                self.counters.wins[i].fetch_add(1, Ordering::Relaxed);
            } else {
                self.counters.losses[i].fetch_add(1, Ordering::Relaxed);
                if outcome.maybe_reason == Some(MaybeReason::Cancelled) {
                    self.counters.cancelled[i].fetch_add(1, Ordering::Relaxed);
                }
            }
            if outcome.witness.is_some() {
                self.counters.witnesses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Runs one query through the portfolio: all rostered engines race,
    /// the first definite verdict wins and cancels the rest.
    pub fn run(&self, query: &DepQuery) -> Outcome {
        let roster = self.roster(query.kind());
        if roster.len() == 1 {
            // Nothing to race: run inline under the caller's own budget.
            let kind = roster[0];
            let budget = query
                .budget_override()
                .cloned()
                .unwrap_or_else(|| self.engine.config().budget.clone());
            let outcome = self.run_engine(kind, query, &budget);
            let winner = outcome.is_definite().then_some(kind);
            self.tally(winner, std::slice::from_ref(&(kind, outcome.clone())));
            return outcome;
        }

        let race = CancelToken::new();
        let parent = query
            .budget_override()
            .and_then(|b| b.cancel.clone())
            .or_else(|| self.engine.config().budget.cancel.clone());
        let budget = self.raced_budget(query, &race);
        let (tx, rx) = mpsc::channel::<(EngineKind, Outcome)>();

        let results: Vec<(EngineKind, Outcome)> = crossbeam::thread::scope(|scope| {
            for &kind in &roster {
                let tx = tx.clone();
                let budget = budget.clone();
                scope.spawn(move |_| {
                    let outcome = self.run_engine(kind, query, &budget);
                    // A closed channel means the coordinator already
                    // returned; the result is moot.
                    let _ = tx.send((kind, outcome));
                });
            }
            drop(tx);

            let mut collected: Vec<(EngineKind, Outcome)> = Vec::with_capacity(roster.len());
            let mut settled = false;
            while collected.len() < roster.len() {
                match rx.recv_timeout(COORDINATOR_POLL) {
                    Ok((kind, outcome)) => {
                        if !settled && outcome.is_definite() {
                            settled = true;
                            race.cancel();
                        }
                        collected.push((kind, outcome));
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // Forward the caller's cancellation into the race.
                        if parent.as_ref().is_some_and(|p| p.is_cancelled()) {
                            race.cancel();
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
            collected
        })
        .expect("portfolio race thread panicked");

        // The adopted outcome: the first definite in arrival order, else
        // the axiomatic Maybe (it has the richest degradation pedigree),
        // else whatever arrived first.
        let winner_pos = results.iter().position(|(_, o)| o.is_definite());
        debug_assert!(
            {
                let definite: Vec<&Answer> = results
                    .iter()
                    .filter(|(_, o)| o.is_definite())
                    .map(|(_, o)| &o.verdict.answer)
                    .collect();
                definite.windows(2).all(|w| w[0] == w[1])
            },
            "definite verdicts disagree across engines: {results:?}"
        );
        let pos = winner_pos
            .or_else(|| {
                results
                    .iter()
                    .position(|(kind, _)| *kind == EngineKind::Axiomatic)
            })
            .unwrap_or(0);
        let winner = winner_pos.map(|p| results[p].0);
        self.tally(winner, &results);

        let mut adopted = results[pos].1.clone();
        // Account the losers' work in the adopted outcome so batch-level
        // stats reflect what the race actually cost.
        for (i, (_, outcome)) in results.iter().enumerate() {
            if i != pos {
                adopted.stats.merge(&outcome.stats);
            }
        }
        adopted
    }

    /// Runs a batch, staged: the axiomatic engine (when selected) first
    /// answers everything through the deduplicated, cache-shared
    /// [`DepEngine::run_batch`]; the other engines then race only the
    /// queries left `Maybe`. On large batches this costs far fewer
    /// threads than a three-way race per query, and the axiomatic pass
    /// warms the shared cache exactly as an axiomatic-only run would.
    pub fn run_batch(&self, queries: &[DepQuery], jobs: usize) -> Vec<Outcome> {
        let sel = self.config.engines;
        let sub = PortfolioConfig {
            engines: EngineSelection {
                axiomatic: false,
                ..sel
            },
            ..self.config.clone()
        };
        if !sel.axiomatic {
            // No axiomatic stage: race the reduced roster per query.
            let racer = Portfolio {
                engine: self.engine.clone(),
                config: sub,
                counters: Arc::clone(&self.counters),
            };
            return run_queries_parallel(&racer, queries, jobs);
        }

        let mut outcomes = self.engine.run_batch(queries, jobs);
        let followups: Vec<usize> = outcomes
            .iter()
            .enumerate()
            .filter(|(i, o)| {
                !o.is_definite()
                    && queries[*i].kind() == QueryKind::Disjoint
                    && (sel.dyck || sel.refuter)
            })
            .map(|(i, _)| i)
            .collect();
        if followups.is_empty() {
            for o in &outcomes {
                let i = engine_index(EngineKind::Axiomatic);
                if o.is_definite() {
                    self.counters.wins[i].fetch_add(1, Ordering::Relaxed);
                } else {
                    self.counters.losses[i].fetch_add(1, Ordering::Relaxed);
                }
            }
            return outcomes;
        }

        let racer = Portfolio {
            engine: self.engine.clone(),
            config: sub,
            counters: Arc::clone(&self.counters),
        };
        let followup_queries: Vec<DepQuery> =
            followups.iter().map(|&i| queries[i].clone()).collect();
        let raced = run_queries_parallel(&racer, &followup_queries, jobs);
        let ax = engine_index(EngineKind::Axiomatic);
        for (slot, mut outcome) in followups.into_iter().zip(raced) {
            if outcome.is_definite() {
                // The axiomatic stage already gave this one up.
                self.counters.losses[ax].fetch_add(1, Ordering::Relaxed);
                outcome.stats.merge(&outcomes[slot].stats);
                outcomes[slot] = outcome;
            } else {
                // Keep the axiomatic outcome (richer pedigree), but
                // account the follow-up work.
                self.counters.losses[ax].fetch_add(1, Ordering::Relaxed);
                outcomes[slot].stats.merge(&outcome.stats);
            }
        }
        for (i, o) in outcomes.iter().enumerate() {
            if o.is_definite() && o.engine == EngineKind::Axiomatic {
                let _ = i;
                self.counters.wins[ax].fetch_add(1, Ordering::Relaxed);
            }
        }
        outcomes
    }
}

impl fmt::Debug for Portfolio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Portfolio")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Runs `queries` through `portfolio.run` across up to `jobs` worker
/// threads (work-stealing by atomic index, like the engine's own batch).
fn run_queries_parallel(portfolio: &Portfolio, queries: &[DepQuery], jobs: usize) -> Vec<Outcome> {
    use std::sync::atomic::AtomicUsize;
    let jobs = jobs.clamp(1, queries.len().max(1));
    if jobs == 1 || queries.len() <= 1 {
        return queries.iter().map(|q| portfolio.run(q)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<Outcome>>> = queries
        .iter()
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                let outcome = portfolio.run(&queries[i]);
                *slots[i].lock().expect("portfolio slot poisoned") = Some(outcome);
            });
        }
    })
    .expect("portfolio batch thread panicked");
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("portfolio slot poisoned")
                .expect("portfolio slot unfilled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_axioms::adds::leaf_linked_tree_axioms;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn portfolio() -> Portfolio {
        Portfolio::new(
            DepEngine::new(leaf_linked_tree_axioms()),
            PortfolioConfig::default(),
        )
    }

    #[test]
    fn selection_parses_and_displays() {
        assert_eq!(
            EngineSelection::parse("all").unwrap(),
            EngineSelection::all()
        );
        let sel = EngineSelection::parse("dyck,refuter").unwrap();
        assert!(!sel.axiomatic && sel.dyck && sel.refuter);
        assert_eq!(sel.to_string(), "dyck,refuter");
        assert_eq!(EngineSelection::all().to_string(), "all");
        assert!(EngineSelection::parse("frobnicate").is_err());
        assert!(EngineSelection::parse("").is_err());
    }

    #[test]
    fn engine_kind_codes_roundtrip() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(EngineKind::from_code("nope"), None);
    }

    #[test]
    fn witness_encoding_roundtrips() {
        let w = Witness {
            nodes: 4,
            edges: vec![
                (0, "L".to_string(), 1),
                (1, "L".to_string(), 2),
                (2, "N".to_string(), 3),
            ],
            p_origin: 0,
            q_origin: 0,
            meet: 3,
        };
        let text = w.encode();
        assert_eq!(Witness::decode(&text), Some(w));
        assert_eq!(Witness::decode("garbage"), None);
        assert_eq!(
            Witness::decode("n=2;p=0;q=0;m=1;e=0:L:9"),
            Some(Witness {
                nodes: 2,
                edges: vec![(0, "L".into(), 9)],
                p_origin: 0,
                q_origin: 0,
                meet: 1
            })
        );
    }

    #[test]
    fn witness_validation_rejects_forgeries() {
        let axioms = leaf_linked_tree_axioms();
        // Out-of-range edge.
        let w = Witness::decode("n=2;p=0;q=0;m=1;e=0:L:9").unwrap();
        assert!(w.validate(&axioms, Origin::Same, &p("L"), &p("L")).is_err());
        // Axiom-violating heap: one node reached by both L and R.
        let w = Witness {
            nodes: 2,
            edges: vec![(0, "L".into(), 1), (0, "R".into(), 1)],
            p_origin: 0,
            q_origin: 0,
            meet: 1,
        };
        assert!(w.validate(&axioms, Origin::Same, &p("L"), &p("R")).is_err());
        // Paths that don't reach the claimed meet.
        let w = Witness {
            nodes: 2,
            edges: vec![(0, "L".into(), 1)],
            p_origin: 0,
            q_origin: 0,
            meet: 1,
        };
        assert!(w.validate(&axioms, Origin::Same, &p("R"), &p("R")).is_err());
    }

    #[test]
    fn race_adopts_a_definite_verdict() {
        let portfolio = portfolio();
        // Provable disjointness: axiomatic and dyck both prove it; the
        // refuter exhausts. Whoever wins, the verdict must be No.
        let q = DepQuery::disjoint(&p("L.L.N"), &p("L.R.N")).origin(Origin::Same);
        let out = portfolio.run(&q);
        assert_eq!(out.verdict.answer, Answer::No);
        assert!(out.is_definite());
        assert_ne!(out.engine, EngineKind::Refuter);
    }

    #[test]
    fn race_resolves_known_maybe_with_witness() {
        let portfolio = portfolio();
        // Identical overlapping paths: the prover can only say Maybe,
        // the refuter finds a concrete collision.
        let q = DepQuery::disjoint(&p("L.L.N"), &p("L.L.N")).origin(Origin::Same);
        let out = portfolio.run(&q);
        assert_eq!(out.verdict.answer, Answer::Yes);
        assert_eq!(out.engine, EngineKind::Refuter);
        let w = out.witness.expect("refuter verdicts carry witnesses");
        w.validate(
            portfolio.engine().axioms(),
            Origin::Same,
            &p("L.L.N"),
            &p("L.L.N"),
        )
        .expect("witness must re-validate");
        assert!(portfolio.stats().witnesses >= 1);
    }

    #[test]
    fn equality_queries_stay_axiomatic() {
        let portfolio = portfolio();
        let q = DepQuery::equal(&p("L"), &p("L"));
        let out = portfolio.run(&q);
        assert_eq!(out.engine, EngineKind::Axiomatic);
        assert_eq!(out.verdict.answer, Answer::Yes);
    }

    #[test]
    fn batch_matches_solo_runs() {
        let portfolio = portfolio();
        let queries = vec![
            DepQuery::disjoint(&p("L.L.N"), &p("L.R.N")),
            DepQuery::disjoint(&p("L.L.N"), &p("L.L.N")),
            DepQuery::disjoint(&p("L.N"), &p("R.N")),
            DepQuery::equal(&p("L"), &p("L")),
        ];
        let batch = portfolio.run_batch(&queries, 4);
        let solo = Portfolio::new(
            DepEngine::new(leaf_linked_tree_axioms()),
            PortfolioConfig::default(),
        );
        for (q, out) in queries.iter().zip(&batch) {
            let alone = solo.run(q);
            assert_eq!(
                alone.verdict.answer, out.verdict.answer,
                "batch/solo verdict flip on {q:?}"
            );
        }
    }

    #[test]
    fn first_definite_cancels_losers_within_bounded_delay() {
        // A refuter cap of 24 nodes makes exhaustive search astronomically
        // long; the only way this run returns promptly is the axiomatic
        // winner cancelling the refuter mid-search.
        let portfolio = Portfolio::new(
            DepEngine::new(leaf_linked_tree_axioms()),
            PortfolioConfig {
                refuter_max_heap: 24,
                ..PortfolioConfig::default()
            },
        );
        let q = DepQuery::disjoint(&p("L.L.N"), &p("L.R.N")).origin(Origin::Same);
        let started = std::time::Instant::now();
        let out = portfolio.run(&q);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "race did not settle promptly: {:?}",
            started.elapsed()
        );
        assert_eq!(out.verdict.answer, Answer::No);
        let stats = portfolio.stats();
        assert_eq!(
            stats.refuter.cancelled, 1,
            "the losing refuter must record a cancellation: {stats:?}"
        );
    }

    #[test]
    fn cancelled_runs_do_not_publish_into_the_shared_cache() {
        let engine = DepEngine::new(leaf_linked_tree_axioms());
        let token = CancelToken::new();
        token.cancel();
        let mut budget = engine.config().budget.clone();
        budget.cancel = Some(token);
        let q = DepQuery::disjoint(&p("L.L.N"), &p("L.R.N"))
            .origin(Origin::Same)
            .with_budget(budget);
        let out = engine.run(&q);
        assert_eq!(out.maybe_reason, Some(MaybeReason::Cancelled));
        let cache = engine.cache_stats();
        assert_eq!(
            (cache.proved_goals, cache.failed_goals),
            (0, 0),
            "a cancelled run must not publish goal entries: {cache:?}"
        );
        // The same query re-proves cleanly afterwards — no poisoned entry.
        let clean = engine.run(&DepQuery::disjoint(&p("L.L.N"), &p("L.R.N")).origin(Origin::Same));
        assert_eq!(clean.verdict.answer, Answer::No);
        assert!(clean.is_definite());
    }

    #[test]
    fn raced_engines_agree_with_their_solo_runs() {
        let queries = [
            DepQuery::disjoint(&p("L.L.N"), &p("L.R.N")).origin(Origin::Same),
            DepQuery::disjoint(&p("L.L.N"), &p("L.L.N")).origin(Origin::Same),
        ];
        for q in &queries {
            let raced = portfolio().run(q);
            for kind in EngineKind::ALL {
                let solo = Portfolio::new(
                    DepEngine::new(leaf_linked_tree_axioms()),
                    PortfolioConfig {
                        engines: EngineSelection {
                            axiomatic: kind == EngineKind::Axiomatic,
                            dyck: kind == EngineKind::Dyck,
                            refuter: kind == EngineKind::Refuter,
                        },
                        ..PortfolioConfig::default()
                    },
                )
                .run(q);
                if solo.is_definite() && raced.is_definite() {
                    assert_eq!(
                        solo.verdict.answer, raced.verdict.answer,
                        "solo {kind} disagrees with the race on {q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tallies_accumulate() {
        let portfolio = portfolio();
        let q = DepQuery::disjoint(&p("L.L.N"), &p("L.R.N"));
        let _ = portfolio.run(&q);
        let stats = portfolio.stats();
        let total: u64 = EngineKind::ALL
            .iter()
            .map(|&k| stats.tally(k).wins + stats.tally(k).losses)
            .sum();
        assert_eq!(total, 3, "all three engines must be accounted: {stats:?}");
        let wins: u64 = EngineKind::ALL.iter().map(|&k| stats.tally(k).wins).sum();
        assert_eq!(wins, 1, "exactly one winner: {stats:?}");
    }
}
