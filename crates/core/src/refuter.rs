//! The bounded concrete-heap refuter.
//!
//! "Bounded Model Checking of Pointer Programs Revisited" (Charatonik &
//! Witkowski) observes that for heap-manipulating programs a *small-heap
//! witness search* is a practical complement to a prover: when the
//! axiomatic engine gives up with `Maybe`, a concrete heap of a handful
//! of nodes frequently exists that satisfies every structure axiom and
//! makes the two access paths collide — a definite **dependence**
//! verdict, carrying evidence a client can re-check.
//!
//! Blind enumeration of k-node heaps is hopeless (heaps over `n` nodes
//! and `f` fields number `(n+1)^(n·f)`; 244 million at `n = 4, f = 3`),
//! so the search here is goal-directed: enumerate bounded *word pairs*
//! `(u, v) ∈ L(a) × L(b)` with [`words_up_to`], and for each pair build
//! only the candidate heaps in which `origin.u` and `origin.v` land on
//! the same node — chains, shared-prefix merges, and (for distinct
//! origins) placements of the second origin along the first chain. Each
//! candidate is then judged by the *existing* trusted machinery:
//! [`check_set`] must accept the heap under the full axiom set, and the
//! collision is re-executed with [`HeapGraph::targets`] before it is
//! surfaced as a [`Witness`]. The refuter can therefore never be wrong
//! about a `Yes` — a bad candidate is merely skipped — and its verdicts
//! are re-validated downstream exactly like proofs are re-checked under
//! the forged-proof discipline.
//!
//! [`check_set`]: apt_axioms::check_set
//! [`words_up_to`]: apt_regex::sample::words_up_to

use crate::config::Budget;
use crate::goal::Origin;
use crate::portfolio::Witness;
use crate::verdict::{MaybeReason, SearchLimit};
use apt_axioms::check::check_set;
use apt_axioms::graph::{HeapGraph, NodeId};
use apt_axioms::AxiomSet;
use apt_regex::sample::words_up_to;
use apt_regex::{Path, Symbol};
use std::time::Instant;

/// Bounds for the witness search.
#[derive(Debug, Clone)]
pub struct RefuterConfig {
    /// Largest candidate heap, in nodes. Word lengths are derived from
    /// this (a chain of `ℓ` fields needs `ℓ + 1` nodes).
    pub max_heap_nodes: usize,
    /// Cap on enumerated words per path language.
    pub max_words: usize,
    /// Cap on candidate heaps tried before giving up.
    pub max_candidates: usize,
}

impl Default for RefuterConfig {
    fn default() -> Self {
        RefuterConfig {
            max_heap_nodes: 8,
            max_words: 64,
            max_candidates: 4096,
        }
    }
}

/// What the bounded search concluded.
#[derive(Debug, Clone)]
pub enum RefuterOutcome {
    /// A concrete axiom-satisfying heap in which the two paths collide.
    Witness(Witness),
    /// The bounded space was exhausted without a collision (says nothing
    /// about larger heaps).
    Exhausted,
    /// The search was stopped early by the budget.
    Stopped(MaybeReason),
}

/// How often deadline/cancellation are polled, in candidates.
const STOP_CHECK_INTERVAL: usize = 32;

struct Enumeration<'a> {
    axioms: &'a AxiomSet,
    origin: Origin,
    a: &'a Path,
    b: &'a Path,
    deadline: Option<Instant>,
    cancel: Option<crate::config::CancelToken>,
    max_nodes: usize,
    candidates_left: usize,
    tried: u64,
}

impl Enumeration<'_> {
    fn stop_reason(&self) -> Option<MaybeReason> {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Some(MaybeReason::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(MaybeReason::DeadlineExceeded);
            }
        }
        None
    }

    /// Judge one candidate: axioms must hold and the collision must
    /// survive re-execution of both full path languages.
    fn judge(
        &mut self,
        heap: &HeapGraph,
        p_origin: NodeId,
        q_origin: NodeId,
        meet: NodeId,
    ) -> Option<Witness> {
        self.tried += 1;
        if heap.len() > self.max_nodes {
            return None;
        }
        if check_set(heap, self.axioms).is_err() {
            return None;
        }
        let ra = self.a.to_regex();
        let rb = self.b.to_regex();
        if !heap.targets(p_origin, &ra).contains(&meet)
            || !heap.targets(q_origin, &rb).contains(&meet)
        {
            return None;
        }
        let witness = Witness {
            nodes: heap.len(),
            edges: heap
                .iter_edges()
                .map(|(f, s, t)| (f.0, s.as_str().to_string(), t.0))
                .collect(),
            p_origin: p_origin.0,
            q_origin: q_origin.0,
            meet: meet.0,
        };
        // Belt and braces: the downstream validator must accept exactly
        // what we publish (it re-derives the heap from the edge list).
        witness
            .validate(self.axioms, self.origin, self.a, self.b)
            .ok()?;
        Some(witness)
    }
}

/// Extend `heap` from `from` along `word`, reusing existing edges and
/// forcing the final step onto `target`. Returns the node reached, or
/// `None` when an existing single-valued edge contradicts the forcing.
fn lay_word(
    heap: &mut HeapGraph,
    from: NodeId,
    word: &[Symbol],
    target: Option<NodeId>,
) -> Option<NodeId> {
    let mut at = from;
    for (i, &sym) in word.iter().enumerate() {
        let last = i + 1 == word.len();
        let forced = if last { target } else { None };
        at = match (heap.edge(at, sym), forced) {
            (Some(existing), Some(want)) => {
                if existing != want {
                    return None;
                }
                existing
            }
            (Some(existing), None) => existing,
            (None, Some(want)) => {
                heap.set_edge(at, sym, want);
                want
            }
            (None, None) => {
                let fresh = heap.add_node();
                heap.set_edge(at, sym, fresh);
                fresh
            }
        };
    }
    Some(at)
}

/// Search bounded concrete heaps for a dependence witness for
/// `origin ⊢ a <> b`. Only meaningful for disjointness queries — a
/// returned [`Witness`] refutes disjointness outright.
pub fn search(
    axioms: &AxiomSet,
    origin: Origin,
    a: &Path,
    b: &Path,
    budget: &Budget,
    config: &RefuterConfig,
) -> RefuterOutcome {
    let max_nodes = config.max_heap_nodes.max(1);
    let max_len = max_nodes.saturating_sub(1);
    let mut words_a = words_up_to(&a.to_regex(), max_len);
    let mut words_b = words_up_to(&b.to_regex(), max_len);
    words_a.truncate(config.max_words);
    words_b.truncate(config.max_words);
    if words_a.is_empty() || words_b.is_empty() {
        // One language is empty below the bound: no collision witness
        // can exist at this size.
        return RefuterOutcome::Exhausted;
    }

    let mut en = Enumeration {
        axioms,
        origin,
        a,
        b,
        deadline: budget.deadline.map(|d| Instant::now() + d),
        cancel: budget.cancel.clone(),
        max_nodes,
        candidates_left: config.max_candidates,
        tried: 0,
    };

    // Poll on the very first candidate too: a pre-cancelled token must
    // stop even a single-pair search.
    let mut since_check = STOP_CHECK_INTERVAL - 1;
    for u in &words_a {
        for v in &words_b {
            since_check += 1;
            if since_check >= STOP_CHECK_INTERVAL {
                since_check = 0;
                if let Some(reason) = en.stop_reason() {
                    return RefuterOutcome::Stopped(reason);
                }
            }
            if en.candidates_left == 0 {
                return RefuterOutcome::Stopped(MaybeReason::SearchExhausted(SearchLimit::Fuel));
            }
            let found = match origin {
                Origin::Same => try_same_origin(&mut en, u, v),
                Origin::Distinct => try_distinct_origins(&mut en, u, v),
            };
            if let Some(w) = found {
                return RefuterOutcome::Witness(w);
            }
        }
    }
    RefuterOutcome::Exhausted
}

/// Same handle on both sides: build the `u`-chain from the shared
/// origin, then lay `v` over it, forcing `v`'s end onto `u`'s end.
fn try_same_origin(en: &mut Enumeration<'_>, u: &[Symbol], v: &[Symbol]) -> Option<Witness> {
    en.candidates_left = en.candidates_left.saturating_sub(1);
    let mut heap = HeapGraph::new();
    let origin = heap.add_node();
    let end_u = lay_word(&mut heap, origin, u, None)?;
    let meet = if v.is_empty() {
        // `v = ε` collides only if `u` also ends at the origin.
        if end_u != origin {
            return None;
        }
        origin
    } else {
        lay_word(&mut heap, origin, v, Some(end_u))?
    };
    en.judge(&heap, origin, origin, meet)
}

/// Distinct handles: build the `u`-chain from `p`, then try every
/// placement of `q` — a fresh node, or any node strictly inside `u`'s
/// chain — laying `v` from it onto `u`'s end.
fn try_distinct_origins(en: &mut Enumeration<'_>, u: &[Symbol], v: &[Symbol]) -> Option<Witness> {
    // Chain skeleton shared by all placements; rebuilt per placement
    // because forcing edges mutates it.
    let placements = 1 + u.len();
    for placement in 0..placements {
        if en.candidates_left == 0 {
            return None;
        }
        en.candidates_left -= 1;
        let mut heap = HeapGraph::new();
        let p_origin = heap.add_node();
        let end_u = match lay_word(&mut heap, p_origin, u, None) {
            Some(n) => n,
            None => continue,
        };
        let q_origin = if placement == 0 {
            heap.add_node()
        } else {
            // Node after `placement` steps of `u` (never the origin:
            // the handles must be distinct).
            match lay_word(&mut heap, p_origin, &u[..placement], None) {
                Some(n) => n,
                None => continue,
            }
        };
        if q_origin == p_origin {
            continue;
        }
        let meet = if v.is_empty() {
            if end_u != q_origin {
                continue;
            }
            q_origin
        } else {
            match lay_word(&mut heap, q_origin, v, Some(end_u)) {
                Some(n) => n,
                None => continue,
            }
        };
        if let Some(w) = en.judge(&heap, p_origin, q_origin, meet) {
            return Some(w);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_axioms::adds;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn run(axioms: &AxiomSet, origin: Origin, a: &str, b: &str) -> RefuterOutcome {
        search(
            axioms,
            origin,
            &p(a),
            &p(b),
            &Budget::new(),
            &RefuterConfig::default(),
        )
    }

    #[test]
    fn finds_overlapping_leaf_paths() {
        // L.L.N vs L.L.N is a genuine dependence the prover reports as
        // Maybe; a 4-node chain witnesses it.
        let axioms = adds::leaf_linked_tree_axioms();
        match run(&axioms, Origin::Same, "L.L.N", "L.L.N") {
            RefuterOutcome::Witness(w) => {
                assert!(w
                    .validate(&axioms, Origin::Same, &p("L.L.N"), &p("L.L.N"))
                    .is_ok());
                assert_eq!(w.p_origin, w.q_origin);
            }
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn finds_distinct_origin_list_overlap() {
        // Two cursors into one list: q may sit one step down from p, so
        // p.N.N and q.N alias.
        let axioms = AxiomSet::parse(
            "A1: forall p <> q, p.N <> q.N\n\
             A2: forall p, p.N+ <> p.eps",
        )
        .unwrap();
        match run(&axioms, Origin::Distinct, "N.N", "N") {
            RefuterOutcome::Witness(w) => {
                assert_ne!(w.p_origin, w.q_origin);
                assert!(w
                    .validate(&axioms, Origin::Distinct, &p("N.N"), &p("N"))
                    .is_ok());
            }
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn respects_axioms_when_rejecting() {
        // Sibling subtrees are genuinely disjoint: every candidate heap
        // violates an axiom, so the search must exhaust, not fabricate.
        let axioms = adds::leaf_linked_tree_axioms();
        match run(&axioms, Origin::Same, "L.L.N", "L.R.N") {
            RefuterOutcome::Exhausted => {}
            other => panic!("expected exhausted, got {other:?}"),
        }
    }

    #[test]
    fn epsilon_word_same_origin() {
        // a = eps, b = eps: both paths are the handle itself.
        let axioms = adds::leaf_linked_tree_axioms();
        match run(&axioms, Origin::Same, "eps", "eps") {
            RefuterOutcome::Witness(w) => {
                assert_eq!(w.meet, w.p_origin);
            }
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_stops_search() {
        let token = crate::config::CancelToken::new();
        token.cancel();
        let axioms = adds::leaf_linked_tree_axioms();
        let out = search(
            &axioms,
            Origin::Same,
            &p("L.L.N"),
            &p("L.R.N"),
            &Budget::new().with_cancel(token),
            &RefuterConfig::default(),
        );
        match out {
            RefuterOutcome::Stopped(MaybeReason::Cancelled) => {}
            other => panic!("expected cancelled, got {other:?}"),
        }
    }

    #[test]
    fn candidate_cap_degrades_to_fuel() {
        let axioms = adds::leaf_linked_tree_axioms();
        let out = search(
            &axioms,
            Origin::Same,
            &p("(L|R)+.N"),
            &p("(L|R)+.N"),
            &Budget::new(),
            &RefuterConfig {
                max_heap_nodes: 8,
                max_words: 64,
                max_candidates: 0,
            },
        );
        match out {
            RefuterOutcome::Stopped(MaybeReason::SearchExhausted(SearchLimit::Fuel)) => {}
            other => panic!("expected fuel stop, got {other:?}"),
        }
    }
}
