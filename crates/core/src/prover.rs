//! The APT theorem prover (`proveDisj` of §4.1).
//!
//! The prover attempts to establish disjointness [`Goal`]s — statements of
//! the form `∀x, x.A <> x.B` or `∀x<>y, x.A <> y.B` — by applying aliasing
//! axioms in all (well-founded) combinations. The rule set mirrors the
//! paper's proof machinery:
//!
//! * **direct axiom application** — steps A/B of `proveDisj`: a goal is
//!   discharged when each of its path languages is contained in one side of
//!   a single axiom of the matching form (subset decided on DFAs, \[HU79\]);
//! * **suffix decomposition** — the core loop of Figure 5: choose suffixes
//!   `S_p`/`S_q`, prove them disjoint for the same-origin (T1) and
//!   distinct-origin (T2) cases, then discharge the prefix pair by T1∧T2,
//!   by definite prefix equality (step C), or by a recursive disjointness
//!   proof (step D);
//! * **head/tail peeling** — the reasoning the paper's §3.3 proof narrates
//!   ("Applying A3, theorem is true if `_hroot.LL <> _hroot.LR`"; "since
//!   both paths start from the same vertex and begin with L, reduces to
//!   …"): common definite head fields are peeled outright, and common tail
//!   fields are peeled through injectivity axioms (`∀p<>q, p.f <> q.f`);
//! * **Kleene-run induction** — the paper's multi-case induction over `*`
//!   and `+` components (§4.1), implemented as closure peels: common
//!   trailing runs of an injective field (or leading runs, for same-origin
//!   goals) case-split into *equal-length*, *left-extra*, and *right-extra*
//!   residual goals, exactly the shape of the paper's cases 1–4;
//! * **alternation splitting** — `a|b` components are first treated as
//!   units and, when that fails, split; every branch must prove (§4.1);
//! * **equality rewriting** — `∀p, p.RE1 = p.RE2` axioms rewrite path
//!   prefixes, supporting cyclic structures.
//!
//! Intermediate results are cached per axiom set (§4.2 assumes "the results
//! of intermediate proofs are cached so that a proof attempt is never
//! repeated"), and a fuel/depth cutoff implements the paper's suggested
//! accuracy/efficiency knob.

use crate::config::{Budget, CancelToken, ProverConfig, ProverStats};
use crate::engine::{SharedCache, SharedVerdict};
use crate::goal::{Goal, Origin};
use crate::proof::{PrefixCase, Proof, Rule};
use crate::verdict::{MaybeReason, SearchLimit};
use apt_axioms::{AxiomKind, AxiomSet, CompiledAxioms, Injectivity, SideSig};
use apt_regex::{ops, Component, FxHashMap, LimitExceeded, Limits, Path, Regex, RegexId, Symbol};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Subset-cache entry: the decided answer plus a second-chance bit — a
/// lookup hit sets it, and eviction re-queues hot entries instead of
/// dropping them (see [`Prover::evict_subset_entries`]).
#[derive(Debug, Clone, Copy)]
struct SubsetEntry {
    result: bool,
    hot: bool,
}

/// Cache entry for a goal.
#[derive(Debug, Clone)]
enum CacheState {
    /// Currently on the proof stack, with the witness-shrink and rewrite
    /// counters at entry. Re-entry *across a shrinking step* closes the
    /// goal by induction (infinite descent: a minimal counterexample would
    /// produce a strictly smaller one); any other re-entry fails.
    InProgress {
        shrinks: usize,
        rewrites: usize,
    },
    Proved(Proof),
    /// A definite "no rule applies / all branches exhausted" failure,
    /// valid for any context with at least `min_rewrites` equality
    /// rewrites already spent (the rewrite allowance is the one context
    /// axis that monotonically *shrinks* the search: a complete failure
    /// with `r` rewrites spent stands a fortiori with `r' ≥ r` spent).
    /// Entries are only created for complete searches — no resource
    /// degradation, no consultation of an in-progress ancestor — so a
    /// budget- or depth-starved subtree can never poison a retry.
    Failed {
        min_rewrites: usize,
    },
}

/// Proof-search context: recursion depth plus the two counters the
/// induction soundness condition needs — how many witness-shrinking rules
/// and how many equality rewrites lie between the root and this goal.
#[derive(Debug, Clone, Copy)]
struct Ctx {
    depth: usize,
    shrinks: usize,
    rewrites: usize,
}

impl Ctx {
    fn root() -> Ctx {
        Ctx {
            depth: 0,
            shrinks: 0,
            rewrites: 0,
        }
    }

    /// One level deeper, witness measure unchanged (case splits).
    fn deeper(self) -> Ctx {
        Ctx {
            depth: self.depth + 1,
            ..self
        }
    }

    /// One level deeper across a rule that strictly shrinks any concrete
    /// counterexample witness (peels, suffix decomposition).
    fn shrunk(self) -> Ctx {
        Ctx {
            depth: self.depth + 1,
            shrinks: self.shrinks + 1,
            ..self
        }
    }

    /// One level deeper across an equality rewrite (changes the witness
    /// measure arbitrarily, so it blocks induction across it).
    fn rewritten(self) -> Ctx {
        Ctx {
            depth: self.depth + 1,
            rewrites: self.rewrites + 1,
            ..self
        }
    }
}

/// The APT proof engine for one axiom set.
///
/// Construct with [`Prover::new`], then run queries through the
/// [`crate::DepQuery`] builder ([`crate::DepQuery::run_with`]). The proof
/// cache persists across calls, so a prover makes a good per-axiom-set
/// analysis object; [`crate::DepEngine`] additionally wires several
/// provers to one shared cross-thread cache.
#[derive(Debug)]
pub struct Prover<'a> {
    axioms: &'a AxiomSet,
    /// The compiled form of `axioms`: per-side dispatch signatures,
    /// per-kind indexes, and the compile-time injectivity map. Built once
    /// per prover (or shared across an engine's workers via
    /// [`Prover::with_compiled`]); every axiom scan in the hot path goes
    /// through this index instead of re-cloning from the set.
    compiled: Arc<CompiledAxioms>,
    config: ProverConfig,
    cache: FxHashMap<Goal, CacheState>,
    /// Memoized goal-side dispatch signatures, so repeated rule attempts
    /// on recurring suffixes skip the interner lock.
    sig_memo: FxHashMap<RegexId, SideSig>,
    /// Bumped whenever [`Prover::prove`] consults an
    /// [`CacheState::InProgress`] ancestor (whether induction fired or
    /// not). A failure whose subtree left this counter untouched depended
    /// on no ancestor and may enter the negative memo.
    stack_touches: u64,
    /// Memoized `L(a) ⊆ L(b)` results — the RE→DFA conversion dominates
    /// prover time (§4.2), and the same suffix/axiom pairs recur across
    /// splits. Keyed on hash-consed [`RegexId`] pairs: a lookup hashes two
    /// integers instead of formatting two trees.
    subset_cache: FxHashMap<(RegexId, RegexId), SubsetEntry>,
    /// Insertion order of subset-cache keys, for bounded eviction
    /// ([`Prover::evict_subset_entries`]).
    subset_order: VecDeque<(RegexId, RegexId)>,
    stats: ProverStats,
    fuel_left: u64,
    /// Per-query resource state. `limits` is rebuilt by [`Prover::begin_query`]
    /// from the budget (absolute deadline + DFA state bound + cancel flag).
    limits: Limits,
    deadline: Option<Instant>,
    /// First degradation observed in the current query, if any.
    degraded: Option<MaybeReason>,
    /// Set on deadline/cancellation: the whole search unwinds fast.
    aborted: bool,
    /// Insertion order of settled (Proved/Failed) cache entries, for
    /// capacity eviction. Only maintained when the budget bounds the cache.
    settled_order: VecDeque<Goal>,
    /// Cross-prover cache of definite results, attached by
    /// [`crate::DepEngine`]. `None` for standalone provers.
    shared: Option<Arc<SharedCache>>,
}

impl<'a> Prover<'a> {
    /// Creates a prover over `axioms` with the default configuration.
    pub fn new(axioms: &'a AxiomSet) -> Prover<'a> {
        Prover::with_config(axioms, ProverConfig::default())
    }

    /// Creates a prover with an explicit configuration, compiling the
    /// axiom set's dispatch index on the spot.
    pub fn with_config(axioms: &'a AxiomSet, config: ProverConfig) -> Prover<'a> {
        Prover::with_compiled(axioms, config, Arc::new(CompiledAxioms::compile(axioms)))
    }

    /// Creates a prover from an already-compiled axiom set.
    /// [`crate::DepEngine`] compiles once and hands the same
    /// [`CompiledAxioms`] to every worker prover; benchmarks use it to
    /// keep the one-off compilation out of the timed region.
    ///
    /// # Panics
    ///
    /// Panics when `compiled` was not compiled from `axioms` (checked by
    /// set identity).
    pub fn with_compiled(
        axioms: &'a AxiomSet,
        config: ProverConfig,
        compiled: Arc<CompiledAxioms>,
    ) -> Prover<'a> {
        assert_eq!(
            compiled.set_id(),
            axioms.id(),
            "compiled index does not match the axiom set"
        );
        let fuel = config.budget.fuel;
        Prover {
            axioms,
            compiled,
            config,
            cache: FxHashMap::default(),
            sig_memo: FxHashMap::default(),
            stack_touches: 0,
            subset_cache: FxHashMap::default(),
            subset_order: VecDeque::new(),
            stats: ProverStats::default(),
            fuel_left: fuel,
            limits: Limits::none(),
            deadline: None,
            degraded: None,
            aborted: false,
            settled_order: VecDeque::new(),
            shared: None,
        }
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> ProverStats {
        self.stats
    }

    /// The axiom set this prover reasons over.
    pub fn axioms(&self) -> &AxiomSet {
        self.axioms
    }

    /// The compiled dispatch index over the axiom set.
    pub fn compiled(&self) -> &Arc<CompiledAxioms> {
        &self.compiled
    }

    /// Replaces the resource budget for subsequent queries. The proof
    /// cache is kept — safe, because exhausted runs never settle cache
    /// entries (see [`Prover::prove`]) — so a degraded *Maybe* can be
    /// retried with a larger budget on the same prover.
    pub fn set_budget(&mut self, budget: Budget) {
        self.config.budget = budget;
    }

    /// Replaces the budget and returns the previous one, so a per-query
    /// override can be applied and then restored.
    pub(crate) fn swap_budget(&mut self, budget: Budget) -> Budget {
        std::mem::replace(&mut self.config.budget, budget)
    }

    /// Wires this prover to an engine's shared cache. Only definite,
    /// context-free results flow in either direction.
    pub(crate) fn attach_shared(&mut self, cache: Arc<SharedCache>) {
        self.shared = Some(cache);
    }

    /// Resets per-query resource state (fuel, deadline, degradation).
    fn begin_query(&mut self) {
        self.fuel_left = self.config.budget.fuel;
        self.degraded = None;
        self.aborted = false;
        self.deadline = self
            .config
            .budget
            .deadline
            .and_then(|d| Instant::now().checked_add(d));
        self.limits = Limits {
            max_states: self.config.budget.max_dfa_states,
            deadline: self.deadline,
            cancel: self.config.budget.cancel.as_ref().map(CancelToken::as_flag),
        };
    }

    /// Records a degradation (first one wins as the reported reason; every
    /// one is counted in the per-category stats).
    fn note_degraded(&mut self, reason: MaybeReason) {
        self.stats.cutoffs.record(reason);
        if self.degraded.is_none() {
            self.degraded = Some(reason);
        }
    }

    /// Records a hard stop: the search unwinds as fast as it can.
    fn abort(&mut self, reason: MaybeReason) {
        self.note_degraded(reason);
        self.aborted = true;
    }

    /// Polls deadline and cancellation; returns `true` (and aborts) when
    /// the query must stop. Called on every goal attempt — one
    /// `Instant::now()` is noise next to even a cached subset check.
    fn poll_budget(&mut self) -> bool {
        if self.aborted {
            return true;
        }
        if let Some(token) = &self.config.budget.cancel {
            if token.is_cancelled() {
                self.abort(MaybeReason::Cancelled);
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.abort(MaybeReason::DeadlineExceeded);
                return true;
            }
        }
        false
    }

    /// Runs one disjointness query: the proof on success, else *why* no
    /// proof was found — resource exhaustion (fuel, depth, deadline, DFA
    /// budget, cancellation) or a genuine "the axioms do not decide this".
    /// A `(Some(_), _)` result always has `None` for the reason — found
    /// proofs are never degraded.
    pub(crate) fn run_disjoint(
        &mut self,
        origin: Origin,
        a: &Path,
        b: &Path,
    ) -> (Option<Proof>, Option<MaybeReason>) {
        self.begin_query();
        let goal = Goal::new(origin, a.clone(), b.clone());
        let result = self.prove(&goal, Ctx::root());
        let reason = match result {
            Some(_) => None,
            None => Some(
                self.degraded
                    .take()
                    .unwrap_or(MaybeReason::GenuinelyUnknown),
            ),
        };
        (result, reason)
    }

    fn prove(&mut self, goal: &Goal, ctx: Ctx) -> Option<Proof> {
        if self.poll_budget() {
            return None;
        }
        match self.cache.get(goal) {
            Some(CacheState::Proved(p)) => {
                self.stats.cache_hits += 1;
                return Some(p.clone());
            }
            Some(CacheState::Failed { min_rewrites }) => {
                // The entry is valid wherever at least as much of the
                // rewrite allowance is already spent. A context with
                // *fewer* rewrites spent has more search left, so it falls
                // through and re-proves for real.
                if ctx.rewrites >= *min_rewrites {
                    self.stats.cache_hits += 1;
                    if self.config.enable_negative_memo {
                        self.stats.neg_memo_hits += 1;
                    }
                    return None;
                }
            }
            Some(CacheState::InProgress { shrinks, rewrites }) => {
                // Consulting an ancestor — however it resolves — makes the
                // current subtree's outcome context-dependent.
                self.stack_touches += 1;
                // The paper's Kleene induction, as infinite descent: the
                // goal is its own ancestor and at least one rule on the
                // cycle strictly shrinks any concrete counterexample (and
                // no rewrite changed the witness measure), so a minimal
                // counterexample would yield a smaller one — contradiction.
                if ctx.shrinks > *shrinks && ctx.rewrites == *rewrites {
                    return Some(Proof::leaf(
                        goal.clone(),
                        Rule::Induction {
                            target: goal.to_string(),
                        },
                    ));
                }
                return None;
            }
            None => {
                // A sibling worker may already have settled this goal in
                // the engine's shared cache. Shared entries are definite
                // and context-free, so adopting one is exactly a local
                // cache hit (and, like a local hit, costs no fuel).
                if let Some(shared) = self.shared.clone() {
                    match shared.lookup_goal(goal) {
                        Some(SharedVerdict::Proved(p)) => {
                            self.stats.cache_hits += 1;
                            self.stats.shared_hits += 1;
                            self.cache
                                .insert(goal.clone(), CacheState::Proved(p.clone()));
                            self.settle(goal);
                            return Some(p);
                        }
                        Some(SharedVerdict::Failed) => {
                            self.stats.cache_hits += 1;
                            self.stats.shared_hits += 1;
                            // Shared failures are only ever published from
                            // pristine contexts, so they adopt with a zero
                            // floor.
                            self.cache
                                .insert(goal.clone(), CacheState::Failed { min_rewrites: 0 });
                            self.settle(goal);
                            return None;
                        }
                        None => {}
                    }
                }
            }
        }
        if self.fuel_left == 0 {
            self.note_degraded(MaybeReason::SearchExhausted(SearchLimit::Fuel));
            return None;
        }
        if ctx.depth >= self.config.max_depth {
            self.note_degraded(MaybeReason::SearchExhausted(SearchLimit::Depth));
            return None;
        }
        self.fuel_left -= 1;
        self.stats.goals_attempted += 1;
        self.cache.insert(
            goal.clone(),
            CacheState::InProgress {
                shrinks: ctx.shrinks,
                rewrites: ctx.rewrites,
            },
        );

        let touches_before = self.stack_touches;
        let result = self.prove_uncached(goal, ctx);

        match &result {
            Some(p) => {
                // A proof whose induction leaves reference a goal other
                // than this one is conditional on an ancestor still being
                // proven — do not cache it; the self-referencing case is a
                // closed cyclic proof and is safe.
                let this = goal.to_string();
                let dangling = p.induction_targets().into_iter().any(|t| t != this);
                if dangling {
                    self.cache.remove(goal);
                } else {
                    self.cache
                        .insert(goal.clone(), CacheState::Proved(p.clone()));
                    self.settle(goal);
                    if let Some(shared) = &self.shared {
                        shared.publish_goal(goal, SharedVerdict::Proved(p.clone()));
                    }
                }
            }
            None => {
                // Failures observed after *any* resource degradation are
                // never settled: a starved subtree must not poison the
                // cache against a later, better-funded retry.
                let clean = self.degraded.is_none();
                // A subtree that never consulted an in-progress ancestor
                // searched to completion on its own — its failure is
                // ancestor-independent. (A clean run also never hit the
                // rewrite ceiling — that records a cutoff — but keep the
                // observed spend as a conservative validity floor anyway.)
                let untouched = self.stack_touches == touches_before;
                // The legacy condition: pristine root-like contexts only.
                let pristine = ctx.rewrites == 0 && ctx.shrinks == 0;
                let memoize = if self.config.enable_negative_memo {
                    clean && (untouched || pristine)
                } else {
                    clean && pristine
                };
                if memoize {
                    let min_rewrites = if pristine { 0 } else { ctx.rewrites };
                    self.cache
                        .insert(goal.clone(), CacheState::Failed { min_rewrites });
                    self.settle(goal);
                    // Cross-prover publication holds itself to the
                    // strictest standard: complete, ancestor-independent,
                    // zero-floor failures only. An entry admitted purely by
                    // the legacy `pristine` condition may have leaned on an
                    // in-progress ancestor, so it stays local.
                    let publish = min_rewrites == 0
                        && if self.config.enable_negative_memo {
                            untouched
                        } else {
                            true
                        };
                    if publish {
                        if let Some(shared) = &self.shared {
                            shared.publish_goal(goal, SharedVerdict::Failed);
                        }
                    }
                } else {
                    self.cache.remove(goal);
                }
            }
        }
        result
    }

    /// Registers a settled (Proved/Failed) cache entry and, when the budget
    /// bounds the cache, evicts the oldest settled entries over capacity.
    /// In-progress entries are never evicted — they are the proof stack.
    fn settle(&mut self, goal: &Goal) {
        let Some(capacity) = self.config.budget.cache_capacity else {
            return;
        };
        self.settled_order.push_back(goal.clone());
        while self.settled_order.len() > capacity {
            let Some(oldest) = self.settled_order.pop_front() else {
                break;
            };
            if !matches!(self.cache.get(&oldest), Some(CacheState::InProgress { .. })) {
                self.cache.remove(&oldest);
            }
        }
    }

    fn prove_uncached(&mut self, goal: &Goal, ctx: Ctx) -> Option<Proof> {
        // R1: ∀x<>y, x.ε <> y.ε holds by the quantifier itself.
        if goal.origin() == Origin::Distinct && goal.a().is_epsilon() && goal.b().is_epsilon() {
            return Some(Proof::leaf(goal.clone(), Rule::TrivialDistinctEpsilon));
        }

        // R2: direct application of a single axiom (steps A/B).
        if let Some(p) = self.try_direct_axiom(goal) {
            return Some(p);
        }

        // R3: peel a common tail field via injectivity (the paper's §3.3
        // proof applies this first: "Applying A3, theorem is true if …").
        if self.config.enable_tail_peel {
            if let Some(p) = self.try_tail_peel(goal, ctx) {
                return Some(p);
            }
        }

        // R4: peel a common definite head field.
        if self.config.enable_head_peel {
            if let Some(p) = self.try_head_peel(goal, ctx) {
                return Some(p);
            }
        }

        // R5: Kleene-run induction (closure peels), tail then head.
        if self.config.enable_closure_peel {
            if let Some(p) = self.try_closure_tail_peel(goal, ctx) {
                return Some(p);
            }
            if let Some(p) = self.try_closure_head_peel(goal, ctx) {
                return Some(p);
            }
        }

        // R6: the suffix-decomposition core of proveDisj.
        if self.config.enable_decompose {
            if let Some(p) = self.try_decompose(goal, ctx) {
                return Some(p);
            }
        }

        // R7: alternation splitting (after unit treatment failed above).
        if self.config.enable_alt_split {
            if let Some(p) = self.try_alt_split(goal, ctx) {
                return Some(p);
            }
        }

        // R8: the paper's step-E star handling — case analysis on trailing
        // kleene components, with induction closing the repeated case.
        if self.config.enable_closure_peel {
            if let Some(p) = self.try_star_cases(goal, ctx) {
                return Some(p);
            }
        }

        // R9: rewriting with equality axioms.
        if self.config.enable_rewrite {
            if ctx.rewrites < self.config.max_rewrites {
                if let Some(p) = self.try_rewrite(goal, ctx) {
                    return Some(p);
                }
            } else if self.compiled.has_equal() {
                // A rewrite might have applied here but the budget forbids
                // it: record the cutoff so Maybe carries the right reason.
                self.note_degraded(MaybeReason::SearchExhausted(SearchLimit::Rewrites));
            }
        }

        None
    }

    /// Runs one equality query, reporting the degradation reason when the
    /// search was starved (`(false, Some(reason))`). A `true` result is
    /// never degraded.
    pub(crate) fn run_equal(&mut self, a: &Path, b: &Path) -> (bool, Option<MaybeReason>) {
        self.begin_query();
        let proved = self.prove_equal_inner(a, b);
        let reason = if proved { None } else { self.degraded.take() };
        (proved, reason)
    }

    /// Proves that two access paths denote the **same single vertex** from
    /// any common origin: both paths must rewrite (via the equality
    /// axioms, `∀p, p.RE1 = p.RE2`) to one common definite form.
    /// Set-equality plus cardinality one gives the `deptest` **Yes** case
    /// beyond syntactic identity — e.g. `next.prev.next ≡ next` on a
    /// circular doubly-linked list.
    fn prove_equal_inner(&mut self, a: &Path, b: &Path) -> bool {
        let reachable = |p: &Path, prover: &mut Self| -> Vec<Path> {
            let mut seen = vec![p.clone()];
            let mut frontier = vec![p.clone()];
            for _ in 0..prover.config.max_rewrites {
                let mut next = Vec::new();
                for cur in &frontier {
                    for rw in prover.rewrites_of(cur) {
                        if !seen.contains(&rw) {
                            seen.push(rw.clone());
                            next.push(rw);
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                frontier = next;
            }
            seen
        };
        let from_a = reachable(a, self);
        let from_b = reachable(b, self);
        from_a.iter().any(|x| x.is_definite() && from_b.contains(x))
    }

    /// All single-step prefix rewrites of a path by the equality axioms
    /// (borrowed from the compiled set — no per-call cloning).
    fn rewrites_of(&mut self, path: &Path) -> Vec<Path> {
        let compiled = Arc::clone(&self.compiled);
        let dispatch = self.config.enable_axiom_dispatch;
        let mut out = Vec::new();
        for k in 1..=path.len() {
            let head = Path::new(path.components()[..k].to_vec());
            let tail = Path::new(path.components()[k..].to_vec());
            let head_re = head.to_regex();
            let head_id = RegexId::intern(&head_re);
            let head_sig = dispatch.then(|| self.sig_of(head_id));
            for ax in compiled.eq_axioms() {
                let sides = [
                    (ax.lhs_id(), ax.lhs(), ax.rhs(), ax.lhs_sig()),
                    (ax.rhs_id(), ax.rhs(), ax.lhs(), ax.rhs_sig()),
                ];
                for (from_id, from, to, from_sig) in sides {
                    // The rewrite fires on language *equality* of head and
                    // side, so both signature inclusion directions must be
                    // possible.
                    if let Some(hs) = &head_sig {
                        if !hs.could_equal(from_sig) {
                            self.stats.dispatch_misses += 1;
                            continue;
                        }
                        self.stats.dispatch_hits += 1;
                    }
                    if self.subset_ids(head_id, &head_re, from_id, from)
                        && self.subset_ids(from_id, from, head_id, &head_re)
                    {
                        if let Ok(to_path) = Path::try_from(to) {
                            out.push(to_path.concat(&tail));
                        }
                    }
                }
            }
        }
        out
    }

    // ---- R2: direct axiom application ---------------------------------

    /// Memoized `L(a) ⊆ L(b)` for pre-interned sides (`a_id`/`b_id` must
    /// intern `a`/`b`) under the query's resource limits. Axiom sides come
    /// interned from construction; goal-side expressions are interned once
    /// per rule application.
    ///
    /// When a limit stops the DFA construction the answer is reported as
    /// `false` — "this axiom could not be shown to apply", which can only
    /// lose proofs, never fabricate one — and is **not** memoized, so a
    /// retry under a bigger budget re-decides it for real.
    fn subset_ids(&mut self, a_id: RegexId, a: &Regex, b_id: RegexId, b: &Regex) -> bool {
        if self.aborted {
            return false;
        }
        // O(1) structural fast paths: ∅ ⊆ X, and X ⊆ X by hash-consing.
        if a_id.is_empty_language() || a_id == b_id {
            return true;
        }
        let key = (a_id, b_id);
        if let Some(entry) = self.subset_cache.get_mut(&key) {
            entry.hot = true;
            return entry.result;
        }
        // Decided subset answers are budget-independent, so a sibling
        // worker's answer is as good as our own.
        if let Some(shared) = &self.shared {
            if let Some(hit) = shared.lookup_subset(&key) {
                self.record_subset(key, hit);
                return hit;
            }
        }
        self.stats.subset_checks += 1;
        let dfa_cache = self.shared.as_ref().map(|s| s.dfas());
        match ops::try_is_subset_interned(a_id, a, b_id, b, &self.limits, dfa_cache) {
            Ok(result) => {
                if let Some(shared) = &self.shared {
                    shared.publish_subset(key, result);
                }
                self.record_subset(key, result);
                result
            }
            Err(LimitExceeded::States { .. }) => {
                self.note_degraded(MaybeReason::RegexBudget);
                false
            }
            Err(LimitExceeded::Deadline) => {
                self.abort(MaybeReason::DeadlineExceeded);
                false
            }
            Err(LimitExceeded::Cancelled) => {
                self.abort(MaybeReason::Cancelled);
                false
            }
        }
    }

    /// Records a decided subset answer, evicting first when the cache is at
    /// capacity. The subset cache is bounded alongside the proof cache
    /// (same knob, wider multiplier: entries are small).
    fn record_subset(&mut self, key: (RegexId, RegexId), result: bool) {
        if let Some(cap) = self.config.budget.cache_capacity {
            if self.subset_cache.len() >= cap.saturating_mul(8) {
                self.evict_subset_entries();
            }
        }
        if self
            .subset_cache
            .insert(key, SubsetEntry { result, hot: false })
            .is_none()
        {
            self.subset_order.push_back(key);
        }
    }

    /// Evicts about a quarter of the subset cache in insertion order,
    /// giving entries hit since insertion (or since their last reprieve) a
    /// second chance: a hot entry is re-queued cold instead of dropped.
    /// Replaces the old wholesale `clear()`, which threw away exactly the
    /// hot axiom-side pairs the next goals were about to ask for again.
    fn evict_subset_entries(&mut self) {
        let target = (self.subset_cache.len() / 4).max(1);
        let mut evicted = 0;
        // Each key is scanned at most twice (once hot, once cold), so this
        // terminates even when every entry is hot.
        let mut scans_left = self.subset_order.len().saturating_mul(2);
        while evicted < target && scans_left > 0 {
            scans_left -= 1;
            let Some(key) = self.subset_order.pop_front() else {
                break;
            };
            match self.subset_cache.get_mut(&key) {
                Some(entry) if entry.hot => {
                    entry.hot = false;
                    self.subset_order.push_back(key);
                }
                Some(_) => {
                    self.subset_cache.remove(&key);
                    evicted += 1;
                }
                None => {}
            }
        }
    }

    /// The dispatch signature of a goal-side expression over the compiled
    /// alphabet, memoized per prover (the same suffixes recur across every
    /// split of a query).
    fn sig_of(&mut self, id: RegexId) -> SideSig {
        if let Some(sig) = self.sig_memo.get(&id) {
            return *sig;
        }
        let sig = self.compiled.sig_of(id);
        self.sig_memo.insert(id, sig);
        sig
    }

    /// Finds a single axiom of the right form covering both paths.
    /// `a_id`/`b_id` must intern `a`/`b`; the axiom sides come pre-interned
    /// from [`apt_axioms::Axiom`] construction, so every subset check here
    /// keys on ids.
    ///
    /// With dispatch enabled, each orientation of each candidate is first
    /// screened against the compiled first-/last-symbol signatures; a
    /// pruned orientation's subset checks were certain to fail, so the
    /// *first* surviving match — and with it the produced proof — is the
    /// same one the linear scan finds. Pruning can, however, skip DFA
    /// constructions that would have tripped the state budget, so an
    /// indexed run may degrade strictly less often than a linear one.
    fn find_covering_axiom(
        &mut self,
        origin: Origin,
        a_id: RegexId,
        a: &Regex,
        b_id: RegexId,
        b: &Regex,
    ) -> Option<(String, bool)> {
        let kind = match origin {
            Origin::Same => AxiomKind::DisjointSameOrigin,
            Origin::Distinct => AxiomKind::DisjointDistinctOrigins,
        };
        let compiled = Arc::clone(&self.compiled);
        let dispatch = self.config.enable_axiom_dispatch;
        let (sa, sb) = if dispatch {
            (Some(self.sig_of(a_id)), Some(self.sig_of(b_id)))
        } else {
            (None, None)
        };
        for ax in compiled.of_kind(kind) {
            let admit = |s: &Option<SideSig>, side: &SideSig| match s {
                Some(sig) => sig.could_be_subset_of(side),
                None => true,
            };
            if admit(&sa, ax.lhs_sig()) && admit(&sb, ax.rhs_sig()) {
                if dispatch {
                    self.stats.dispatch_hits += 1;
                }
                if self.subset_ids(a_id, a, ax.lhs_id(), ax.lhs())
                    && self.subset_ids(b_id, b, ax.rhs_id(), ax.rhs())
                {
                    return Some((ax.label(), false));
                }
            } else {
                self.stats.dispatch_misses += 1;
            }
            if admit(&sa, ax.rhs_sig()) && admit(&sb, ax.lhs_sig()) {
                if dispatch {
                    self.stats.dispatch_hits += 1;
                }
                if self.subset_ids(a_id, a, ax.rhs_id(), ax.rhs())
                    && self.subset_ids(b_id, b, ax.lhs_id(), ax.lhs())
                {
                    return Some((ax.label(), true));
                }
            } else {
                self.stats.dispatch_misses += 1;
            }
        }
        None
    }

    fn try_direct_axiom(&mut self, goal: &Goal) -> Option<Proof> {
        let a = goal.a().to_regex();
        let b = goal.b().to_regex();
        let (a_id, b_id) = (RegexId::intern(&a), RegexId::intern(&b));
        let (axiom, swapped) = self.find_covering_axiom(goal.origin(), a_id, &a, b_id, &b)?;
        Some(Proof::leaf(goal.clone(), Rule::Axiom { axiom, swapped }))
    }

    // ---- injectivity ----------------------------------------------------

    /// An axiom `∀p<>q, p.f <> q.f` (up to language equality) makes `f`
    /// injective: distinct vertices have distinct `f`-targets.
    ///
    /// With dispatch enabled the question was already decided at compile
    /// time for every field (the first certifying axiom in set order —
    /// the same one the runtime loop would find), so the peels pay a map
    /// probe instead of four subset checks. The runtime loop remains the
    /// fallback for sets whose compile tripped the state cap, and the
    /// whole body of the linear-baseline mode.
    fn injectivity_axiom(&mut self, f: Symbol) -> Option<String> {
        if self.config.enable_axiom_dispatch {
            if let Injectivity::Decided(verdict) = self.compiled.injectivity(f) {
                return verdict.map(str::to_owned);
            }
        }
        let fre = Regex::field(f);
        let fre_id = RegexId::intern(&fre);
        let compiled = Arc::clone(&self.compiled);
        for ax in compiled.of_kind(AxiomKind::DisjointDistinctOrigins) {
            // Fast path: structural equality is an id compare.
            if ax.lhs_id() == fre_id && ax.rhs_id() == fre_id {
                return Some(ax.label());
            }
            if self.subset_ids(fre_id, &fre, ax.lhs_id(), ax.lhs())
                && self.subset_ids(ax.lhs_id(), ax.lhs(), fre_id, &fre)
                && self.subset_ids(fre_id, &fre, ax.rhs_id(), ax.rhs())
                && self.subset_ids(ax.rhs_id(), ax.rhs(), fre_id, &fre)
            {
                return Some(ax.label());
            }
        }
        None
    }

    // ---- R3: head peel --------------------------------------------------

    fn try_head_peel(&mut self, goal: &Goal, ctx: Ctx) -> Option<Proof> {
        let (ha, ta) = goal.a().split_first()?;
        let (hb, tb) = goal.b().split_first()?;
        let (Component::Field(fa), Component::Field(fb)) = (ha, hb) else {
            return None;
        };
        if fa != fb {
            return None;
        }
        let f = *fa;
        match goal.origin() {
            Origin::Same => {
                // x.f is a single vertex; generalize over it.
                let sub = Goal::new(Origin::Same, ta, tb);
                let child = self.prove(&sub, ctx.shrunk())?;
                Some(Proof {
                    goal: goal.clone(),
                    rule: Rule::HeadPeel {
                        field: f.as_str().to_owned(),
                    },
                    children: vec![child],
                })
            }
            Origin::Distinct => {
                if let Some(axiom) = self.injectivity_axiom(f) {
                    // x≠y ⟹ x.f ≠ y.f, so the tails again have distinct
                    // origins.
                    let sub = Goal::new(Origin::Distinct, ta, tb);
                    let child = self.prove(&sub, ctx.shrunk())?;
                    Some(Proof {
                        goal: goal.clone(),
                        rule: Rule::HeadPeelInjective {
                            field: f.as_str().to_owned(),
                            axiom,
                        },
                        children: vec![child],
                    })
                } else {
                    // x.f and y.f may coincide or differ: both cases needed.
                    let sub_d = Goal::new(Origin::Distinct, ta.clone(), tb.clone());
                    let sub_s = Goal::new(Origin::Same, ta, tb);
                    let c1 = self.prove(&sub_d, ctx.shrunk())?;
                    let c2 = self.prove(&sub_s, ctx.shrunk())?;
                    Some(Proof {
                        goal: goal.clone(),
                        rule: Rule::HeadPeelCases {
                            field: f.as_str().to_owned(),
                        },
                        children: vec![c1, c2],
                    })
                }
            }
        }
    }

    // ---- R4: tail peel --------------------------------------------------

    fn try_tail_peel(&mut self, goal: &Goal, ctx: Ctx) -> Option<Proof> {
        let (ia, ta) = goal.a().split_last()?;
        let (ib, tb) = goal.b().split_last()?;
        let (Component::Field(fa), Component::Field(fb)) = (ta, tb) else {
            return None;
        };
        if fa != fb {
            return None;
        }
        let f = *fa;
        let axiom = self.injectivity_axiom(f)?;
        // If u.f = v.f then u = v (injectivity), so an intersection of the
        // full paths forces an intersection of the prefixes.
        let sub = Goal::new(goal.origin(), ia, ib);
        let child = self.prove(&sub, ctx.shrunk())?;
        Some(Proof {
            goal: goal.clone(),
            rule: Rule::TailPeel {
                field: f.as_str().to_owned(),
                axiom,
            },
            children: vec![child],
        })
    }

    // ---- R5: closure peels (Kleene induction) ---------------------------

    fn try_closure_tail_peel(&mut self, goal: &Goal, ctx: Ctx) -> Option<Proof> {
        let (base_a, fa, min_a, ub_a) = strip_trailing_run(goal.a())?;
        let (base_b, fb, min_b, ub_b) = strip_trailing_run(goal.b())?;
        if fa != fb {
            return None;
        }
        // Plain equal-length definite runs are handled by repeated tail
        // peel; induction is only needed when a run is unbounded.
        if !ub_a && !ub_b {
            return None;
        }
        let f = fa;
        let axiom = self.injectivity_axiom(f)?;
        let children = self.closure_cases(
            goal.origin(),
            &base_a,
            min_a,
            ub_a,
            &base_b,
            min_b,
            ub_b,
            f,
            ctx,
        )?;
        Some(Proof {
            goal: goal.clone(),
            rule: Rule::ClosureTailPeel {
                field: f.as_str().to_owned(),
                axiom,
            },
            children,
        })
    }

    fn try_closure_head_peel(&mut self, goal: &Goal, ctx: Ctx) -> Option<Proof> {
        let (base_a, fa, min_a, ub_a) = strip_leading_run(goal.a())?;
        let (base_b, fb, min_b, ub_b) = strip_leading_run(goal.b())?;
        if fa != fb {
            return None;
        }
        if !ub_a && !ub_b {
            return None;
        }
        let f = fa;
        // Same-origin: peeling equal-length head runs lands both paths on
        // the same intermediate vertex, no injectivity needed. For
        // distinct origins, injectivity of `f` preserves distinctness.
        let axiom = match goal.origin() {
            Origin::Same => None,
            Origin::Distinct => Some(self.injectivity_axiom(f)?),
        };
        // Residual goals mirror the tail version, but the extra run is a
        // *leading* run on the longer side.
        let mut children = Vec::new();
        let plus = |base: &Path| {
            let mut p = Path::new(vec![Component::Plus(Path::fields([f.as_str()]))]);
            p = p.concat(base);
            p
        };
        // Shrink accounting as in the tail version: only guaranteed peels
        // count for the induction measure.
        let shrink_ctx = |strict: bool| if strict { ctx.shrunk() } else { ctx.deeper() };
        // equal-length case
        if runs_can_be_equal(min_a, ub_a, min_b, ub_b) {
            let g = Goal::new(goal.origin(), base_a.clone(), base_b.clone());
            children.push(self.prove(&g, shrink_ctx(min_a.max(min_b) >= 1))?);
        }
        // A-side has extra leading f's
        if runs_can_exceed(min_a, ub_a, min_b, ub_b) {
            let g = Goal::new(goal.origin(), plus(&base_a), base_b.clone());
            children.push(self.prove(&g, shrink_ctx(min_b >= 1))?);
        }
        // B-side has extra leading f's
        if runs_can_exceed(min_b, ub_b, min_a, ub_a) {
            let g = Goal::new(goal.origin(), base_a.clone(), plus(&base_b));
            children.push(self.prove(&g, shrink_ctx(min_a >= 1))?);
        }
        if children.is_empty() {
            // No case is even possible: the two runs can never produce an
            // intersection candidate... which cannot happen (some case is
            // always possible), so treat defensively as failure.
            return None;
        }
        let _ = axiom; // recorded implicitly via the rule field below
        Some(Proof {
            goal: goal.clone(),
            rule: Rule::ClosureHeadPeel {
                field: f.as_str().to_owned(),
            },
            children,
        })
    }

    /// The equal / left-extra / right-extra residual goals for a common
    /// *trailing* run of `f`.
    #[allow(clippy::too_many_arguments)]
    fn closure_cases(
        &mut self,
        origin: Origin,
        base_a: &Path,
        min_a: usize,
        ub_a: bool,
        base_b: &Path,
        min_b: usize,
        ub_b: bool,
        f: Symbol,
        ctx: Ctx,
    ) -> Option<Vec<Proof>> {
        let mut children = Vec::new();
        let with_plus = |base: &Path| {
            let mut p = base.clone();
            p.push(Component::Plus(Path::fields([f.as_str()])));
            p
        };
        // A case only counts as witness-shrinking when it is guaranteed
        // to peel at least one `f` from a concrete witness (see the
        // decompose rule for the rationale).
        let shrink_ctx = |strict: bool| if strict { ctx.shrunk() } else { ctx.deeper() };
        if runs_can_be_equal(min_a, ub_a, min_b, ub_b) {
            let g = Goal::new(origin, base_a.clone(), base_b.clone());
            children.push(self.prove(&g, shrink_ctx(min_a.max(min_b) >= 1))?);
        }
        if runs_can_exceed(min_a, ub_a, min_b, ub_b) {
            let g = Goal::new(origin, with_plus(base_a), base_b.clone());
            children.push(self.prove(&g, shrink_ctx(min_b >= 1))?);
        }
        if runs_can_exceed(min_b, ub_b, min_a, ub_a) {
            let g = Goal::new(origin, base_a.clone(), with_plus(base_b));
            children.push(self.prove(&g, shrink_ctx(min_a >= 1))?);
        }
        if children.is_empty() {
            return None;
        }
        Some(children)
    }

    // ---- R6: suffix decomposition (Figure 5) ----------------------------

    fn try_decompose(&mut self, goal: &Goal, ctx: Ctx) -> Option<Proof> {
        // Besides the path itself, also try the language-equal variant that
        // unfolds a trailing `w+` into `w*·w` — this exposes the final
        // mandatory unit of a Kleene component to the suffix enumeration,
        // which is how the paper's inductive step peels one repetition.
        let variants = |p: &Path| -> Vec<Path> {
            let mut out = vec![p.clone()];
            if let Some(v) = unfold_last_plus(p) {
                out.push(v);
            }
            out
        };
        for a in variants(goal.a()) {
            for b in variants(goal.b()) {
                let na = a.len();
                let nb = b.len();
                // Enumerate suffix pairs in increasing combined length: the
                // paper's (1,1)/(1,0)/(0,1) recursive scheme generates
                // exactly all pairs.
                for total in 1..=(na + nb) {
                    for i in 0..=total.min(na) {
                        let j = total - i;
                        if j > nb {
                            continue;
                        }
                        if let Some(p) = self.try_split(goal, &a, &b, i, j, ctx) {
                            return Some(p);
                        }
                    }
                }
            }
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    fn try_split(
        &mut self,
        goal: &Goal,
        a: &Path,
        b: &Path,
        i: usize,
        j: usize,
        ctx: Ctx,
    ) -> Option<Proof> {
        let sa = a.suffix(i);
        let sb = b.suffix(j);
        let pa = a.prefix(i);
        let pb = b.prefix(j);

        let sa_re = sa.to_regex();
        let sb_re = sb.to_regex();
        let (sa_id, sb_id) = (RegexId::intern(&sa_re), RegexId::intern(&sb_re));
        // T1: suffixes disjoint assuming a common origin (step A).
        let t1 = self.find_covering_axiom(Origin::Same, sa_id, &sa_re, sb_id, &sb_re);
        // T2: suffixes disjoint assuming distinct origins (step B).
        let t2 = self.find_covering_axiom(Origin::Distinct, sa_id, &sa_re, sb_id, &sb_re);

        let suffix_goal = |o: Origin| Goal::new(o, sa.clone(), sb.clone());
        let leaf = |o: Origin, (axiom, swapped): (String, bool)| {
            Proof::leaf(suffix_goal(o), Rule::Axiom { axiom, swapped })
        };

        // Step A∧B: both origin cases discharged — prefix relationship
        // irrelevant.
        if let (Some(l1), Some(l2)) = (t1.clone(), t2.clone()) {
            return Some(Proof {
                goal: goal.clone(),
                rule: Rule::Decompose {
                    suffix_a: sa.to_string(),
                    suffix_b: sb.to_string(),
                    prefix_case: PrefixCase::BothOrigins,
                },
                children: vec![leaf(Origin::Same, l1), leaf(Origin::Distinct, l2)],
            });
        }

        // Step C: T1 plus definitely-equal prefixes.
        if let Some(l1) = t1 {
            let prefixes_equal = match goal.origin() {
                Origin::Same => pa == pb && pa.is_definite(),
                // With distinct roots, prefix vertices can never be proven
                // equal (x.P vs y.P may or may not coincide).
                Origin::Distinct => false,
            };
            if prefixes_equal {
                return Some(Proof {
                    goal: goal.clone(),
                    rule: Rule::Decompose {
                        suffix_a: sa.to_string(),
                        suffix_b: sb.to_string(),
                        prefix_case: PrefixCase::PrefixesEqual,
                    },
                    children: vec![leaf(Origin::Same, l1)],
                });
            }
        }

        // Step D: T2 plus recursively-proven prefix disjointness.
        if let Some(l2) = t2 {
            // For a same-origin goal with both prefixes ε the prefix
            // vertices are equal, so T2 can never apply.
            let trivially_distinct =
                goal.origin() == Origin::Distinct && pa.is_epsilon() && pb.is_epsilon();
            if trivially_distinct {
                return Some(Proof {
                    goal: goal.clone(),
                    rule: Rule::Decompose {
                        suffix_a: sa.to_string(),
                        suffix_b: sb.to_string(),
                        prefix_case: PrefixCase::PrefixesDisjoint,
                    },
                    children: vec![leaf(Origin::Distinct, l2)],
                });
            }
            if !(goal.origin() == Origin::Same && pa.is_epsilon() && pb.is_epsilon()) {
                // Witness-descent bookkeeping: the prefix recursion only
                // counts as shrinking when a peeled suffix is guaranteed
                // non-empty — a nullable suffix may have matched ε,
                // leaving a counterexample witness unchanged, and the
                // induction rule must not close a cycle on that basis.
                let strict = !sa_re.is_nullable() || !sb_re.is_nullable();
                let prefix_ctx = if strict { ctx.shrunk() } else { ctx.deeper() };
                let prefix_goal = Goal::new(goal.origin(), pa, pb);
                if let Some(pp) = self.prove(&prefix_goal, prefix_ctx) {
                    return Some(Proof {
                        goal: goal.clone(),
                        rule: Rule::Decompose {
                            suffix_a: sa.to_string(),
                            suffix_b: sb.to_string(),
                            prefix_case: PrefixCase::PrefixesDisjoint,
                        },
                        children: vec![leaf(Origin::Distinct, l2), pp],
                    });
                }
            }
        }
        None
    }

    // ---- R8: star case analysis (step E of §4.1) ------------------------

    /// Case analysis on trailing Kleene-star components: each star is
    /// replaced by ε and by one-or-more repetitions (`w+`), matching the
    /// paper's 3-case (one star) and 4-case (two stars) schemes. The
    /// residual `w+` goals are handled by the decomposition's plus
    /// unfolding, and the repeated case closes through the induction
    /// mechanism in [`Prover::prove`].
    fn try_star_cases(&mut self, goal: &Goal, ctx: Ctx) -> Option<Proof> {
        let tail_star = |p: &Path| -> Option<(Path, Path)> {
            let (init, last) = p.split_last()?;
            if let Component::Star(w) = last {
                Some((init, w.clone()))
            } else {
                None
            }
        };
        let sa = tail_star(goal.a());
        let sb = tail_star(goal.b());
        if sa.is_none() && sb.is_none() {
            return None;
        }
        let cases = |p: &Path, s: &Option<(Path, Path)>| -> Vec<Path> {
            match s {
                Some((init, w)) => {
                    let mut plus = init.clone();
                    plus.push(Component::Plus(w.clone()));
                    vec![init.clone(), plus]
                }
                None => vec![p.clone()],
            }
        };
        let mut children = Vec::new();
        for aa in cases(goal.a(), &sa) {
            for bb in cases(goal.b(), &sb) {
                let g = Goal::new(goal.origin(), aa.clone(), bb.clone());
                children.push(self.prove(&g, ctx.deeper())?);
            }
        }
        Some(Proof {
            goal: goal.clone(),
            rule: Rule::StarCases,
            children,
        })
    }

    // ---- R7: alternation splitting --------------------------------------

    fn try_alt_split(&mut self, goal: &Goal, ctx: Ctx) -> Option<Proof> {
        // Find the last alternation component in either path and split it.
        let split_path = |p: &Path| -> Option<(usize, Path, Path)> {
            for (idx, c) in p.components().iter().enumerate().rev() {
                if let Component::Alt(x, y) = c {
                    return Some((idx, x.clone(), y.clone()));
                }
            }
            None
        };
        let splice = |p: &Path, idx: usize, alt: &Path| -> Path {
            let mut comps: Vec<Component> = p.components()[..idx].to_vec();
            comps.extend(alt.components().iter().cloned());
            comps.extend(p.components()[idx + 1..].iter().cloned());
            Path::new(comps)
        };

        if let Some((idx, x, y)) = split_path(goal.a()) {
            let ga = Goal::new(goal.origin(), splice(goal.a(), idx, &x), goal.b().clone());
            let gb = Goal::new(goal.origin(), splice(goal.a(), idx, &y), goal.b().clone());
            let c1 = self.prove(&ga, ctx.deeper())?;
            let c2 = self.prove(&gb, ctx.deeper())?;
            return Some(Proof {
                goal: goal.clone(),
                rule: Rule::AltSplit,
                children: vec![c1, c2],
            });
        }
        if let Some((idx, x, y)) = split_path(goal.b()) {
            let ga = Goal::new(goal.origin(), goal.a().clone(), splice(goal.b(), idx, &x));
            let gb = Goal::new(goal.origin(), goal.a().clone(), splice(goal.b(), idx, &y));
            let c1 = self.prove(&ga, ctx.deeper())?;
            let c2 = self.prove(&gb, ctx.deeper())?;
            return Some(Proof {
                goal: goal.clone(),
                rule: Rule::AltSplit,
                children: vec![c1, c2],
            });
        }
        None
    }

    // ---- R8: rewriting with equality axioms ------------------------------

    fn try_rewrite(&mut self, goal: &Goal, ctx: Ctx) -> Option<Proof> {
        let compiled = Arc::clone(&self.compiled);
        if !compiled.has_equal() {
            return None;
        }
        let dispatch = self.config.enable_axiom_dispatch;
        for (which, path) in [(0u8, goal.a().clone()), (1u8, goal.b().clone())] {
            for k in 1..=path.len() {
                // `head` is the first k components; the axiom must match it
                // up to language equality.
                let head = Path::new(path.components()[..k].to_vec());
                let tail = Path::new(path.components()[k..].to_vec());
                let head_re = head.to_regex();
                let head_id = RegexId::intern(&head_re);
                let head_sig = dispatch.then(|| self.sig_of(head_id));
                for ax in compiled.eq_axioms() {
                    let label = ax.label();
                    let sides = [
                        (ax.lhs_id(), ax.lhs(), ax.rhs(), ax.lhs_sig()),
                        (ax.rhs_id(), ax.rhs(), ax.lhs(), ax.rhs_sig()),
                    ];
                    for (from_id, from, to, from_sig) in sides {
                        if let Some(hs) = &head_sig {
                            if !hs.could_equal(from_sig) {
                                self.stats.dispatch_misses += 1;
                                continue;
                            }
                            self.stats.dispatch_hits += 1;
                        }
                        if self.subset_ids(head_id, &head_re, from_id, from)
                            && self.subset_ids(from_id, from, head_id, &head_re)
                        {
                            let Ok(to_path) = Path::try_from(to) else {
                                continue;
                            };
                            let new_path = to_path.concat(&tail);
                            let (na, nb) = if which == 0 {
                                (new_path.clone(), goal.b().clone())
                            } else {
                                (goal.a().clone(), new_path.clone())
                            };
                            let sub = Goal::new(goal.origin(), na, nb);
                            if sub == *goal {
                                continue;
                            }
                            if let Some(child) = self.prove(&sub, ctx.rewritten()) {
                                return Some(Proof {
                                    goal: goal.clone(),
                                    rule: Rule::Rewrite {
                                        axiom: label.clone(),
                                    },
                                    children: vec![child],
                                });
                            }
                        }
                    }
                }
            }
        }
        None
    }
}

/// Unfolds a trailing `w+` component into `w*` followed by `w`'s
/// components — a language-equal rewriting that exposes the mandatory last
/// unit to suffix enumeration. Returns `None` when the path does not end
/// in a Plus.
pub(crate) fn unfold_last_plus(p: &Path) -> Option<Path> {
    let (init, last) = p.split_last()?;
    let Component::Plus(w) = last else {
        return None;
    };
    let mut out = init;
    out.push(Component::Star(w.clone()));
    for c in w.components() {
        out.push(c.clone());
    }
    Some(out)
}

/// Strips the maximal trailing run of one field from a path.
///
/// Returns `(base, field, min_count, unbounded)` where the stripped suffix
/// denotes `field^k` for `k ∈ {min_count, …}` (unbounded) or `{min_count}`.
pub(crate) fn strip_trailing_run(path: &Path) -> Option<(Path, Symbol, usize, bool)> {
    let comps = path.components();
    let mut idx = comps.len();
    let mut field: Option<Symbol> = None;
    let mut min = 0usize;
    let mut unbounded = false;
    while idx > 0 {
        match run_field(&comps[idx - 1], field) {
            Some((f, dmin, ub)) => {
                field = Some(f);
                min += dmin;
                unbounded |= ub;
                idx -= 1;
            }
            None => break,
        }
    }
    let f = field?;
    Some((Path::new(comps[..idx].to_vec()), f, min, unbounded))
}

/// Strips the maximal leading run of one field from a path.
pub(crate) fn strip_leading_run(path: &Path) -> Option<(Path, Symbol, usize, bool)> {
    let comps = path.components();
    let mut idx = 0;
    let mut field: Option<Symbol> = None;
    let mut min = 0usize;
    let mut unbounded = false;
    while idx < comps.len() {
        match run_field(&comps[idx], field) {
            Some((f, dmin, ub)) => {
                field = Some(f);
                min += dmin;
                unbounded |= ub;
                idx += 1;
            }
            None => break,
        }
    }
    let f = field?;
    Some((Path::new(comps[idx..].to_vec()), f, min, unbounded))
}

/// If `c` is a pure run component of a single field (the field itself, or
/// `f*`/`f+` over it) compatible with `expect`, returns
/// `(field, min_repeats, unbounded)`.
pub(crate) fn run_field(c: &Component, expect: Option<Symbol>) -> Option<(Symbol, usize, bool)> {
    let as_single_field = |p: &Path| -> Option<Symbol> {
        match p.components() {
            [Component::Field(f)] => Some(*f),
            _ => None,
        }
    };
    let (f, min, ub) = match c {
        Component::Field(f) => (*f, 1, false),
        Component::Star(p) => (as_single_field(p)?, 0, true),
        Component::Plus(p) => (as_single_field(p)?, 1, true),
        Component::Alt(_, _) => return None,
    };
    match expect {
        Some(e) if e != f => None,
        _ => Some((f, min, ub)),
    }
}

/// Whether the two run-length sets `{min_a,…}`/`{min_b,…}` can contain an
/// equal pair.
pub(crate) fn runs_can_be_equal(min_a: usize, ub_a: bool, min_b: usize, ub_b: bool) -> bool {
    min_a == min_b || (ub_a && min_b >= min_a) || (ub_b && min_a >= min_b)
}

/// Whether some length in the first set can strictly exceed some length in
/// the second.
pub(crate) fn runs_can_exceed(min_a: usize, ub_a: bool, min_b: usize, _ub_b: bool) -> bool {
    ub_a || min_a > min_b
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_axioms::adds;

    /// Test-side shim over the public [`crate::DepQuery`] builder, so the
    /// prover unit tests exercise the same entry point as every caller.
    trait Disj {
        fn disj(&mut self, origin: Origin, a: &Path, b: &Path) -> Option<Proof>;
    }

    impl Disj for Prover<'_> {
        fn disj(&mut self, origin: Origin, a: &Path, b: &Path) -> Option<Proof> {
            crate::DepQuery::disjoint(a, b)
                .origin(origin)
                .run_with(self)
                .proof
        }
    }

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    #[test]
    fn strip_trailing_run_combinations() {
        let (base, f, min, ub) = strip_trailing_run(&p("a.b.c.c+")).unwrap();
        assert_eq!(base.to_string(), "a.b");
        assert_eq!(f.as_str(), "c");
        assert_eq!(min, 2);
        assert!(ub);

        let (base, _, min, ub) = strip_trailing_run(&p("c*")).unwrap();
        assert!(base.is_epsilon());
        assert_eq!(min, 0);
        assert!(ub);

        // mixed fields stop the run
        let (base, f, min, ub) = strip_trailing_run(&p("c.d")).unwrap();
        assert_eq!(base.to_string(), "c");
        assert_eq!(f.as_str(), "d");
        assert_eq!(min, 1);
        assert!(!ub);

        assert!(strip_trailing_run(&Path::epsilon()).is_none());
    }

    #[test]
    fn strip_leading_run_combinations() {
        let (base, f, min, ub) = strip_leading_run(&p("c+.c.a")).unwrap();
        assert_eq!(base.to_string(), "a");
        assert_eq!(f.as_str(), "c");
        assert_eq!(min, 2);
        assert!(ub);
    }

    #[test]
    fn run_possibility_logic() {
        // {1} vs {1}
        assert!(runs_can_be_equal(1, false, 1, false));
        assert!(!runs_can_exceed(1, false, 1, false));
        // {1,...} vs {1}
        assert!(runs_can_exceed(1, true, 1, false));
        // {2} vs {0,...}
        assert!(runs_can_be_equal(2, false, 0, true));
        assert!(runs_can_exceed(2, false, 0, true));
    }

    #[test]
    fn paper_section_3_3_proof() {
        // Theorem: ∀ hroot, hroot.LLN <> hroot.LRN — provable from the
        // Figure 3 axioms, with the same shape as the paper's proof.
        let axioms = adds::leaf_linked_tree_axioms();
        let mut prover = Prover::new(&axioms);
        let proof = prover
            .disj(Origin::Same, &p("L.L.N"), &p("L.R.N"))
            .expect("paper's proof must be found");
        let used = proof.axioms_used();
        assert!(used.contains(&"A1".to_owned()), "uses A1, got {used:?}");
        assert!(used.contains(&"A3".to_owned()), "uses A3, got {used:?}");
    }

    #[test]
    fn same_paths_not_disprovable() {
        let axioms = adds::leaf_linked_tree_axioms();
        let mut prover = Prover::new(&axioms);
        assert!(prover
            .disj(Origin::Same, &p("L.L.N"), &p("L.L.N"))
            .is_none());
    }

    #[test]
    fn paper_section_5_theorem_t_minimal_axioms() {
        // Theorem T: ∀ hr, hr.ncolE+ <> hr.nrowE+.ncolE+
        let axioms = adds::sparse_matrix_minimal_axioms();
        let mut prover = Prover::new(&axioms);
        let proof = prover
            .disj(Origin::Same, &p("ncolE+"), &p("nrowE+.ncolE+"))
            .expect("Theorem T must be provable from A1–A3");
        assert!(proof.node_count() >= 3, "nontrivial proof expected");
    }

    #[test]
    fn paper_section_5_theorem_t_full_axioms() {
        let axioms = adds::sparse_matrix_axioms();
        let mut prover = Prover::new(&axioms);
        assert!(prover
            .disj(Origin::Same, &p("ncolE+"), &p("nrowE+.ncolE+"))
            .is_some());
    }

    #[test]
    fn cyclic_possibility_not_disproven_without_acyclicity() {
        // Without A4 (acyclicity), x.(L|R|N)+ could cycle back: LLN vs LRN
        // is still provable (doesn't need acyclicity)…
        let axioms = apt_axioms::AxiomSet::parse(
            "A1: forall p, p.L <> p.R\n\
             A2: forall p <> q, p.(L|R) <> q.(L|R)\n\
             A3: forall p <> q, p.N <> q.N",
        )
        .unwrap();
        let mut prover = Prover::new(&axioms);
        assert!(prover
            .disj(Origin::Same, &p("L.L.N"), &p("L.R.N"))
            .is_some());
        // …but ε vs (L|R|N)+ is not.
        assert!(prover
            .disj(Origin::Same, &p("eps"), &p("(L|R|N)+"))
            .is_none());
    }

    #[test]
    fn acyclicity_proves_eps_cases() {
        let axioms = adds::leaf_linked_tree_axioms();
        let mut prover = Prover::new(&axioms);
        let proof = prover
            .disj(Origin::Same, &p("eps"), &p("(L|R|N)+"))
            .expect("acyclicity applies");
        assert_eq!(proof.axioms_used(), vec!["A4".to_owned()]);
    }

    #[test]
    fn alternation_split_required() {
        // (L|R).N vs eps requires either direct A4 subset or a split.
        let axioms = adds::leaf_linked_tree_axioms();
        let mut prover = Prover::new(&axioms);
        assert!(prover
            .disj(Origin::Same, &p("(L|R).N"), &p("eps"))
            .is_some());
    }

    #[test]
    fn distinct_origin_injective_chain() {
        // ∀x<>y, x.N <> y.N directly by A3; x.N.N <> y.N.N by peeling.
        let axioms = adds::leaf_linked_tree_axioms();
        let mut prover = Prover::new(&axioms);
        assert!(prover.disj(Origin::Distinct, &p("N"), &p("N")).is_some());
        assert!(prover
            .disj(Origin::Distinct, &p("N.N"), &p("N.N"))
            .is_some());
    }

    #[test]
    fn distinct_epsilon_trivial() {
        let axioms = apt_axioms::AxiomSet::new();
        let mut prover = Prover::new(&axioms);
        let proof = prover
            .disj(Origin::Distinct, &Path::epsilon(), &Path::epsilon())
            .unwrap();
        assert_eq!(proof.rule, Rule::TrivialDistinctEpsilon);
    }

    #[test]
    fn empty_axiom_set_proves_nothing_substantive() {
        let axioms = apt_axioms::AxiomSet::new();
        let mut prover = Prover::new(&axioms);
        assert!(prover.disj(Origin::Same, &p("L"), &p("R")).is_none());
    }

    #[test]
    fn rewrite_with_equality_axiom() {
        // Doubly-linked list invariant: next.prev = ε. Then
        // x.next.prev.next <> x.eps should reduce to x.next <> x.eps,
        // provable by acyclicity of next.
        let axioms = apt_axioms::AxiomSet::parse(
            "D1: forall p, p.next.prev = p.eps\n\
             D2: forall p, p.next+ <> p.eps",
        )
        .unwrap();
        let mut prover = Prover::new(&axioms);
        let proof = prover
            .disj(Origin::Same, &p("next.prev.next"), &p("eps"))
            .expect("rewrite should enable the proof");
        assert!(proof.axioms_used().contains(&"D1".to_owned()));
    }

    #[test]
    fn stats_track_work() {
        let axioms = adds::sparse_matrix_minimal_axioms();
        let mut prover = Prover::new(&axioms);
        let _ = prover.disj(Origin::Same, &p("ncolE+"), &p("nrowE+.ncolE+"));
        let stats = prover.stats();
        assert!(stats.goals_attempted > 0);
        assert!(stats.subset_checks > 0);
    }

    #[test]
    fn cache_hits_on_repeat() {
        let axioms = adds::leaf_linked_tree_axioms();
        let mut prover = Prover::new(&axioms);
        let _ = prover.disj(Origin::Same, &p("L.L.N"), &p("L.R.N"));
        let before = prover.stats().cache_hits;
        let _ = prover.disj(Origin::Same, &p("L.L.N"), &p("L.R.N"));
        assert!(prover.stats().cache_hits > before);
    }

    #[test]
    fn fuel_cutoff_returns_none() {
        let axioms = adds::sparse_matrix_axioms();
        let cfg = ProverConfig {
            budget: Budget::new().with_fuel(1),
            ..ProverConfig::default()
        };
        let mut prover = Prover::with_config(&axioms, cfg);
        // A provable goal becomes unprovable under starvation — Maybe, not
        // a wrong answer.
        let r = prover.disj(Origin::Same, &p("ncolE+"), &p("nrowE+.ncolE+"));
        assert!(r.is_none() || r.is_some()); // must not panic; typically None
    }

    #[test]
    fn direct_only_config_is_weaker() {
        let axioms = adds::sparse_matrix_minimal_axioms();
        let mut weak = Prover::with_config(&axioms, ProverConfig::direct_only());
        assert!(weak
            .disj(Origin::Same, &p("ncolE+"), &p("nrowE+.ncolE+"))
            .is_none());
        let mut full = Prover::new(&axioms);
        assert!(full
            .disj(Origin::Same, &p("ncolE+"), &p("nrowE+.ncolE+"))
            .is_some());
    }

    #[test]
    fn subtree_disjointness_via_star_induction() {
        // ∀x, x.L.(L|R)* <> x.R.(L|R)* — the subtrees of two sibling
        // children never share a vertex. Needs the paper's step-E star
        // induction (unit treatment fails).
        let axioms = apt_axioms::AxiomSet::parse(
            "A1: forall p, p.L <> p.R\n\
             A2: forall p <> q, p.(L|R) <> q.(L|R)\n\
             A3: forall p, p.(L|R)+ <> p.eps",
        )
        .unwrap();
        let mut prover = Prover::new(&axioms);
        let proof = prover
            .disj(Origin::Same, &p("L.(L|R)*"), &p("R.(L|R)*"))
            .expect("subtree disjointness provable");
        // The proof must actually use the star case analysis.
        fn has_star_cases(pr: &crate::proof::Proof) -> bool {
            matches!(pr.rule, Rule::StarCases) || pr.children.iter().any(has_star_cases)
        }
        assert!(has_star_cases(&proof), "expected StarCases in\n{proof}");
    }

    #[test]
    fn subtree_overlap_not_disproven() {
        // x.L.(L|R)* vs x.L — the subtree contains its own root: any
        // sound prover must fail.
        let axioms = apt_axioms::AxiomSet::parse(
            "A1: forall p, p.L <> p.R\n\
             A2: forall p <> q, p.(L|R) <> q.(L|R)\n\
             A3: forall p, p.(L|R)+ <> p.eps",
        )
        .unwrap();
        let mut prover = Prover::new(&axioms);
        assert!(prover.disj(Origin::Same, &p("L.(L|R)*"), &p("L")).is_none());
        // And a subtree against itself.
        assert!(prover
            .disj(Origin::Same, &p("L.(L|R)*"), &p("L.(L|R)*"))
            .is_none());
    }

    #[test]
    fn distinct_subtrees_in_tree() {
        // ∀x<>y over a pure tree: x.(L|R)+ vs y.(L|R)+ must NOT be
        // provable (one may be an ancestor of the other).
        let axioms = apt_axioms::AxiomSet::parse(
            "A1: forall p, p.L <> p.R\n\
             A2: forall p <> q, p.(L|R) <> q.(L|R)\n\
             A3: forall p, p.(L|R)+ <> p.eps",
        )
        .unwrap();
        let mut prover = Prover::new(&axioms);
        assert!(prover
            .disj(Origin::Distinct, &p("(L|R)+"), &p("(L|R)+"))
            .is_none());
    }

    #[test]
    fn range_tree_style_two_dimensions() {
        // A leaf-linked tree of leaf-linked trees (2-D range tree, §3.1):
        // x-dimension tree (Lx,Rx) with lists Nx, y-dimension (Ly,Ry,Ny),
        // plus a "sub" pointer from x-leaves to y-roots. Show that two
        // different y-subtrees never share vertices:
        let axioms = apt_axioms::AxiomSet::parse(
            "X1: forall p, p.Lx <> p.Rx\n\
             X2: forall p <> q, p.(Lx|Rx) <> q.(Lx|Rx)\n\
             X3: forall p <> q, p.Nx <> q.Nx\n\
             X4: forall p, p.(Lx|Rx|Nx)+ <> p.eps\n\
             Y1: forall p, p.Ly <> p.Ry\n\
             Y2: forall p <> q, p.(Ly|Ry) <> q.(Ly|Ry)\n\
             Y3: forall p <> q, p.Ny <> q.Ny\n\
             Y4: forall p, p.(Ly|Ry|Ny)+ <> p.eps\n\
             S1: forall p <> q, p.sub <> q.sub",
        )
        .unwrap();
        let mut prover = Prover::new(&axioms);
        // Same x-leaf, different y-children: disjoint by Y1 after peeling.
        assert!(prover
            .disj(Origin::Same, &p("sub.Ly"), &p("sub.Ry"))
            .is_some());
        // Different x-leaves' subtrees: x.sub <> y.sub by S1.
        assert!(prover
            .disj(Origin::Distinct, &p("sub"), &p("sub"))
            .is_some());
    }
}
