//! The batched, multi-threaded dependence engine.
//!
//! §6 of the paper reports *per-query* proof times precisely because a
//! parallelizing compiler issues dependence queries in bulk — every pair of
//! memory references in a loop nest is a query. [`DepEngine`] is the bulk
//! entry point: it owns an [`Arc`]-shared, lock-sharded cache of settled
//! proof results, subset-test answers, and interned DFAs, and fans a
//! `Vec<DepQuery>` out over a scoped worker pool.
//!
//! # Soundness of sharing
//!
//! The shared cache stores **definite results only**, mirroring the
//! single-prover rule: a goal is published as proved only when its proof is
//! self-contained (no dangling induction targets), and as failed only when
//! the search completed with no resource degradation, consulted no
//! in-progress ancestor, and spent none of its rewrite allowance — a
//! failure that holds in *every* context, not just the one that observed
//! it. Subset answers are published only when the DFA construction
//! finished within its limits. Exhausted or cancelled runs publish
//! nothing, so a starved worker can never poison another worker's verdict
//! — at worst a result is recomputed.
//!
//! A cache is only meaningful for one (axiom set, rule configuration)
//! pair; [`DepEngine`] enforces this by construction — the cache is
//! private to the engine and every worker prover is built from the
//! engine's own axioms and configuration. Budgets may differ per query:
//! definite entries do not depend on the budget that produced them.
//!
//! # Budget split policy
//!
//! [`DepEngine::run_batch`] treats the configured [`Budget`]'s deadline as
//! an allowance for the *whole batch*: with `j` workers and `u` unique
//! queries, each worker runs about `⌈u/j⌉` queries in sequence, so each
//! query receives `deadline / ⌈u/j⌉` and every worker finishes within
//! roughly the configured allowance. Fuel and the DFA state budget are
//! already per-query brakes and are not divided. A per-query
//! [`DepQuery::with_budget`] override is honoured exactly as written. One
//! [`crate::CancelToken`] in the engine budget cancels the entire batch.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use apt_axioms::{AxiomSet, CompiledAxioms};
use apt_regex::cache::DfaCache;
use apt_regex::{ArenaScope, FxBuildHasher, FxHashMap, Path, RegexId};

use crate::config::{Budget, ProverConfig, ProverStats};
use crate::deptest::Answer;
use crate::goal::{Goal, Origin};
use crate::portfolio::{EngineKind, Witness};
use crate::proof::Proof;
use crate::prover::Prover;
use crate::verdict::{MaybeReason, Verdict};

/// Lock shards for the settled-goal cache.
const GOAL_SHARDS: usize = 32;
/// Lock shards for the subset-answer cache.
const SUBSET_SHARDS: usize = 32;
/// Maximum settled goals per shard; further results are simply not shared.
const GOAL_SHARD_CAPACITY: usize = 4096;
/// Maximum subset answers per shard.
const SUBSET_SHARD_CAPACITY: usize = 16384;

/// Batches with fewer unique queries than this run inline on the calling
/// thread regardless of the requested `jobs`: spawning workers, splitting
/// the deadline, and bouncing the shared cache across threads costs more
/// than it buys until a batch carries real work (see `BENCH_batch.json` —
/// small fan-outs used to *lose* throughput as `jobs` grew).
pub const INLINE_BATCH_THRESHOLD: usize = 128;

/// A settled, context-free result for one goal.
#[derive(Debug, Clone)]
pub(crate) enum SharedVerdict {
    /// The goal has a self-contained proof.
    Proved(Proof),
    /// The search completed cleanly without a proof.
    Failed,
}

/// Entry and answer counts of a [`DepEngine`]'s shared cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Goals cached with a proof.
    pub proved_goals: usize,
    /// Goals cached as unprovable.
    pub failed_goals: usize,
    /// Memoized `L(a) ⊆ L(b)` answers.
    pub subset_results: usize,
    /// Interned raw (subset-construction) DFAs.
    pub dfas: usize,
    /// Interned minimized DFAs.
    pub min_dfas: usize,
    /// Total states across the interned raw DFAs.
    pub raw_dfa_states: usize,
    /// Total states across the interned minimized DFAs — compare with
    /// `raw_dfa_states` for how much Hopcroft-style minimization shrinks
    /// the product frontiers the subset checks walk.
    pub min_dfa_states: usize,
}

impl CacheStats {
    /// Adds `other`'s counts into `self` — summing statistics across the
    /// independent engines a multi-group batch (or a whole-program
    /// analysis) ran on.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.proved_goals += other.proved_goals;
        self.failed_goals += other.failed_goals;
        self.subset_results += other.subset_results;
        self.dfas += other.dfas;
        self.min_dfas += other.min_dfas;
        self.raw_dfa_states += other.raw_dfa_states;
        self.min_dfa_states += other.min_dfa_states;
    }
}

/// The lock-sharded cross-prover cache: settled goals, subset answers, and
/// interned DFAs. Shared between worker provers via [`Arc`].
#[derive(Debug)]
pub struct SharedCache {
    goals: Vec<Mutex<FxHashMap<Goal, SharedVerdict>>>,
    /// `L(a) ⊆ L(b)` answers keyed on hash-consed ids — two machine words
    /// per lookup, no formatted strings anywhere on this path.
    subsets: Vec<Mutex<FxHashMap<(RegexId, RegexId), bool>>>,
    dfas: DfaCache,
    /// Live counts maintained at publication time so [`SharedCache::stats`]
    /// never walks the shards — the serving layer polls it under load.
    proved_count: AtomicUsize,
    failed_count: AtomicUsize,
    subset_count: AtomicUsize,
}

fn shard_index<K: Hash>(key: &K, shards: usize) -> usize {
    (FxBuildHasher::default().hash_one(key) as usize) % shards
}

impl SharedCache {
    pub(crate) fn new() -> SharedCache {
        SharedCache {
            goals: (0..GOAL_SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            subsets: (0..SUBSET_SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            dfas: DfaCache::new(),
            proved_count: AtomicUsize::new(0),
            failed_count: AtomicUsize::new(0),
            subset_count: AtomicUsize::new(0),
        }
    }

    pub(crate) fn lookup_goal(&self, goal: &Goal) -> Option<SharedVerdict> {
        let shard = &self.goals[shard_index(goal, GOAL_SHARDS)];
        let guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        guard.get(goal).cloned()
    }

    pub(crate) fn publish_goal(&self, goal: &Goal, verdict: SharedVerdict) {
        let shard = &self.goals[shard_index(goal, GOAL_SHARDS)];
        let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        if guard.len() < GOAL_SHARD_CAPACITY || guard.contains_key(goal) {
            let fresh = matches!(verdict, SharedVerdict::Failed);
            match guard.insert(goal.clone(), verdict) {
                None if fresh => {
                    self.failed_count.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    self.proved_count.fetch_add(1, Ordering::Relaxed);
                }
                Some(old) => {
                    // Re-publication with the same variant is a no-op for
                    // the counters; a variant change (never expected —
                    // published results are definite) moves one count over.
                    let was_failed = matches!(old, SharedVerdict::Failed);
                    if was_failed != fresh {
                        if fresh {
                            self.failed_count.fetch_add(1, Ordering::Relaxed);
                            self.proved_count.fetch_sub(1, Ordering::Relaxed);
                        } else {
                            self.proved_count.fetch_add(1, Ordering::Relaxed);
                            self.failed_count.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn lookup_subset(&self, key: &(RegexId, RegexId)) -> Option<bool> {
        let shard = &self.subsets[shard_index(key, SUBSET_SHARDS)];
        let guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        guard.get(key).copied()
    }

    pub(crate) fn publish_subset(&self, key: (RegexId, RegexId), result: bool) {
        let shard = &self.subsets[shard_index(&key, SUBSET_SHARDS)];
        let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        if (guard.len() < SUBSET_SHARD_CAPACITY || guard.contains_key(&key))
            && guard.insert(key, result).is_none()
        {
            self.subset_count.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn dfas(&self) -> &DfaCache {
        &self.dfas
    }

    /// A bounded sample of goals currently published as
    /// [`SharedVerdict::Failed`], plus the exact total. The sample is
    /// capped at [`FAILED_SNAPSHOT_CAP`] so the observability path stays
    /// cheap no matter how full the shards are — the serving layer's
    /// `stats` verb and the negative-memo soundness suite (which
    /// re-verifies each sampled failure against an unbudgeted prover)
    /// both go through here.
    #[doc(hidden)]
    pub fn failed_goal_snapshot(&self) -> FailedGoalSample {
        let total = self.failed_count.load(Ordering::Relaxed);
        let mut sample = Vec::with_capacity(total.min(FAILED_SNAPSHOT_CAP));
        'shards: for shard in &self.goals {
            let guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for (goal, verdict) in guard.iter() {
                if matches!(verdict, SharedVerdict::Failed) {
                    if sample.len() >= FAILED_SNAPSHOT_CAP {
                        break 'shards;
                    }
                    sample.push(goal.clone());
                }
            }
        }
        FailedGoalSample { sample, total }
    }

    /// Entry counts across all shards. O(shards), not O(entries): the
    /// goal/subset counts are maintained at publication time, so polling
    /// this from a live server's `stats` verb costs a handful of atomic
    /// loads and the DFA interner's own counters.
    pub fn stats(&self) -> CacheStats {
        let (raw_dfa_states, min_dfa_states) = self.dfas.state_totals();
        CacheStats {
            proved_goals: self.proved_count.load(Ordering::Relaxed),
            failed_goals: self.failed_count.load(Ordering::Relaxed),
            subset_results: self.subset_count.load(Ordering::Relaxed),
            dfas: self.dfas.len(),
            min_dfas: self.dfas.len_minimized(),
            raw_dfa_states,
            min_dfa_states,
        }
    }
}

/// One exported settled goal: the goal plus its proof (`None` means the
/// goal was cached as cleanly failed — definitely unprovable under the
/// engine's axioms, in every context).
#[derive(Debug, Clone)]
pub struct GoalEntry {
    /// The settled goal.
    pub goal: Goal,
    /// Its self-contained proof, or `None` for a clean failure.
    pub proof: Option<Proof>,
}

/// One exported subset answer, with the regexes materialized out of the
/// process-local hash-consing arena — [`RegexId`]s depend on interning
/// order and are meaningless in another process, so the export carries
/// the trees themselves.
#[derive(Debug, Clone)]
pub struct SubsetEntry {
    /// Left-hand language.
    pub a: apt_regex::Regex,
    /// Right-hand language.
    pub b: apt_regex::Regex,
    /// Whether `L(a) ⊆ L(b)`.
    pub holds: bool,
}

/// A portable image of a [`DepEngine`]'s shared cache: every settled
/// goal (with its proof) and every memoized subset answer, in plain
/// tree form. This is what the serving layer's warm-state snapshots
/// persist; interned DFAs are deliberately *not* exported — they are
/// recomputed deterministically from the axioms and are cheap relative
/// to proof search.
///
/// An export is only meaningful for the exact axiom set (and rule
/// configuration) of the engine that produced it; importers must
/// guarantee that pairing themselves (the snapshot layer keys sections
/// by the axiom text it restores the engine from).
#[derive(Debug, Clone, Default)]
pub struct CacheExport {
    /// Settled goals, proved and cleanly failed.
    pub goals: Vec<GoalEntry>,
    /// Memoized `L(a) ⊆ L(b)` answers.
    pub subsets: Vec<SubsetEntry>,
}

impl CacheExport {
    /// Whether nothing was exported at all.
    pub fn is_empty(&self) -> bool {
        self.goals.is_empty() && self.subsets.is_empty()
    }
}

/// What [`DepEngine::import_cache`] accepted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportStats {
    /// Goal entries published into the shared cache.
    pub goals: usize,
    /// Subset entries published into the shared cache.
    pub subsets: usize,
    /// Proofs re-verified against the engine's axioms.
    pub proofs_checked: usize,
}

impl SharedCache {
    /// Exports every settled goal and subset answer as plain trees.
    /// O(entries); intended for the snapshot flusher, not the hot path.
    pub fn export(&self) -> CacheExport {
        let mut goals = Vec::new();
        for shard in &self.goals {
            let guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for (goal, verdict) in guard.iter() {
                goals.push(GoalEntry {
                    goal: goal.clone(),
                    proof: match verdict {
                        SharedVerdict::Proved(p) => Some(p.clone()),
                        SharedVerdict::Failed => None,
                    },
                });
            }
        }
        let mut subsets = Vec::new();
        for shard in &self.subsets {
            let guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for (&(a, b), &holds) in guard.iter() {
                subsets.push(SubsetEntry {
                    a: a.to_regex(),
                    b: b.to_regex(),
                    holds,
                });
            }
        }
        CacheExport { goals, subsets }
    }
}

impl DepEngine {
    /// Exports the shared cache as a portable [`CacheExport`].
    pub fn export_cache(&self) -> CacheExport {
        self.cache.export()
    }

    /// Imports a previously exported cache image, re-interning the
    /// subset regexes into this process's arena and publishing every
    /// entry into the shared cache.
    ///
    /// The first `verify_sample` proofs are re-checked against this
    /// engine's axioms with [`crate::check_proof`]; a single failing
    /// proof rejects the *entire* import — a snapshot whose proofs do
    /// not check against the axioms it claims to belong to is corrupt,
    /// and a corrupt import may only cost warmth, never correctness.
    /// Failed-goal and subset entries carry no checkable certificate;
    /// they are protected by the snapshot layer's checksums instead.
    ///
    /// # Errors
    ///
    /// Returns the [`crate::check::ProofError`] of the first proof that
    /// does not check. Nothing is published in that case.
    pub fn import_cache(
        &self,
        export: &CacheExport,
        verify_sample: usize,
    ) -> Result<ImportStats, crate::check::ProofError> {
        let mut checked = 0usize;
        for entry in export.goals.iter().filter(|e| e.proof.is_some()) {
            if checked >= verify_sample {
                break;
            }
            if let Some(proof) = &entry.proof {
                crate::check_proof(&self.axioms, proof)?;
                checked += 1;
            }
        }
        for entry in &export.goals {
            let verdict = match &entry.proof {
                Some(p) => SharedVerdict::Proved(p.clone()),
                None => SharedVerdict::Failed,
            };
            self.cache.publish_goal(&entry.goal, verdict);
        }
        for entry in &export.subsets {
            let key = (RegexId::intern(&entry.a), RegexId::intern(&entry.b));
            self.cache.publish_subset(key, entry.holds);
        }
        Ok(ImportStats {
            goals: export.goals.len(),
            subsets: export.subsets.len(),
            proofs_checked: checked,
        })
    }
}

/// Cap on the failed-goal sample returned by
/// [`SharedCache::failed_goal_snapshot`].
pub const FAILED_SNAPSHOT_CAP: usize = 256;

/// A capped sample of the shared cache's published failures, with the
/// exact total count (the total keeps O(1) meaning even when the sample
/// is truncated).
#[derive(Debug, Clone, Default)]
pub struct FailedGoalSample {
    /// Up to [`FAILED_SNAPSHOT_CAP`] failed goals.
    pub sample: Vec<Goal>,
    /// The exact number of failed goals published.
    pub total: usize,
}

impl FailedGoalSample {
    /// Whether no failures have been published at all.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// What a [`DepQuery`] asks of the prover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Prove the two paths disjoint (a definite *No* dependence).
    Disjoint,
    /// Prove the two paths denote the same single vertex (a definite
    /// *Yes*).
    Equal,
}

/// One dependence query, built fluently and run against a [`DepEngine`]
/// (or a caller-managed [`Prover`] via [`DepQuery::run_with`]).
///
/// This is the single entry point into the prover (the pre-0.2
/// `prove_disjoint`/`prove_equal` method family is gone).
///
/// ```
/// use apt_axioms::adds::leaf_linked_tree_axioms;
/// use apt_core::{Answer, DepEngine, DepQuery, Origin};
/// use apt_regex::Path;
///
/// let engine = DepEngine::new(leaf_linked_tree_axioms());
/// let p = Path::parse("L.L.N").unwrap();
/// let q = Path::parse("L.R.N").unwrap();
/// let outcome = DepQuery::disjoint(&p, &q).origin(Origin::Same).run(&engine);
/// assert_eq!(outcome.verdict.answer, Answer::No);
/// assert!(outcome.proof.is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DepQuery {
    kind: QueryKind,
    origin: Origin,
    a: Path,
    b: Path,
    budget: Option<Budget>,
}

impl DepQuery {
    /// A disjointness query `origin ⊢ a <> b`, defaulting to
    /// [`Origin::Same`] (override with [`DepQuery::origin`]).
    pub fn disjoint(a: &Path, b: &Path) -> DepQuery {
        DepQuery {
            kind: QueryKind::Disjoint,
            origin: Origin::Same,
            a: a.clone(),
            b: b.clone(),
            budget: None,
        }
    }

    /// An equality query: do `a` and `b` denote the same single vertex
    /// from a common origin?
    pub fn equal(a: &Path, b: &Path) -> DepQuery {
        DepQuery {
            kind: QueryKind::Equal,
            origin: Origin::Same,
            a: a.clone(),
            b: b.clone(),
            budget: None,
        }
    }

    /// Sets the origin relation (disjointness queries only; equality is
    /// always asked from a common origin).
    #[must_use]
    pub fn origin(mut self, origin: Origin) -> DepQuery {
        self.origin = origin;
        self
    }

    /// Overrides the engine's [`Budget`] for this query alone. The
    /// override is used exactly as written — it is not subject to the
    /// batch deadline split.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> DepQuery {
        self.budget = Some(budget);
        self
    }

    /// What the query asks.
    pub fn kind(&self) -> QueryKind {
        self.kind
    }

    /// The origin relation the query is asked under.
    pub fn origin_relation(&self) -> Origin {
        self.origin
    }

    /// The per-query budget override, if one was set.
    pub fn budget_override(&self) -> Option<&Budget> {
        self.budget.as_ref()
    }

    /// The first path of the query.
    pub fn a(&self) -> &Path {
        &self.a
    }

    /// The second path of the query.
    pub fn b(&self) -> &Path {
        &self.b
    }

    /// Runs the query against an engine (fresh prover, shared caches).
    pub fn run(&self, engine: &DepEngine) -> Outcome {
        engine.run(self)
    }

    /// Runs the query on a caller-managed prover. A budget override is
    /// applied for the duration of this query and then restored.
    pub fn run_with(&self, prover: &mut Prover<'_>) -> Outcome {
        let restore = self.budget.clone().map(|b| prover.swap_budget(b));
        let before = prover.stats();
        let (verdict, proof) = match self.kind {
            QueryKind::Disjoint => {
                let (proof, reason) = prover.run_disjoint(self.origin, &self.a, &self.b);
                match proof {
                    Some(p) => (Verdict::definite(Answer::No), Some(p)),
                    None => (
                        Verdict::maybe(reason.unwrap_or(MaybeReason::GenuinelyUnknown)),
                        None,
                    ),
                }
            }
            QueryKind::Equal => {
                let (equal, reason) = prover.run_equal(&self.a, &self.b);
                if equal {
                    (Verdict::definite(Answer::Yes), None)
                } else {
                    (
                        Verdict::maybe(reason.unwrap_or(MaybeReason::GenuinelyUnknown)),
                        None,
                    )
                }
            }
        };
        let stats = prover.stats().since(&before);
        if let Some(old) = restore {
            prover.set_budget(old);
        }
        Outcome {
            maybe_reason: verdict.reason,
            verdict,
            proof,
            stats,
            engine: EngineKind::Axiomatic,
            witness: None,
        }
    }

    /// Structural identity key: two queries with the same key (and equal
    /// budget overrides) are the same subgoal and run once per batch.
    /// Disjointness goals canonicalize through [`Goal::new`]'s symmetric
    /// path ordering; equality is symmetric by definition. Paths compare
    /// structurally — no query is ever formatted to dedup a batch.
    fn dedup_key(&self) -> (QueryKind, Option<Origin>, Path, Path) {
        match self.kind {
            QueryKind::Disjoint => {
                let g = Goal::new(self.origin, self.a.clone(), self.b.clone());
                (
                    QueryKind::Disjoint,
                    Some(self.origin),
                    g.a().clone(),
                    g.b().clone(),
                )
            }
            QueryKind::Equal => {
                let (x, y) = (self.a.clone(), self.b.clone());
                let (x, y) = if x <= y { (x, y) } else { (y, x) };
                (QueryKind::Equal, None, x, y)
            }
        }
    }
}

/// The unified result of one [`DepQuery`].
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The three-valued answer with its degradation pedigree. A proven
    /// disjointness query answers [`Answer::No`]; a proven equality query
    /// answers [`Answer::Yes`]; everything else is [`Answer::Maybe`].
    pub verdict: Verdict,
    /// The disjointness proof, when one was found.
    pub proof: Option<Proof>,
    /// Prover work counters for this query alone.
    pub stats: ProverStats,
    /// Why the answer is Maybe (`None` for definite answers). Mirrors
    /// `verdict.reason`.
    pub maybe_reason: Option<MaybeReason>,
    /// Which backend produced this outcome. [`EngineKind::Axiomatic`]
    /// unless the query ran through a [`crate::portfolio::Portfolio`].
    pub engine: EngineKind,
    /// The concrete dependence witness, when the refuter settled the
    /// query with [`Answer::Yes`].
    pub witness: Option<Witness>,
}

impl Outcome {
    /// Whether the query was established definitely (No-dependence for
    /// disjointness, Yes for equality).
    pub fn is_definite(&self) -> bool {
        self.verdict.reason.is_none()
    }
}

/// The batched dependence engine: one axiom set, one rule configuration,
/// and a shared cache that persists across queries and batches.
///
/// Cloning an engine is cheap and shares the cache.
#[derive(Debug, Clone)]
pub struct DepEngine {
    axioms: Arc<AxiomSet>,
    /// The dispatch index, compiled once per engine and shared by every
    /// worker prover.
    compiled: Arc<CompiledAxioms>,
    config: ProverConfig,
    cache: Arc<SharedCache>,
    /// The regex-arena retention epoch this engine's interned expressions
    /// are charged to. Held (shared across clones) for the engine's whole
    /// life; when the last clone drops, the scope closes and every arena
    /// entry only this engine touched is compacted. Long-lived callers
    /// (the serve sessions) open the scope *before* parsing their axiom
    /// text and pass it in via [`DepEngine::from_arc_in`], so parse-time
    /// interning is reclaimed on eviction too.
    arena: Arc<ArenaScope>,
}

impl DepEngine {
    /// An engine over `axioms` with the default configuration.
    pub fn new(axioms: AxiomSet) -> DepEngine {
        DepEngine::with_config(axioms, ProverConfig::default())
    }

    /// An engine with an explicit prover configuration.
    pub fn with_config(axioms: AxiomSet, config: ProverConfig) -> DepEngine {
        DepEngine::from_arc(Arc::new(axioms), config)
    }

    /// An engine over an already-shared axiom set, holding a fresh arena
    /// scope opened here (interning done *before* this call — notably the
    /// `AxiomSet` parse — is charged to the caller's scopes, or pinned).
    pub fn from_arc(axioms: Arc<AxiomSet>, config: ProverConfig) -> DepEngine {
        DepEngine::from_arc_in(axioms, config, Arc::new(ArenaScope::new()))
    }

    /// An engine over an already-shared axiom set, adopting `arena` as its
    /// retention scope. Callers that intern regexes beyond the engine's
    /// queries (parsing axiom text, pre-interning goals) open the scope
    /// first so all of it is reclaimed together when the engine dies.
    pub fn from_arc_in(
        axioms: Arc<AxiomSet>,
        config: ProverConfig,
        arena: Arc<ArenaScope>,
    ) -> DepEngine {
        let compiled = Arc::new(CompiledAxioms::compile(&axioms));
        DepEngine {
            axioms,
            compiled,
            config,
            cache: Arc::new(SharedCache::new()),
            arena,
        }
    }

    /// The arena retention scope this engine holds (shared by its clones).
    pub fn arena_scope(&self) -> &Arc<ArenaScope> {
        &self.arena
    }

    /// The engine's axioms.
    pub fn axioms(&self) -> &AxiomSet {
        &self.axioms
    }

    /// The compiled dispatch index shared by the engine's workers.
    pub fn compiled(&self) -> &Arc<CompiledAxioms> {
        &self.compiled
    }

    /// The shared cross-prover cache (test-only observability).
    #[doc(hidden)]
    pub fn shared_cache(&self) -> &Arc<SharedCache> {
        &self.cache
    }

    /// The configuration worker provers run under.
    pub fn config(&self) -> &ProverConfig {
        &self.config
    }

    /// Entry counts of the shared cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// A worker prover wired to the shared cache, with the engine deadline
    /// divided across `shares` sequential queries.
    fn make_prover(&self, shares: usize) -> Prover<'_> {
        let mut config = self.config.clone();
        if shares > 1 {
            if let Some(d) = config.budget.deadline {
                config.budget.deadline = Some(d / shares as u32);
            }
        }
        let mut prover = Prover::with_compiled(&self.axioms, config, Arc::clone(&self.compiled));
        prover.attach_shared(Arc::clone(&self.cache));
        prover
    }

    /// Runs one query on a fresh prover backed by the shared cache.
    pub fn run(&self, query: &DepQuery) -> Outcome {
        query.run_with(&mut self.make_prover(1))
    }

    /// Runs a batch of queries over `jobs` worker threads.
    ///
    /// Structurally identical queries (same canonical goal, same budget
    /// override) are deduplicated and run once; every caller position in
    /// `queries` still receives its outcome, in order. Workers pull unique
    /// queries from a shared index, so an expensive query never stalls
    /// the rest of the batch behind it.
    ///
    /// `jobs == 1` runs inline on the calling thread (no spawn), still
    /// with dedup and the shared cache. Batches smaller than
    /// [`INLINE_BATCH_THRESHOLD`] unique queries are forced inline even
    /// when more jobs are requested — for little batches the spawn and
    /// deadline-split overhead exceeds the parallel win.
    pub fn run_batch(&self, queries: &[DepQuery], jobs: usize) -> Vec<Outcome> {
        if queries.is_empty() {
            return Vec::new();
        }
        // Dedup structurally identical subgoals.
        let mut unique: Vec<&DepQuery> = Vec::new();
        let mut owners: Vec<Vec<usize>> = Vec::new();
        let mut index: HashMap<(QueryKind, Option<Origin>, Path, Path), Vec<usize>> =
            HashMap::new();
        for (i, q) in queries.iter().enumerate() {
            let slots = index.entry(q.dedup_key()).or_default();
            match slots.iter().find(|&&u| unique[u].budget == q.budget) {
                Some(&u) => owners[u].push(i),
                None => {
                    slots.push(unique.len());
                    owners.push(vec![i]);
                    unique.push(q);
                }
            }
        }
        // Small batches run inline: thread spawn + deadline splitting
        // overhead dominates until there is enough unique work to amortize
        // it (see [`INLINE_BATCH_THRESHOLD`]).
        let jobs = if unique.len() < INLINE_BATCH_THRESHOLD {
            1
        } else {
            jobs.clamp(1, unique.len())
        };
        let shares = unique.len().div_ceil(jobs);

        let mut settled: Vec<Option<Outcome>> = vec![None; unique.len()];
        if jobs == 1 {
            let mut prover = self.make_prover(shares);
            for (slot, q) in settled.iter_mut().zip(&unique) {
                *slot = Some(q.run_with(&mut prover));
            }
        } else {
            let next = AtomicUsize::new(0);
            let unique_ref = &unique;
            let collected = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..jobs)
                    .map(|_| {
                        scope.spawn(|_| {
                            let mut prover = self.make_prover(shares);
                            let mut out = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::SeqCst);
                                if i >= unique_ref.len() {
                                    break;
                                }
                                out.push((i, unique_ref[i].run_with(&mut prover)));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| match h.join() {
                        Ok(v) => v,
                        Err(panic) => std::panic::resume_unwind(panic),
                    })
                    .collect::<Vec<_>>()
            })
            .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
            for (i, out) in collected {
                settled[i] = Some(out);
            }
        }

        // Scatter unique results back to every caller position.
        let mut results: Vec<Option<Outcome>> = vec![None; queries.len()];
        for (u, owner_list) in owners.iter().enumerate() {
            let out = settled[u].take().expect("every unique query ran");
            let (last, rest) = owner_list.split_last().expect("owners are non-empty");
            for &i in rest {
                results[i] = Some(out.clone());
            }
            results[*last] = Some(out);
        }
        results
            .into_iter()
            .map(|o| o.expect("every query position filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_axioms::adds;
    use std::time::Duration;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    #[test]
    fn single_query_matches_prover() {
        let axioms = adds::leaf_linked_tree_axioms();
        let engine = DepEngine::new(axioms.clone());
        let out = DepQuery::disjoint(&p("L.L.N"), &p("L.R.N")).run(&engine);
        assert_eq!(out.verdict.answer, Answer::No);
        assert!(out.is_definite());
        assert!(out.proof.is_some());
        assert!(out.stats.goals_attempted > 0);

        let out = DepQuery::disjoint(&p("L.L.N"), &p("L.L.N")).run(&engine);
        assert_eq!(out.verdict.answer, Answer::Maybe);
        assert_eq!(out.maybe_reason, Some(MaybeReason::GenuinelyUnknown));
        assert!(out.proof.is_none());
    }

    #[test]
    fn equality_query_through_engine() {
        let axioms = AxiomSet::parse(
            "C1: forall p, p.next.prev = p.eps\n\
             C2: forall p, p.prev.next = p.eps",
        )
        .unwrap();
        let engine = DepEngine::new(axioms);
        let out = DepQuery::equal(&p("next.prev.next"), &p("next")).run(&engine);
        assert_eq!(out.verdict.answer, Answer::Yes);
        let out = DepQuery::equal(&p("next"), &p("prev")).run(&engine);
        assert_eq!(out.verdict.answer, Answer::Maybe);
    }

    #[test]
    fn batch_matches_sequential_and_warms_cache() {
        let axioms = adds::sparse_matrix_minimal_axioms();
        let engine = DepEngine::new(axioms.clone());
        let queries: Vec<DepQuery> = [
            ("ncolE+", "nrowE+.ncolE+"),
            ("ncolE", "nrowE.ncolE+"),
            ("ncolE+", "ncolE+"),
            ("ncolE.ncolE", "nrowE+.ncolE+"),
        ]
        .iter()
        .map(|(a, b)| DepQuery::disjoint(&p(a), &p(b)))
        .collect();

        let mut prover = Prover::new(&axioms);
        let sequential: Vec<Answer> = queries
            .iter()
            .map(|q| q.run_with(&mut prover).verdict.answer)
            .collect();
        for jobs in [1, 2, 4] {
            let batch: Vec<Answer> = engine
                .run_batch(&queries, jobs)
                .iter()
                .map(|o| o.verdict.answer)
                .collect();
            assert_eq!(batch, sequential, "jobs={jobs}");
        }
        let stats = engine.cache_stats();
        assert!(stats.proved_goals > 0);
        assert!(stats.subset_results > 0);
        assert!(stats.dfas > 0);
    }

    #[test]
    fn dedup_returns_an_outcome_per_position() {
        let axioms = adds::leaf_linked_tree_axioms();
        let engine = DepEngine::new(axioms);
        let a = DepQuery::disjoint(&p("L.L.N"), &p("L.R.N"));
        // Symmetric duplicate: canonicalization must fold it.
        let b = DepQuery::disjoint(&p("L.R.N"), &p("L.L.N"));
        let c = DepQuery::disjoint(&p("L"), &p("R"));
        let outs = engine.run_batch(&[a, b, c], 2);
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].verdict.answer, Answer::No);
        assert_eq!(outs[1].verdict.answer, Answer::No);
        assert_eq!(outs[2].verdict.answer, Answer::No);
    }

    #[test]
    fn per_query_budget_override_is_restored() {
        let axioms = adds::sparse_matrix_minimal_axioms();
        let engine = DepEngine::new(axioms);
        let starved = DepQuery::disjoint(&p("ncolE+"), &p("nrowE+.ncolE+"))
            .with_budget(Budget::new().with_fuel(1));
        let out = starved.run(&engine);
        assert_eq!(out.verdict.answer, Answer::Maybe);
        assert!(out.verdict.is_degraded());
        // The starved run must not have poisoned the shared cache.
        let full = DepQuery::disjoint(&p("ncolE+"), &p("nrowE+.ncolE+")).run(&engine);
        assert_eq!(full.verdict.answer, Answer::No);
    }

    #[test]
    fn batch_deadline_is_divided_fairly() {
        let axioms = adds::sparse_matrix_minimal_axioms();
        let config =
            ProverConfig::with_budget(Budget::new().with_deadline(Duration::from_secs(400)));
        let engine = DepEngine::with_config(axioms, config);
        // 4 unique queries on 2 workers → 2 sequential queries per worker
        // → each query gets 200s. We can't observe the per-query deadline
        // directly, but the batch must complete and stay definite.
        let queries: Vec<DepQuery> = [
            ("ncolE+", "nrowE+.ncolE+"),
            ("ncolE", "nrowE.ncolE+"),
            ("ncolE.ncolE", "nrowE+.ncolE+"),
            ("ncolE.ncolE.ncolE", "nrowE+.ncolE+"),
        ]
        .iter()
        .map(|(a, b)| DepQuery::disjoint(&p(a), &p(b)))
        .collect();
        let outs = engine.run_batch(&queries, 2);
        assert!(outs.iter().all(|o| o.verdict.answer == Answer::No));
    }

    #[test]
    fn empty_batch() {
        let engine = DepEngine::new(AxiomSet::new());
        assert!(engine.run_batch(&[], 4).is_empty());
    }
}
