//! The `deptest` entry point (§4.1 of the paper).
//!
//! Given two memory references `S: … p->f …` and `T: … q->g …` (at least one
//! a write), their access paths, and a set of applicable axioms, `deptest`
//! answers:
//!
//! * **No** — the references provably never overlap;
//! * **Yes** — they definitely denote the same memory location;
//! * **Maybe** — neither could be proven.

use crate::goal::Origin;
use crate::handle::{Handle, HandleRelation};
use crate::proof::Proof;
use crate::prover::Prover;
use crate::verdict::{MaybeReason, Verdict};
use crate::ProverConfig;
use apt_axioms::AxiomSet;
use apt_regex::{Path, Symbol};
use std::fmt;

/// A handle-anchored access path `H.Path` (§3.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AccessPath {
    /// The fixed anchor vertex.
    pub handle: Handle,
    /// The path from the handle to the referenced vertex.
    pub path: Path,
}

impl AccessPath {
    /// Creates `handle.path`.
    pub fn new(handle: Handle, path: Path) -> AccessPath {
        AccessPath { handle, path }
    }
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.handle, self.path)
    }
}

/// One side of a dependence query: the statement's reference `p->f`,
/// normalized per §4.1 (`S: … = p->f` / `S: p->f = …`).
#[derive(Debug, Clone)]
pub struct MemRef {
    /// The declared type of the pointed-to vertex, when known. Pointers of
    /// different structure types cannot alias (first test of `deptest`).
    pub type_name: Option<String>,
    /// The accessed field `f`.
    pub field: Symbol,
    /// The access path of the pointer `p`.
    pub access: AccessPath,
}

impl MemRef {
    /// A reference `p->field` where `p` is reached by `access`.
    pub fn new(access: AccessPath, field: impl Into<Symbol>) -> MemRef {
        MemRef {
            type_name: None,
            field: field.into(),
            access,
        }
    }

    /// Attaches the declared structure type.
    #[must_use]
    pub fn with_type(mut self, type_name: impl Into<String>) -> MemRef {
        self.type_name = Some(type_name.into());
        self
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})->{}", self.access, self.field)
    }
}

/// Byte-level field layout for one structure type, enabling the paper's
/// "if `f` and `g` do not overlap" test to handle C unions and other
/// overlapping fields precisely.
///
/// Fields without a registered range are assumed to occupy disjoint
/// storage unless they are the *same* field — the safe default for
/// ordinary struct declarations.
///
/// ```
/// use apt_core::FieldLayout;
/// let mut layout = FieldLayout::new();
/// layout.set("as_int", 0, 4);
/// layout.set("as_float", 0, 4); // a union arm
/// layout.set("tag", 4, 1);
/// assert!(layout.overlaps("as_int", "as_float"));
/// assert!(!layout.overlaps("as_int", "tag"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FieldLayout {
    ranges: std::collections::HashMap<Symbol, (u64, u64)>,
}

impl FieldLayout {
    /// An empty layout (every distinct field disjoint).
    pub fn new() -> FieldLayout {
        FieldLayout::default()
    }

    /// Registers `field` at byte `offset` with the given `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn set(&mut self, field: impl Into<Symbol>, offset: u64, size: u64) {
        assert!(size > 0, "fields must occupy at least one byte");
        self.ranges.insert(field.into(), (offset, size));
    }

    /// Whether the two fields can occupy a common byte.
    pub fn overlaps(&self, f: impl Into<Symbol>, g: impl Into<Symbol>) -> bool {
        let f = f.into();
        let g = g.into();
        if f == g {
            return true;
        }
        match (self.ranges.get(&f), self.ranges.get(&g)) {
            (Some(&(of, sf)), Some(&(og, sg))) => of < og + sg && og < of + sf,
            // Unknown layout: distinct named fields are disjoint (the
            // paper's default assumption for struct fields).
            _ => false,
        }
    }
}

/// The three possible answers of the dependence test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Answer {
    /// A data dependence definitely exists.
    Yes,
    /// No data dependence is possible.
    No,
    /// A dependence could not be proven or disproven.
    Maybe,
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Answer::Yes => write!(f, "Yes"),
            Answer::No => write!(f, "No"),
            Answer::Maybe => write!(f, "Maybe"),
        }
    }
}

/// Why `deptest` answered as it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reason {
    /// The two pointers have different structure types.
    TypeMismatch,
    /// The accessed fields do not overlap.
    FieldsDisjoint,
    /// The paths are identical and denote a single vertex.
    IdenticalSingletonPaths,
    /// The theorem prover established disjointness.
    ProvenDisjoint,
    /// No proof was found.
    Unproven,
}

/// The full outcome of a dependence test.
#[derive(Debug, Clone)]
pub struct TestOutcome {
    /// Yes / No / Maybe.
    pub answer: Answer,
    /// Why.
    pub reason: Reason,
    /// For a Maybe: whether the search genuinely exhausted the axioms or
    /// was degraded by a resource limit (and which one). `None` for
    /// definite answers.
    pub maybe: Option<MaybeReason>,
    /// The disjointness proof(s), when `reason` is
    /// [`Reason::ProvenDisjoint`]. Two proofs appear when the handle
    /// relation was unknown and both origin cases were discharged.
    pub proofs: Vec<Proof>,
    /// Prover work counters.
    pub stats: crate::ProverStats,
}

impl TestOutcome {
    fn simple(answer: Answer, reason: Reason) -> TestOutcome {
        TestOutcome {
            answer,
            reason,
            maybe: None,
            proofs: Vec::new(),
            stats: crate::ProverStats::default(),
        }
    }

    /// The outcome as a [`Verdict`] (answer + degradation pedigree).
    pub fn verdict(&self) -> Verdict {
        match self.answer {
            Answer::Maybe => Verdict::maybe(self.maybe.unwrap_or(MaybeReason::GenuinelyUnknown)),
            definite => Verdict::definite(definite),
        }
    }

    /// Whether a resource limit (not the axioms) forced this answer.
    pub fn is_degraded(&self) -> bool {
        self.maybe.is_some_and(|r| r.is_degraded())
    }
}

/// The APT dependence tester over one axiom set.
#[derive(Debug)]
pub struct DepTest<'a> {
    axioms: &'a AxiomSet,
    config: ProverConfig,
    layout: FieldLayout,
}

impl<'a> DepTest<'a> {
    /// Creates a tester with the default prover configuration.
    pub fn new(axioms: &'a AxiomSet) -> DepTest<'a> {
        DepTest {
            axioms,
            config: ProverConfig::default(),
            layout: FieldLayout::new(),
        }
    }

    /// Creates a tester with an explicit prover configuration.
    pub fn with_config(axioms: &'a AxiomSet, config: ProverConfig) -> DepTest<'a> {
        DepTest {
            axioms,
            config,
            layout: FieldLayout::new(),
        }
    }

    /// Attaches a byte-level [`FieldLayout`], refining the field-overlap
    /// test (unions, packed layouts).
    #[must_use]
    pub fn with_layout(mut self, layout: FieldLayout) -> DepTest<'a> {
        self.layout = layout;
        self
    }

    /// Runs the dependence test between references `s` (earlier statement)
    /// and `t` (later statement); at least one is assumed to be a write
    /// with no intervening write to `s`'s location.
    ///
    /// When the two access paths share a handle the origin relation is
    /// [`HandleRelation::Same`]; otherwise the caller-supplied `relation`
    /// describes what is known about the two handles (§4.1: "its accuracy
    /// depends on knowing the relationship between the two handles").
    ///
    /// ```
    /// use apt_axioms::adds::leaf_linked_tree_axioms;
    /// use apt_core::{AccessPath, Answer, DepTest, Handle, HandleRelation, MemRef};
    /// use apt_regex::Path;
    ///
    /// let axioms = leaf_linked_tree_axioms();
    /// let tester = DepTest::new(&axioms);
    /// let hroot = Handle::for_variable("root");
    /// let s = MemRef::new(
    ///     AccessPath::new(hroot.clone(), Path::parse("L.L.N").unwrap()),
    ///     "d",
    /// );
    /// let t = MemRef::new(
    ///     AccessPath::new(hroot, Path::parse("L.R.N").unwrap()),
    ///     "d",
    /// );
    /// let outcome = tester.test(&s, &t, HandleRelation::Unknown);
    /// assert_eq!(outcome.answer, Answer::No);
    /// ```
    pub fn test(&self, s: &MemRef, t: &MemRef, relation: HandleRelation) -> TestOutcome {
        // Step 1: different structure types cannot overlap (safe in ANSI C
        // under the paper's casting assumptions).
        if let (Some(ts), Some(tt)) = (&s.type_name, &t.type_name) {
            if ts != tt {
                return TestOutcome::simple(Answer::No, Reason::TypeMismatch);
            }
        }
        // Step 2: fields that occupy disjoint storage cannot conflict.
        if !self.layout.overlaps(s.field, t.field) {
            return TestOutcome::simple(Answer::No, Reason::FieldsDisjoint);
        }

        let same_handle = s.access.handle == t.access.handle;
        let relation = if same_handle {
            HandleRelation::Same
        } else {
            relation
        };

        // Step 3: definite dependence — identical singleton paths from the
        // same vertex, or paths provably equal through the equality
        // axioms (cycles: `next.prev.next ≡ next`).
        let mut prover = Prover::with_config(self.axioms, self.config.clone());
        // A degraded equality search can only miss a Yes; remember why so
        // a final Maybe reports the earliest resource pressure.
        let mut degraded: Option<MaybeReason> = None;
        if relation == HandleRelation::Same {
            let syntactic = s.access.path == t.access.path && s.access.path.is_definite();
            if syntactic {
                return TestOutcome::simple(Answer::Yes, Reason::IdenticalSingletonPaths);
            }
            let (equal, eq_reason) = prover.prove_equal_governed(&s.access.path, &t.access.path);
            if equal {
                return TestOutcome {
                    answer: Answer::Yes,
                    reason: Reason::IdenticalSingletonPaths,
                    maybe: None,
                    proofs: Vec::new(),
                    stats: prover.stats(),
                };
            }
            degraded = eq_reason.filter(|r| r.is_degraded());
        }

        // Step 4: attempt to prove no dependence.
        let origins: &[Origin] = match relation {
            HandleRelation::Same => &[Origin::Same],
            HandleRelation::Distinct => &[Origin::Distinct],
            HandleRelation::Unknown => &[Origin::Same, Origin::Distinct],
        };
        let mut proofs = Vec::new();
        for &origin in origins {
            let (proof, why) =
                prover.prove_disjoint_governed(origin, &s.access.path, &t.access.path);
            match proof {
                Some(p) => proofs.push(p),
                None => {
                    let maybe = degraded.or(why).unwrap_or(MaybeReason::GenuinelyUnknown);
                    return TestOutcome {
                        answer: Answer::Maybe,
                        reason: Reason::Unproven,
                        maybe: Some(maybe),
                        proofs: Vec::new(),
                        stats: prover.stats(),
                    };
                }
            }
        }
        TestOutcome {
            answer: Answer::No,
            reason: Reason::ProvenDisjoint,
            maybe: None,
            proofs,
            stats: prover.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_axioms::adds;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn mem(handle: &Handle, path: &str, field: &str) -> MemRef {
        MemRef::new(AccessPath::new(handle.clone(), p(path)), field)
    }

    #[test]
    fn type_mismatch_is_no() {
        let axioms = AxiomSet::new();
        let tester = DepTest::new(&axioms);
        let h = Handle::for_variable("x");
        let s = mem(&h, "L", "d").with_type("Tree");
        let t = mem(&h, "L", "d").with_type("List");
        let o = tester.test(&s, &t, HandleRelation::Same);
        assert_eq!(o.answer, Answer::No);
        assert_eq!(o.reason, Reason::TypeMismatch);
    }

    #[test]
    fn union_fields_overlap_with_layout() {
        let axioms = adds::leaf_linked_tree_axioms();
        let mut layout = FieldLayout::new();
        layout.set("as_int", 0, 4);
        layout.set("as_float", 0, 4);
        layout.set("tag", 4, 1);
        let tester = DepTest::new(&axioms).with_layout(layout);
        let h = Handle::for_variable("x");
        // Same vertex through overlapping union arms: a definite
        // dependence.
        let o = tester.test(
            &mem(&h, "L", "as_int"),
            &mem(&h, "L", "as_float"),
            HandleRelation::Same,
        );
        assert_eq!(o.answer, Answer::Yes);
        // Disjoint ranges still short-circuit to No.
        let o = tester.test(
            &mem(&h, "L", "as_int"),
            &mem(&h, "L", "tag"),
            HandleRelation::Same,
        );
        assert_eq!(o.answer, Answer::No);
        assert_eq!(o.reason, Reason::FieldsDisjoint);
    }

    #[test]
    fn layout_defaults_match_plain_field_test() {
        let mut layout = FieldLayout::new();
        layout.set("a", 0, 8);
        assert!(layout.overlaps("a", "a"));
        assert!(layout.overlaps("unregistered", "unregistered"));
        assert!(!layout.overlaps("a", "unregistered"));
        assert!(!layout.overlaps("x", "y"));
    }

    #[test]
    fn distinct_fields_is_no() {
        let axioms = AxiomSet::new();
        let tester = DepTest::new(&axioms);
        let h = Handle::for_variable("x");
        let o = tester.test(&mem(&h, "L", "d"), &mem(&h, "L", "e"), HandleRelation::Same);
        assert_eq!(o.answer, Answer::No);
        assert_eq!(o.reason, Reason::FieldsDisjoint);
    }

    #[test]
    fn identical_definite_paths_is_yes() {
        let axioms = adds::leaf_linked_tree_axioms();
        let tester = DepTest::new(&axioms);
        let h = Handle::for_variable("root");
        let o = tester.test(
            &mem(&h, "L.L.N", "d"),
            &mem(&h, "L.L.N", "d"),
            HandleRelation::Same,
        );
        assert_eq!(o.answer, Answer::Yes);
        assert_eq!(o.reason, Reason::IdenticalSingletonPaths);
    }

    #[test]
    fn identical_starred_paths_is_maybe() {
        // N* = N* is NOT a definite dependence: the sets have many members.
        let axioms = adds::leaf_linked_tree_axioms();
        let tester = DepTest::new(&axioms);
        let h = Handle::for_variable("root");
        let o = tester.test(
            &mem(&h, "N*", "d"),
            &mem(&h, "N*", "d"),
            HandleRelation::Same,
        );
        assert_eq!(o.answer, Answer::Maybe);
    }

    #[test]
    fn paper_example_no_dependence() {
        let axioms = adds::leaf_linked_tree_axioms();
        let tester = DepTest::new(&axioms);
        let h = Handle::for_variable("root");
        let o = tester.test(
            &mem(&h, "L.L.N", "d"),
            &mem(&h, "L.R.N", "d"),
            HandleRelation::Same,
        );
        assert_eq!(o.answer, Answer::No);
        assert_eq!(o.reason, Reason::ProvenDisjoint);
        assert_eq!(o.proofs.len(), 1);
        assert!(o.stats.goals_attempted > 0);
    }

    #[test]
    fn different_handles_unknown_requires_both_cases() {
        let axioms = adds::leaf_linked_tree_axioms();
        let tester = DepTest::new(&axioms);
        let h1 = Handle::for_variable("p");
        let h2 = Handle::for_variable("q");
        // N from two unknown handles: same-origin case fails (x.N vs x.N
        // can coincide)… wait, identical single path from same vertex DOES
        // coincide, so answer must be Maybe.
        let o = tester.test(
            &mem(&h1, "N", "d"),
            &mem(&h2, "N", "d"),
            HandleRelation::Unknown,
        );
        assert_eq!(o.answer, Answer::Maybe);
        // With the handles known distinct, A3 proves independence.
        let o = tester.test(
            &mem(&h1, "N", "d"),
            &mem(&h2, "N", "d"),
            HandleRelation::Distinct,
        );
        assert_eq!(o.answer, Answer::No);
        assert_eq!(o.proofs.len(), 1);
    }

    #[test]
    fn unknown_relation_provable_when_both_cases_hold() {
        let axioms = adds::leaf_linked_tree_axioms();
        let tester = DepTest::new(&axioms);
        let h1 = Handle::for_variable("p");
        let h2 = Handle::for_variable("q");
        // x.L vs y.R: same-origin by A1, distinct-origin by A2.
        let o = tester.test(
            &mem(&h1, "L", "d"),
            &mem(&h2, "R", "d"),
            HandleRelation::Unknown,
        );
        assert_eq!(o.answer, Answer::No);
        assert_eq!(o.proofs.len(), 2);
    }

    #[test]
    fn same_handle_overrides_relation_argument() {
        let axioms = adds::leaf_linked_tree_axioms();
        let tester = DepTest::new(&axioms);
        let h = Handle::for_variable("root");
        // Caller passes Distinct, but the handles are literally the same
        // handle — the tester must treat the origins as equal.
        let o = tester.test(
            &mem(&h, "L.L.N", "d"),
            &mem(&h, "L.L.N", "d"),
            HandleRelation::Distinct,
        );
        assert_eq!(o.answer, Answer::Yes);
    }

    #[test]
    fn equality_axioms_yield_definite_yes() {
        // Circular doubly-linked list: head.next.prev.next is head.next.
        let axioms = AxiomSet::parse(
            "C1: forall p, p.next.prev = p.eps\n\
             C2: forall p, p.prev.next = p.eps",
        )
        .unwrap();
        let tester = DepTest::new(&axioms);
        let h = Handle::for_variable("head");
        let o = tester.test(
            &mem(&h, "next.prev.next", "d"),
            &mem(&h, "next", "d"),
            HandleRelation::Same,
        );
        assert_eq!(o.answer, Answer::Yes);
        assert_eq!(o.reason, Reason::IdenticalSingletonPaths);
        // Without the cycle laws, the same query is only Maybe.
        let bare = AxiomSet::new();
        let tester = DepTest::new(&bare);
        let o = tester.test(
            &mem(&h, "next.prev.next", "d"),
            &mem(&h, "next", "d"),
            HandleRelation::Same,
        );
        assert_eq!(o.answer, Answer::Maybe);
    }

    #[test]
    fn display_of_refs() {
        let h = Handle::new("_hroot");
        let m = mem(&h, "L.R.N", "d");
        assert_eq!(m.to_string(), "(_hroot.L.R.N)->d");
    }
}
