//! The `deptest` entry point (§4.1 of the paper).
//!
//! Given two memory references `S: … p->f …` and `T: … q->g …` (at least one
//! a write), their access paths, and a set of applicable axioms, `deptest`
//! answers:
//!
//! * **No** — the references provably never overlap;
//! * **Yes** — they definitely denote the same memory location;
//! * **Maybe** — neither could be proven.

use crate::engine::{DepEngine, DepQuery, Outcome};
use crate::goal::Origin;
use crate::handle::{Handle, HandleRelation};
use crate::portfolio::{EngineKind, Portfolio, PortfolioConfig, TallySink, Witness};
use crate::proof::Proof;
use crate::verdict::{MaybeReason, Verdict};
use crate::ProverConfig;
use apt_axioms::AxiomSet;
use apt_regex::{Path, Symbol};
use std::fmt;

/// A handle-anchored access path `H.Path` (§3.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AccessPath {
    /// The fixed anchor vertex.
    pub handle: Handle,
    /// The path from the handle to the referenced vertex.
    pub path: Path,
}

impl AccessPath {
    /// Creates `handle.path`.
    pub fn new(handle: Handle, path: Path) -> AccessPath {
        AccessPath { handle, path }
    }
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.handle, self.path)
    }
}

/// One side of a dependence query: the statement's reference `p->f`,
/// normalized per §4.1 (`S: … = p->f` / `S: p->f = …`).
#[derive(Debug, Clone)]
pub struct MemRef {
    /// The declared type of the pointed-to vertex, when known. Pointers of
    /// different structure types cannot alias (first test of `deptest`).
    pub type_name: Option<String>,
    /// The accessed field `f`.
    pub field: Symbol,
    /// The access path of the pointer `p`.
    pub access: AccessPath,
}

impl MemRef {
    /// A reference `p->field` where `p` is reached by `access`.
    pub fn new(access: AccessPath, field: impl Into<Symbol>) -> MemRef {
        MemRef {
            type_name: None,
            field: field.into(),
            access,
        }
    }

    /// Attaches the declared structure type.
    #[must_use]
    pub fn with_type(mut self, type_name: impl Into<String>) -> MemRef {
        self.type_name = Some(type_name.into());
        self
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})->{}", self.access, self.field)
    }
}

/// A rejected [`FieldLayout`] entry: the named field was declared with
/// zero size, so it could never overlap anything — almost certainly a
/// caller bug, reported as an error rather than silently weakening the
/// dependence test (or panicking in library code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutError {
    field: Symbol,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "field `{}` must occupy at least one byte",
            self.field.as_str()
        )
    }
}

impl std::error::Error for LayoutError {}

/// Byte-level field layout for one structure type, enabling the paper's
/// "if `f` and `g` do not overlap" test to handle C unions and other
/// overlapping fields precisely.
///
/// Fields without a registered range are assumed to occupy disjoint
/// storage unless they are the *same* field — the safe default for
/// ordinary struct declarations.
///
/// ```
/// # fn main() -> Result<(), apt_core::LayoutError> {
/// use apt_core::FieldLayout;
/// let mut layout = FieldLayout::new();
/// layout.set("as_int", 0, 4)?;
/// layout.set("as_float", 0, 4)?; // a union arm
/// layout.set("tag", 4, 1)?;
/// assert!(layout.overlaps("as_int", "as_float"));
/// assert!(!layout.overlaps("as_int", "tag"));
/// assert!(layout.set("bad", 0, 0).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct FieldLayout {
    ranges: std::collections::HashMap<Symbol, (u64, u64)>,
}

impl FieldLayout {
    /// An empty layout (every distinct field disjoint).
    pub fn new() -> FieldLayout {
        FieldLayout::default()
    }

    /// Registers `field` at byte `offset` with the given `size`.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] (and records nothing) when `size` is zero.
    pub fn set(
        &mut self,
        field: impl Into<Symbol>,
        offset: u64,
        size: u64,
    ) -> Result<(), LayoutError> {
        let field = field.into();
        if size == 0 {
            return Err(LayoutError { field });
        }
        self.ranges.insert(field, (offset, size));
        Ok(())
    }

    /// Whether the two fields can occupy a common byte.
    pub fn overlaps(&self, f: impl Into<Symbol>, g: impl Into<Symbol>) -> bool {
        let f = f.into();
        let g = g.into();
        if f == g {
            return true;
        }
        match (self.ranges.get(&f), self.ranges.get(&g)) {
            (Some(&(of, sf)), Some(&(og, sg))) => of < og + sg && og < of + sf,
            // Unknown layout: distinct named fields are disjoint (the
            // paper's default assumption for struct fields).
            _ => false,
        }
    }
}

/// The three possible answers of the dependence test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Answer {
    /// A data dependence definitely exists.
    Yes,
    /// No data dependence is possible.
    No,
    /// A dependence could not be proven or disproven.
    Maybe,
}

impl Answer {
    /// The stable wire spelling (`"Yes"`/`"No"`/`"Maybe"`), shared by
    /// [`fmt::Display`] and the serving layer's JSON frames.
    pub fn as_str(&self) -> &'static str {
        match self {
            Answer::Yes => "Yes",
            Answer::No => "No",
            Answer::Maybe => "Maybe",
        }
    }

    /// Parses the wire spelling back to an answer.
    pub fn from_str_opt(s: &str) -> Option<Answer> {
        Some(match s {
            "Yes" => Answer::Yes,
            "No" => Answer::No,
            "Maybe" => Answer::Maybe,
            _ => return None,
        })
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why `deptest` answered as it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reason {
    /// The two pointers have different structure types.
    TypeMismatch,
    /// The accessed fields do not overlap.
    FieldsDisjoint,
    /// The paths are identical and denote a single vertex.
    IdenticalSingletonPaths,
    /// The theorem prover established disjointness.
    ProvenDisjoint,
    /// The bounded-heap refuter produced a concrete axiom-satisfying
    /// heap in which both references touch the same node.
    WitnessedDependence,
    /// No proof was found.
    Unproven,
}

/// The full outcome of a dependence test.
#[derive(Debug, Clone)]
pub struct TestOutcome {
    /// Yes / No / Maybe.
    pub answer: Answer,
    /// Why.
    pub reason: Reason,
    /// For a Maybe: whether the search genuinely exhausted the axioms or
    /// was degraded by a resource limit (and which one). `None` for
    /// definite answers.
    pub maybe: Option<MaybeReason>,
    /// The disjointness proof(s), when `reason` is
    /// [`Reason::ProvenDisjoint`]. Two proofs appear when the handle
    /// relation was unknown and both origin cases were discharged. A
    /// portfolio run may discharge a case through the Dyck engine, which
    /// proves without a proof object — `proofs` can then be shorter than
    /// the number of cases.
    pub proofs: Vec<Proof>,
    /// Prover work counters.
    pub stats: crate::ProverStats,
    /// The concrete dependence witness, when `reason` is
    /// [`Reason::WitnessedDependence`].
    pub witness: Option<Witness>,
    /// The backend whose verdict settled the test, when a prover query
    /// (rather than a syntactic pre-check) decided it.
    pub engine: Option<EngineKind>,
}

impl TestOutcome {
    fn simple(answer: Answer, reason: Reason) -> TestOutcome {
        TestOutcome {
            answer,
            reason,
            maybe: None,
            proofs: Vec::new(),
            stats: crate::ProverStats::default(),
            witness: None,
            engine: None,
        }
    }

    /// The outcome as a [`Verdict`] (answer + degradation pedigree).
    pub fn verdict(&self) -> Verdict {
        match self.answer {
            Answer::Maybe => Verdict::maybe(self.maybe.unwrap_or(MaybeReason::GenuinelyUnknown)),
            definite => Verdict::definite(definite),
        }
    }

    /// Whether a resource limit (not the axioms) forced this answer.
    pub fn is_degraded(&self) -> bool {
        self.maybe.is_some_and(|r| r.is_degraded())
    }
}

/// What one dependence test needs from the prover, after the cheap
/// syntactic pre-checks ran.
enum TestPlan {
    /// Decided without the prover (type/field/syntactic short-circuits).
    Done(TestOutcome),
    /// Queries to run: at most one equality query, then one disjointness
    /// query per origin case, in order.
    Prove {
        equal: Option<DepQuery>,
        disjoint: Vec<DepQuery>,
    },
}

/// The APT dependence tester over one axiom set.
///
/// Backed by a [`DepEngine`], so every test run through one `DepTest`
/// shares the engine's proof/subset/DFA caches — including across threads
/// in [`DepTest::test_batch`].
#[derive(Debug, Clone)]
pub struct DepTest {
    engine: DepEngine,
    layout: FieldLayout,
    /// When set, prover queries race through the portfolio instead of
    /// running the axiomatic engine alone.
    portfolio: Option<Portfolio>,
}

impl DepTest {
    /// Creates a tester with the default prover configuration.
    pub fn new(axioms: &AxiomSet) -> DepTest {
        DepTest::with_config(axioms, ProverConfig::default())
    }

    /// Creates a tester with an explicit prover configuration.
    pub fn with_config(axioms: &AxiomSet, config: ProverConfig) -> DepTest {
        DepTest::with_engine(DepEngine::with_config(axioms.clone(), config))
    }

    /// Wraps an existing engine (sharing its caches with other users).
    pub fn with_engine(engine: DepEngine) -> DepTest {
        DepTest {
            engine,
            layout: FieldLayout::new(),
            portfolio: None,
        }
    }

    /// The engine backing this tester.
    pub fn engine(&self) -> &DepEngine {
        &self.engine
    }

    /// Routes this tester's prover queries through a racing
    /// [`Portfolio`] built over the same engine (sharing its caches).
    #[must_use]
    pub fn with_portfolio(mut self, config: PortfolioConfig) -> DepTest {
        self.portfolio = Some(Portfolio::new(self.engine.clone(), config));
        self
    }

    /// Like [`DepTest::with_portfolio`], but recording race tallies into
    /// a caller-shared [`TallySink`] — many short-lived testers (one per
    /// report query, one per axiom group) then aggregate into one total.
    #[must_use]
    pub fn with_portfolio_tallies(mut self, config: PortfolioConfig, sink: &TallySink) -> DepTest {
        self.portfolio = Some(Portfolio::new(self.engine.clone(), config).with_tallies(sink));
        self
    }

    /// The portfolio front-end, when one is attached.
    pub fn portfolio(&self) -> Option<&Portfolio> {
        self.portfolio.as_ref()
    }

    fn run_query(&self, query: &DepQuery) -> Outcome {
        match &self.portfolio {
            Some(p) => p.run(query),
            None => query.run(&self.engine),
        }
    }

    fn run_queries(&self, queries: &[DepQuery], jobs: usize) -> Vec<Outcome> {
        match &self.portfolio {
            Some(p) => p.run_batch(queries, jobs),
            None => self.engine.run_batch(queries, jobs),
        }
    }

    /// Attaches a byte-level [`FieldLayout`], refining the field-overlap
    /// test (unions, packed layouts).
    #[must_use]
    pub fn with_layout(mut self, layout: FieldLayout) -> DepTest {
        self.layout = layout;
        self
    }

    /// Runs the dependence test between references `s` (earlier statement)
    /// and `t` (later statement); at least one is assumed to be a write
    /// with no intervening write to `s`'s location.
    ///
    /// When the two access paths share a handle the origin relation is
    /// [`HandleRelation::Same`]; otherwise the caller-supplied `relation`
    /// describes what is known about the two handles (§4.1: "its accuracy
    /// depends on knowing the relationship between the two handles").
    ///
    /// ```
    /// use apt_axioms::adds::leaf_linked_tree_axioms;
    /// use apt_core::{AccessPath, Answer, DepTest, Handle, HandleRelation, MemRef};
    /// use apt_regex::Path;
    ///
    /// let axioms = leaf_linked_tree_axioms();
    /// let tester = DepTest::new(&axioms);
    /// let hroot = Handle::for_variable("root");
    /// let s = MemRef::new(
    ///     AccessPath::new(hroot.clone(), Path::parse("L.L.N").unwrap()),
    ///     "d",
    /// );
    /// let t = MemRef::new(
    ///     AccessPath::new(hroot, Path::parse("L.R.N").unwrap()),
    ///     "d",
    /// );
    /// let outcome = tester.test(&s, &t, HandleRelation::Unknown);
    /// assert_eq!(outcome.answer, Answer::No);
    /// ```
    pub fn test(&self, s: &MemRef, t: &MemRef, relation: HandleRelation) -> TestOutcome {
        match self.plan(s, t, relation) {
            TestPlan::Done(outcome) => outcome,
            TestPlan::Prove { equal, disjoint } => {
                // Sequential short-circuit: a proven equality settles the
                // test, and the first unproven disjointness case does too.
                let planned = disjoint.len();
                let equal_outcome = equal.map(|q| self.run_query(&q));
                if let Some(eq) = &equal_outcome {
                    if eq.verdict.answer == Answer::Yes {
                        return Self::assemble(planned, equal_outcome.as_ref(), &[]);
                    }
                }
                let mut disjoint_outcomes = Vec::with_capacity(planned);
                for q in disjoint {
                    let out = self.run_query(&q);
                    // Anything but a proven-disjoint case settles the
                    // test: a Maybe leaves it unproven, a witnessed
                    // dependence answers Yes outright.
                    let settled = out.verdict.answer != Answer::No;
                    disjoint_outcomes.push(out);
                    if settled {
                        break;
                    }
                }
                Self::assemble(planned, equal_outcome.as_ref(), &disjoint_outcomes)
            }
        }
    }

    /// Runs many dependence tests as one engine batch over `jobs` worker
    /// threads.
    ///
    /// Verdict-identical to calling [`DepTest::test`] per triple, but the
    /// prover work fans out in parallel, structurally identical subgoals
    /// across tests run once, and all tests share the engine caches. The
    /// only observable difference is in the work counters: batch execution
    /// is eager (no cross-query short-circuiting), so `stats` may count
    /// queries a sequential run would have skipped.
    pub fn test_batch(
        &self,
        tests: &[(MemRef, MemRef, HandleRelation)],
        jobs: usize,
    ) -> Vec<TestOutcome> {
        // Plan every test, flattening prover queries into one batch while
        // remembering which slots belong to whom.
        struct Slots {
            equal: Option<usize>,
            disjoint: std::ops::Range<usize>,
            planned: usize,
        }
        let mut plans = Vec::with_capacity(tests.len());
        let mut queries: Vec<DepQuery> = Vec::new();
        for (s, t, relation) in tests {
            match self.plan(s, t, *relation) {
                TestPlan::Done(outcome) => plans.push(Err(outcome)),
                TestPlan::Prove { equal, disjoint } => {
                    let equal_slot = equal.map(|q| {
                        queries.push(q);
                        queries.len() - 1
                    });
                    let start = queries.len();
                    let planned = disjoint.len();
                    queries.extend(disjoint);
                    plans.push(Ok(Slots {
                        equal: equal_slot,
                        disjoint: start..queries.len(),
                        planned,
                    }));
                }
            }
        }
        let outcomes = self.run_queries(&queries, jobs);
        plans
            .into_iter()
            .map(|plan| match plan {
                Err(outcome) => outcome,
                Ok(slots) => Self::assemble(
                    slots.planned,
                    slots.equal.map(|i| &outcomes[i]),
                    &outcomes[slots.disjoint],
                ),
            })
            .collect()
    }

    /// The cheap pre-checks of `deptest`, and the prover queries to run
    /// when they don't settle the test.
    fn plan(&self, s: &MemRef, t: &MemRef, relation: HandleRelation) -> TestPlan {
        // Step 1: different structure types cannot overlap (safe in ANSI C
        // under the paper's casting assumptions).
        if let (Some(ts), Some(tt)) = (&s.type_name, &t.type_name) {
            if ts != tt {
                return TestPlan::Done(TestOutcome::simple(Answer::No, Reason::TypeMismatch));
            }
        }
        // Step 2: fields that occupy disjoint storage cannot conflict.
        if !self.layout.overlaps(s.field, t.field) {
            return TestPlan::Done(TestOutcome::simple(Answer::No, Reason::FieldsDisjoint));
        }

        let same_handle = s.access.handle == t.access.handle;
        let relation = if same_handle {
            HandleRelation::Same
        } else {
            relation
        };

        // Step 3: definite dependence — identical singleton paths from the
        // same vertex, or (via the prover) paths provably equal through
        // the equality axioms (cycles: `next.prev.next ≡ next`).
        let mut equal = None;
        if relation == HandleRelation::Same {
            let syntactic = s.access.path == t.access.path && s.access.path.is_definite();
            if syntactic {
                return TestPlan::Done(TestOutcome::simple(
                    Answer::Yes,
                    Reason::IdenticalSingletonPaths,
                ));
            }
            equal = Some(DepQuery::equal(&s.access.path, &t.access.path));
        }

        // Step 4: attempt to prove no dependence, per origin case.
        let origins: &[Origin] = match relation {
            HandleRelation::Same => &[Origin::Same],
            HandleRelation::Distinct => &[Origin::Distinct],
            HandleRelation::Unknown => &[Origin::Same, Origin::Distinct],
        };
        let disjoint = origins
            .iter()
            .map(|&origin| DepQuery::disjoint(&s.access.path, &t.access.path).origin(origin))
            .collect();
        TestPlan::Prove { equal, disjoint }
    }

    /// Combines query outcomes into the test verdict. `planned` is the
    /// number of disjointness cases the plan called for; `disjoint` may be
    /// shorter when a sequential run short-circuited at an unproven case.
    fn assemble(planned: usize, equal: Option<&Outcome>, disjoint: &[Outcome]) -> TestOutcome {
        let mut stats = crate::ProverStats::default();
        if let Some(eq) = equal {
            stats.merge(&eq.stats);
        }
        for out in disjoint {
            stats.merge(&out.stats);
        }
        // A degraded equality search can only miss a Yes; remember why so
        // a final Maybe reports the earliest resource pressure.
        let mut degraded: Option<MaybeReason> = None;
        if let Some(eq) = equal {
            if eq.verdict.answer == Answer::Yes {
                return TestOutcome {
                    answer: Answer::Yes,
                    reason: Reason::IdenticalSingletonPaths,
                    maybe: None,
                    proofs: Vec::new(),
                    stats,
                    witness: None,
                    engine: Some(eq.engine),
                };
            }
            degraded = eq.maybe_reason.filter(|r| r.is_degraded());
        }
        // Cases settle on the *verdict*, not on proof presence: the Dyck
        // engine proves disjointness without a proof object, and the
        // refuter answers Yes with a witness heap instead.
        let mut proofs = Vec::new();
        let mut proven_cases = 0usize;
        let mut last_engine = None;
        for out in disjoint {
            match out.verdict.answer {
                Answer::No => {
                    proven_cases += 1;
                    last_engine = Some(out.engine);
                    if let Some(p) = &out.proof {
                        proofs.push(p.clone());
                    }
                }
                Answer::Yes => {
                    // A concrete dependence witness for one origin case
                    // settles the whole test: the witnessed heap is
                    // admissible, so no sound tester may answer No.
                    return TestOutcome {
                        answer: Answer::Yes,
                        reason: Reason::WitnessedDependence,
                        maybe: None,
                        proofs: Vec::new(),
                        stats,
                        witness: out.witness.clone(),
                        engine: Some(out.engine),
                    };
                }
                Answer::Maybe => {
                    let maybe = degraded
                        .or(out.maybe_reason)
                        .unwrap_or(MaybeReason::GenuinelyUnknown);
                    return TestOutcome {
                        answer: Answer::Maybe,
                        reason: Reason::Unproven,
                        maybe: Some(maybe),
                        proofs: Vec::new(),
                        stats,
                        witness: None,
                        engine: None,
                    };
                }
            }
        }
        if proven_cases == planned {
            TestOutcome {
                answer: Answer::No,
                reason: Reason::ProvenDisjoint,
                maybe: None,
                proofs,
                stats,
                witness: None,
                engine: last_engine,
            }
        } else {
            // Defensive: a plan that produced fewer outcomes than cases
            // (cannot happen through test/test_batch) stays conservative.
            TestOutcome {
                answer: Answer::Maybe,
                reason: Reason::Unproven,
                maybe: Some(MaybeReason::GenuinelyUnknown),
                proofs: Vec::new(),
                stats,
                witness: None,
                engine: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_axioms::adds;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn mem(handle: &Handle, path: &str, field: &str) -> MemRef {
        MemRef::new(AccessPath::new(handle.clone(), p(path)), field)
    }

    #[test]
    fn type_mismatch_is_no() {
        let axioms = AxiomSet::new();
        let tester = DepTest::new(&axioms);
        let h = Handle::for_variable("x");
        let s = mem(&h, "L", "d").with_type("Tree");
        let t = mem(&h, "L", "d").with_type("List");
        let o = tester.test(&s, &t, HandleRelation::Same);
        assert_eq!(o.answer, Answer::No);
        assert_eq!(o.reason, Reason::TypeMismatch);
    }

    #[test]
    fn union_fields_overlap_with_layout() {
        let axioms = adds::leaf_linked_tree_axioms();
        let mut layout = FieldLayout::new();
        layout.set("as_int", 0, 4).unwrap();
        layout.set("as_float", 0, 4).unwrap();
        layout.set("tag", 4, 1).unwrap();
        let tester = DepTest::new(&axioms).with_layout(layout);
        let h = Handle::for_variable("x");
        // Same vertex through overlapping union arms: a definite
        // dependence.
        let o = tester.test(
            &mem(&h, "L", "as_int"),
            &mem(&h, "L", "as_float"),
            HandleRelation::Same,
        );
        assert_eq!(o.answer, Answer::Yes);
        // Disjoint ranges still short-circuit to No.
        let o = tester.test(
            &mem(&h, "L", "as_int"),
            &mem(&h, "L", "tag"),
            HandleRelation::Same,
        );
        assert_eq!(o.answer, Answer::No);
        assert_eq!(o.reason, Reason::FieldsDisjoint);
    }

    #[test]
    fn layout_defaults_match_plain_field_test() {
        let mut layout = FieldLayout::new();
        layout.set("a", 0, 8).unwrap();
        assert!(layout.overlaps("a", "a"));
        assert!(layout.overlaps("unregistered", "unregistered"));
        assert!(!layout.overlaps("a", "unregistered"));
        assert!(!layout.overlaps("x", "y"));
    }

    #[test]
    fn zero_sized_field_is_rejected_not_recorded() {
        let mut layout = FieldLayout::new();
        let err = layout.set("ghost", 0, 0).unwrap_err();
        assert!(err.to_string().contains("ghost"));
        // The rejected field was not recorded: it behaves like any other
        // unregistered field (disjoint from everything but itself).
        assert!(layout.overlaps("ghost", "ghost"));
        assert!(!layout.overlaps("ghost", "other"));
    }

    #[test]
    fn batch_matches_sequential_tests() {
        let axioms = adds::leaf_linked_tree_axioms();
        let tester = DepTest::new(&axioms);
        let h = Handle::for_variable("root");
        let h2 = Handle::for_variable("q");
        let tests: Vec<(MemRef, MemRef, HandleRelation)> = vec![
            (
                mem(&h, "L.L.N", "d"),
                mem(&h, "L.R.N", "d"),
                HandleRelation::Same,
            ),
            (
                mem(&h, "L.L.N", "d"),
                mem(&h, "L.L.N", "d"),
                HandleRelation::Same,
            ),
            (mem(&h, "N*", "d"), mem(&h, "N*", "d"), HandleRelation::Same),
            (
                mem(&h, "N", "d"),
                mem(&h2, "N", "d"),
                HandleRelation::Distinct,
            ),
            (mem(&h, "L", "d"), mem(&h, "L", "e"), HandleRelation::Same),
        ];
        let sequential: Vec<(Answer, Reason)> = tests
            .iter()
            .map(|(s, t, r)| {
                let o = tester.test(s, t, *r);
                (o.answer, o.reason.clone())
            })
            .collect();
        for jobs in [1, 3] {
            let batch: Vec<(Answer, Reason)> = tester
                .test_batch(&tests, jobs)
                .into_iter()
                .map(|o| (o.answer, o.reason))
                .collect();
            assert_eq!(batch, sequential, "jobs={jobs}");
        }
    }

    #[test]
    fn distinct_fields_is_no() {
        let axioms = AxiomSet::new();
        let tester = DepTest::new(&axioms);
        let h = Handle::for_variable("x");
        let o = tester.test(&mem(&h, "L", "d"), &mem(&h, "L", "e"), HandleRelation::Same);
        assert_eq!(o.answer, Answer::No);
        assert_eq!(o.reason, Reason::FieldsDisjoint);
    }

    #[test]
    fn identical_definite_paths_is_yes() {
        let axioms = adds::leaf_linked_tree_axioms();
        let tester = DepTest::new(&axioms);
        let h = Handle::for_variable("root");
        let o = tester.test(
            &mem(&h, "L.L.N", "d"),
            &mem(&h, "L.L.N", "d"),
            HandleRelation::Same,
        );
        assert_eq!(o.answer, Answer::Yes);
        assert_eq!(o.reason, Reason::IdenticalSingletonPaths);
    }

    #[test]
    fn identical_starred_paths_is_maybe() {
        // N* = N* is NOT a definite dependence: the sets have many members.
        let axioms = adds::leaf_linked_tree_axioms();
        let tester = DepTest::new(&axioms);
        let h = Handle::for_variable("root");
        let o = tester.test(
            &mem(&h, "N*", "d"),
            &mem(&h, "N*", "d"),
            HandleRelation::Same,
        );
        assert_eq!(o.answer, Answer::Maybe);
    }

    #[test]
    fn paper_example_no_dependence() {
        let axioms = adds::leaf_linked_tree_axioms();
        let tester = DepTest::new(&axioms);
        let h = Handle::for_variable("root");
        let o = tester.test(
            &mem(&h, "L.L.N", "d"),
            &mem(&h, "L.R.N", "d"),
            HandleRelation::Same,
        );
        assert_eq!(o.answer, Answer::No);
        assert_eq!(o.reason, Reason::ProvenDisjoint);
        assert_eq!(o.proofs.len(), 1);
        assert!(o.stats.goals_attempted > 0);
    }

    #[test]
    fn different_handles_unknown_requires_both_cases() {
        let axioms = adds::leaf_linked_tree_axioms();
        let tester = DepTest::new(&axioms);
        let h1 = Handle::for_variable("p");
        let h2 = Handle::for_variable("q");
        // N from two unknown handles: same-origin case fails (x.N vs x.N
        // can coincide)… wait, identical single path from same vertex DOES
        // coincide, so answer must be Maybe.
        let o = tester.test(
            &mem(&h1, "N", "d"),
            &mem(&h2, "N", "d"),
            HandleRelation::Unknown,
        );
        assert_eq!(o.answer, Answer::Maybe);
        // With the handles known distinct, A3 proves independence.
        let o = tester.test(
            &mem(&h1, "N", "d"),
            &mem(&h2, "N", "d"),
            HandleRelation::Distinct,
        );
        assert_eq!(o.answer, Answer::No);
        assert_eq!(o.proofs.len(), 1);
    }

    #[test]
    fn unknown_relation_provable_when_both_cases_hold() {
        let axioms = adds::leaf_linked_tree_axioms();
        let tester = DepTest::new(&axioms);
        let h1 = Handle::for_variable("p");
        let h2 = Handle::for_variable("q");
        // x.L vs y.R: same-origin by A1, distinct-origin by A2.
        let o = tester.test(
            &mem(&h1, "L", "d"),
            &mem(&h2, "R", "d"),
            HandleRelation::Unknown,
        );
        assert_eq!(o.answer, Answer::No);
        assert_eq!(o.proofs.len(), 2);
    }

    #[test]
    fn same_handle_overrides_relation_argument() {
        let axioms = adds::leaf_linked_tree_axioms();
        let tester = DepTest::new(&axioms);
        let h = Handle::for_variable("root");
        // Caller passes Distinct, but the handles are literally the same
        // handle — the tester must treat the origins as equal.
        let o = tester.test(
            &mem(&h, "L.L.N", "d"),
            &mem(&h, "L.L.N", "d"),
            HandleRelation::Distinct,
        );
        assert_eq!(o.answer, Answer::Yes);
    }

    #[test]
    fn equality_axioms_yield_definite_yes() {
        // Circular doubly-linked list: head.next.prev.next is head.next.
        let axioms = AxiomSet::parse(
            "C1: forall p, p.next.prev = p.eps\n\
             C2: forall p, p.prev.next = p.eps",
        )
        .unwrap();
        let tester = DepTest::new(&axioms);
        let h = Handle::for_variable("head");
        let o = tester.test(
            &mem(&h, "next.prev.next", "d"),
            &mem(&h, "next", "d"),
            HandleRelation::Same,
        );
        assert_eq!(o.answer, Answer::Yes);
        assert_eq!(o.reason, Reason::IdenticalSingletonPaths);
        // Without the cycle laws, the same query is only Maybe.
        let bare = AxiomSet::new();
        let tester = DepTest::new(&bare);
        let o = tester.test(
            &mem(&h, "next.prev.next", "d"),
            &mem(&h, "next", "d"),
            HandleRelation::Same,
        );
        assert_eq!(o.answer, Answer::Maybe);
    }

    #[test]
    fn display_of_refs() {
        let h = Handle::new("_hroot");
        let m = mem(&h, "L.R.N", "d");
        assert_eq!(m.to_string(), "(_hroot.L.R.N)->d");
    }
}
