//! Process-level memory telemetry for reports, bench artifacts, and the
//! serving layer.
//!
//! Two signals matter for the data-oriented prover core:
//!
//! * the **regex arena** footprint ([`apt_regex::arena_stats`]) — the one
//!   allocation pool that used to grow without bound in a resident
//!   daemon, now scoped per engine;
//! * the process **peak RSS** (`VmHWM` from `/proc/self/status` on
//!   Linux) — the external ground truth the CI soak gates on.
//!
//! [`MemorySample`] snapshots both so every surface (`apt report`, the
//! serve `stats` verb, the bench JSON writers) reports the same fields
//! under the same names.

use apt_regex::{arena_stats, ArenaStats};

/// A point-in-time memory reading: arena occupancy plus process peak RSS.
#[derive(Debug, Clone, Copy)]
pub struct MemorySample {
    /// Regex-arena occupancy at sampling time.
    pub arena: ArenaStats,
    /// Peak resident set size in KiB (`VmHWM`), when the platform exposes
    /// it (`None` off Linux or if `/proc` is unreadable).
    pub peak_rss_kb: Option<u64>,
}

impl MemorySample {
    /// Takes a fresh sample.
    pub fn take() -> MemorySample {
        MemorySample {
            arena: arena_stats(),
            peak_rss_kb: peak_rss_kb(),
        }
    }
}

/// The process's peak resident set size in KiB, read from the kernel's
/// `VmHWM` accounting. Returns `None` where `/proc/self/status` is absent
/// or does not carry the field.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_reads_arena_and_rss() {
        let s = MemorySample::take();
        // The arena always holds at least the pinned ∅/ε constants.
        assert!(s.arena.live_nodes >= 2);
        assert!(s.arena.live_bytes > 0);
        // On Linux (the only CI target) VmHWM must parse and be nonzero.
        if cfg!(target_os = "linux") {
            let kb = s.peak_rss_kb.expect("VmHWM present on Linux");
            assert!(kb > 0);
        }
    }
}
