//! Handles: the fixed anchor vertices of access paths.
//!
//! §3.3 of the paper: "whenever possible, access paths should be collected
//! in reference to fixed vertices in the data structure. We will refer to
//! these vertices as *handles*." A handle is created each time a pointer
//! variable is assigned (except self-relative updates) and names the vertex
//! the variable pointed to at that moment.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A handle: a named, fixed vertex anchoring access paths.
///
/// Two handles are equal only if they are the *same* handle: creating
/// `_hroot` twice yields two distinct handles (two distinct anchor events in
/// the program), matching the analysis in the paper where `_hp` and `_hp2`
/// coexist.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle {
    /// Unique identity.
    id: u64,
    /// Display name, conventionally `_h<var>`.
    name: String,
}

impl Handle {
    /// Creates a fresh handle with the given display name.
    pub fn new(name: impl Into<String>) -> Handle {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        Handle {
            id: NEXT.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
        }
    }

    /// Creates a fresh handle named `_h<var>` for pointer variable `var`.
    pub fn for_variable(var: &str) -> Handle {
        Handle::new(format!("_h{var}"))
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unique id.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl fmt::Display for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// What the dependence tester knows about the relationship between two
/// handles (§4.1: "the test for different handles is nearly identical,
/// although its accuracy depends on knowing the relationship between the
/// two handles").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HandleRelation {
    /// The handles denote the same vertex.
    Same,
    /// The handles denote provably distinct vertices.
    Distinct,
    /// Nothing is known; the prover must cover both cases.
    Unknown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_handles_are_distinct() {
        let a = Handle::for_variable("root");
        let b = Handle::for_variable("root");
        assert_ne!(a, b);
        assert_eq!(a.name(), b.name());
    }

    #[test]
    fn clone_is_same_handle() {
        let a = Handle::new("_hp");
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(Handle::for_variable("q").to_string(), "_hq");
    }
}
