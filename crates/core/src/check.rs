//! An independent proof checker.
//!
//! [`check_proof`] re-validates every rule application of a [`Proof`]
//! against the axiom set, without re-running the search: each node's side
//! conditions (subset tests, injectivity, split consistency, induction
//! guardedness) are verified directly. The prover *finds* derivations;
//! the checker makes "machine-checkable proof" literal — and the tests
//! run every produced proof through it, so a prover bug cannot hide
//! behind its own bookkeeping.

use crate::goal::{Goal, Origin};
use crate::proof::{PrefixCase, Proof, Rule};
use crate::prover::{
    runs_can_be_equal, runs_can_exceed, strip_leading_run, strip_trailing_run, unfold_last_plus,
};
use apt_axioms::{Axiom, AxiomKind, AxiomSet};
use apt_regex::{ops, Component, Path, Regex};
use std::error::Error;
use std::fmt;

/// Why a proof failed to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofError {
    /// Rendering of the goal whose node failed.
    pub goal: String,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid proof at [{}]: {}", self.goal, self.message)
    }
}

impl Error for ProofError {}

fn err(goal: &Goal, message: impl Into<String>) -> ProofError {
    ProofError {
        goal: goal.to_string(),
        message: message.into(),
    }
}

/// One ancestor frame on the checking path, for induction validation.
#[derive(Debug, Clone)]
struct Frame {
    goal: String,
    shrinks: usize,
    rewrites: usize,
}

/// Verifies that `proof` is a valid derivation of its root goal from
/// `axioms`.
///
/// # Errors
///
/// Returns the first invalid node found.
pub fn check_proof(axioms: &AxiomSet, proof: &Proof) -> Result<(), ProofError> {
    let mut stack = Vec::new();
    check_node(axioms, proof, &mut stack, 0, 0)
}

/// Looks up an axiom by the label the proof cites.
fn axiom_by_label<'a>(axioms: &'a AxiomSet, label: &str) -> Option<&'a Axiom> {
    axioms
        .iter()
        .find(|a| a.label() == label || a.name() == Some(label))
}

/// Checks that `axiom` (of the form matching `origin`) covers the two path
/// languages, possibly swapped.
fn axiom_covers(axiom: &Axiom, origin: Origin, a: &Regex, b: &Regex, swapped: bool) -> bool {
    let expected_kind = match origin {
        Origin::Same => AxiomKind::DisjointSameOrigin,
        Origin::Distinct => AxiomKind::DisjointDistinctOrigins,
    };
    if axiom.kind() != expected_kind {
        return false;
    }
    let (lhs, rhs) = if swapped {
        (axiom.rhs(), axiom.lhs())
    } else {
        (axiom.lhs(), axiom.rhs())
    };
    ops::is_subset(a, lhs) && ops::is_subset(b, rhs)
}

/// Whether two goals are equal up to the canonical path order.
fn same_goal(a: &Goal, b: &Goal) -> bool {
    a == b
}

/// An injectivity axiom for `f`: `∀p<>q, p.f <> q.f` up to language
/// equality.
fn is_injectivity(axiom: &Axiom, f: apt_regex::Symbol) -> bool {
    let fre = Regex::field(f);
    axiom.kind() == AxiomKind::DisjointDistinctOrigins
        && ops::equivalent(axiom.lhs(), &fre)
        && ops::equivalent(axiom.rhs(), &fre)
}

fn check_node(
    axioms: &AxiomSet,
    node: &Proof,
    stack: &mut Vec<Frame>,
    shrinks: usize,
    rewrites: usize,
) -> Result<(), ProofError> {
    let goal = &node.goal;
    // Push the current frame; children see it as an ancestor.
    stack.push(Frame {
        goal: goal.to_string(),
        shrinks,
        rewrites,
    });
    let result = check_rule(axioms, node, stack, shrinks, rewrites);
    stack.pop();
    result
}

#[allow(clippy::too_many_lines)]
fn check_rule(
    axioms: &AxiomSet,
    node: &Proof,
    stack: &mut Vec<Frame>,
    shrinks: usize,
    rewrites: usize,
) -> Result<(), ProofError> {
    let goal = &node.goal;
    let children = &node.children;
    let expect_children = |n: usize| -> Result<(), ProofError> {
        if children.len() == n {
            Ok(())
        } else {
            Err(err(
                goal,
                format!("expected {n} premises, found {}", children.len()),
            ))
        }
    };
    // Checks one child both exists, proves the expected goal, and is
    // itself valid.
    let check_child = |idx: usize,
                       expected: &Goal,
                       stack: &mut Vec<Frame>,
                       shrinks: usize|
     -> Result<(), ProofError> {
        let child = children
            .get(idx)
            .ok_or_else(|| err(goal, format!("missing premise {idx}")))?;
        if !same_goal(&child.goal, expected) {
            return Err(err(
                goal,
                format!(
                    "premise {idx} proves [{}], expected [{expected}]",
                    child.goal
                ),
            ));
        }
        check_node(axioms, child, stack, shrinks, rewrites)
    };

    match &node.rule {
        Rule::Axiom { axiom, swapped } => {
            expect_children(0)?;
            let ax = axiom_by_label(axioms, axiom)
                .ok_or_else(|| err(goal, format!("cites unknown axiom {axiom:?}")))?;
            let a = goal.a().to_regex();
            let b = goal.b().to_regex();
            // The canonical goal order may not match the axiom's side
            // order, so accept either orientation regardless of the
            // recorded `swapped` flag — the flag is a display hint.
            if !axiom_covers(ax, goal.origin(), &a, &b, *swapped)
                && !axiom_covers(ax, goal.origin(), &a, &b, !*swapped)
            {
                return Err(err(goal, format!("axiom {axiom} does not cover the goal")));
            }
            Ok(())
        }
        Rule::TrivialDistinctEpsilon => {
            expect_children(0)?;
            if goal.origin() == Origin::Distinct && goal.a().is_epsilon() && goal.b().is_epsilon() {
                Ok(())
            } else {
                Err(err(
                    goal,
                    "trivial rule applies only to ε <> ε with distinct origins",
                ))
            }
        }
        Rule::HeadPeel { field } => {
            expect_children(1)?;
            if goal.origin() != Origin::Same {
                return Err(err(
                    goal,
                    "head peel without injectivity needs a common origin",
                ));
            }
            let (ha, ta) = goal
                .a()
                .split_first()
                .ok_or_else(|| err(goal, "left path has no head"))?;
            let (hb, tb) = goal
                .b()
                .split_first()
                .ok_or_else(|| err(goal, "right path has no head"))?;
            match (ha, hb) {
                (Component::Field(fa), Component::Field(fb))
                    if fa == fb && fa.as_str() == field =>
                {
                    check_child(0, &Goal::new(Origin::Same, ta, tb), stack, shrinks + 1)
                }
                _ => Err(err(goal, "paths do not share the recorded head field")),
            }
        }
        Rule::HeadPeelInjective { field, axiom } => {
            expect_children(1)?;
            if goal.origin() != Origin::Distinct {
                return Err(err(goal, "injective head peel applies to distinct origins"));
            }
            let (ha, ta) = goal
                .a()
                .split_first()
                .ok_or_else(|| err(goal, "left path has no head"))?;
            let (hb, tb) = goal
                .b()
                .split_first()
                .ok_or_else(|| err(goal, "right path has no head"))?;
            let (Component::Field(fa), Component::Field(fb)) = (ha, hb) else {
                return Err(err(goal, "heads are not plain fields"));
            };
            if fa != fb || fa.as_str() != field {
                return Err(err(goal, "paths do not share the recorded head field"));
            }
            let ax = axiom_by_label(axioms, axiom)
                .ok_or_else(|| err(goal, format!("cites unknown axiom {axiom:?}")))?;
            if !is_injectivity(ax, *fa) {
                return Err(err(
                    goal,
                    format!("axiom {axiom} is not injectivity of {field}"),
                ));
            }
            check_child(0, &Goal::new(Origin::Distinct, ta, tb), stack, shrinks + 1)
        }
        Rule::HeadPeelCases { field } => {
            expect_children(2)?;
            let (ha, ta) = goal
                .a()
                .split_first()
                .ok_or_else(|| err(goal, "left path has no head"))?;
            let (hb, tb) = goal
                .b()
                .split_first()
                .ok_or_else(|| err(goal, "right path has no head"))?;
            let (Component::Field(fa), Component::Field(fb)) = (ha, hb) else {
                return Err(err(goal, "heads are not plain fields"));
            };
            if fa != fb || fa.as_str() != field {
                return Err(err(goal, "paths do not share the recorded head field"));
            }
            check_child(
                0,
                &Goal::new(Origin::Distinct, ta.clone(), tb.clone()),
                stack,
                shrinks + 1,
            )?;
            check_child(1, &Goal::new(Origin::Same, ta, tb), stack, shrinks + 1)
        }
        Rule::TailPeel { field, axiom } => {
            expect_children(1)?;
            let (ia, ta) = goal
                .a()
                .split_last()
                .ok_or_else(|| err(goal, "left path has no tail"))?;
            let (ib, tb) = goal
                .b()
                .split_last()
                .ok_or_else(|| err(goal, "right path has no tail"))?;
            let (Component::Field(fa), Component::Field(fb)) = (ta, tb) else {
                return Err(err(goal, "tails are not plain fields"));
            };
            if fa != fb || fa.as_str() != field {
                return Err(err(goal, "paths do not share the recorded tail field"));
            }
            let ax = axiom_by_label(axioms, axiom)
                .ok_or_else(|| err(goal, format!("cites unknown axiom {axiom:?}")))?;
            if !is_injectivity(ax, *fa) {
                return Err(err(
                    goal,
                    format!("axiom {axiom} is not injectivity of {field}"),
                ));
            }
            check_child(0, &Goal::new(goal.origin(), ia, ib), stack, shrinks + 1)
        }
        Rule::ClosureTailPeel { field, axiom } => {
            let f = apt_regex::Symbol::intern(field);
            let (base_a, fa, min_a, ub_a) = strip_trailing_run(goal.a())
                .ok_or_else(|| err(goal, "left path has no trailing run"))?;
            let (base_b, fb, min_b, ub_b) = strip_trailing_run(goal.b())
                .ok_or_else(|| err(goal, "right path has no trailing run"))?;
            if fa != f || fb != f {
                return Err(err(goal, "trailing runs are not over the recorded field"));
            }
            let ax = axiom_by_label(axioms, axiom)
                .ok_or_else(|| err(goal, format!("cites unknown axiom {axiom:?}")))?;
            if !is_injectivity(ax, f) {
                return Err(err(
                    goal,
                    format!("axiom {axiom} is not injectivity of {field}"),
                ));
            }
            let with_plus = |base: &Path| {
                let mut p = base.clone();
                p.push(Component::Plus(Path::fields([field.as_str()])));
                p
            };
            let mut expected = Vec::new();
            if runs_can_be_equal(min_a, ub_a, min_b, ub_b) {
                expected.push((
                    Goal::new(goal.origin(), base_a.clone(), base_b.clone()),
                    min_a.max(min_b) >= 1,
                ));
            }
            if runs_can_exceed(min_a, ub_a, min_b, ub_b) {
                expected.push((
                    Goal::new(goal.origin(), with_plus(&base_a), base_b.clone()),
                    min_b >= 1,
                ));
            }
            if runs_can_exceed(min_b, ub_b, min_a, ub_a) {
                expected.push((
                    Goal::new(goal.origin(), base_a.clone(), with_plus(&base_b)),
                    min_a >= 1,
                ));
            }
            expect_children(expected.len())?;
            // Only guaranteed peels advance the induction measure (same
            // condition as the prover).
            for (i, (e, strict)) in expected.iter().enumerate() {
                check_child(i, e, stack, shrinks + usize::from(*strict))?;
            }
            Ok(())
        }
        Rule::ClosureHeadPeel { field } => {
            let f = apt_regex::Symbol::intern(field);
            let (base_a, fa, min_a, ub_a) = strip_leading_run(goal.a())
                .ok_or_else(|| err(goal, "left path has no leading run"))?;
            let (base_b, fb, min_b, ub_b) = strip_leading_run(goal.b())
                .ok_or_else(|| err(goal, "right path has no leading run"))?;
            if fa != f || fb != f {
                return Err(err(goal, "leading runs are not over the recorded field"));
            }
            // For distinct origins the peel additionally needs injectivity
            // of the run field.
            if goal.origin() == Origin::Distinct && !axioms.iter().any(|ax| is_injectivity(ax, f)) {
                return Err(err(
                    goal,
                    format!("distinct-origin head-run peel needs injectivity of {field}"),
                ));
            }
            let plus = |base: &Path| {
                let mut p = Path::new(vec![Component::Plus(Path::fields([field.as_str()]))]);
                p = p.concat(base);
                p
            };
            let mut expected = Vec::new();
            if runs_can_be_equal(min_a, ub_a, min_b, ub_b) {
                expected.push((
                    Goal::new(goal.origin(), base_a.clone(), base_b.clone()),
                    min_a.max(min_b) >= 1,
                ));
            }
            if runs_can_exceed(min_a, ub_a, min_b, ub_b) {
                expected.push((
                    Goal::new(goal.origin(), plus(&base_a), base_b.clone()),
                    min_b >= 1,
                ));
            }
            if runs_can_exceed(min_b, ub_b, min_a, ub_a) {
                expected.push((
                    Goal::new(goal.origin(), base_a.clone(), plus(&base_b)),
                    min_a >= 1,
                ));
            }
            expect_children(expected.len())?;
            for (i, (e, strict)) in expected.iter().enumerate() {
                check_child(i, e, stack, shrinks + usize::from(*strict))?;
            }
            Ok(())
        }
        Rule::Decompose { prefix_case, .. } => {
            // Recover the split from the premises (their goals carry the
            // actual suffix/prefix paths) and re-verify it against every
            // admissible split of the parent paths.
            let first = children
                .first()
                .ok_or_else(|| err(goal, "decompose needs at least one premise"))?;
            let (sa, sb) = (first.goal.a().clone(), first.goal.b().clone());
            let find_split = |path: &Path, suffix: &Path| -> Option<Path> {
                let mut variants = vec![path.clone()];
                if let Some(v) = unfold_last_plus(path) {
                    variants.push(v);
                }
                for v in variants {
                    for i in 0..=v.len() {
                        let s = v.suffix(i);
                        // The suffix goal canonicalizes order, so match
                        // either side.
                        if &s == suffix {
                            return Some(v.prefix(i));
                        }
                    }
                }
                None
            };
            // Suffix goals are canonicalized, so (sa, sb) may correspond to
            // (a, b) or (b, a); try both assignments.
            let assignments = [
                (find_split(goal.a(), &sa), find_split(goal.b(), &sb), false),
                (find_split(goal.a(), &sb), find_split(goal.b(), &sa), true),
            ];
            let (pa, pb, swapped) = assignments
                .iter()
                .find_map(|(x, y, sw)| match (x, y) {
                    (Some(x), Some(y)) => Some((x.clone(), y.clone(), *sw)),
                    _ => None,
                })
                .ok_or_else(|| err(goal, "premise suffixes are not suffixes of the goal paths"))?;
            let (sa, sb) = if swapped { (sb, sa) } else { (sa, sb) };
            if pa.len() + sa.len() == 0 || pb.len() + sb.len() == 0 {
                // (cannot happen: paths reconstruct fully)
            }
            if sa.is_epsilon() && sb.is_epsilon() {
                return Err(err(goal, "decompose must peel a non-empty suffix"));
            }
            match prefix_case {
                PrefixCase::BothOrigins => {
                    expect_children(2)?;
                    check_child(
                        0,
                        &Goal::new(Origin::Same, sa.clone(), sb.clone()),
                        stack,
                        shrinks,
                    )?;
                    check_child(1, &Goal::new(Origin::Distinct, sa, sb), stack, shrinks)
                }
                PrefixCase::PrefixesEqual => {
                    expect_children(1)?;
                    if goal.origin() != Origin::Same {
                        return Err(err(goal, "prefix-equality requires a common root"));
                    }
                    if !(pa == pb && pa.is_definite()) {
                        return Err(err(goal, "prefixes are not definitely equal"));
                    }
                    check_child(0, &Goal::new(Origin::Same, sa, sb), stack, shrinks)
                }
                PrefixCase::PrefixesDisjoint => {
                    // Same strict-descent condition as the prover: only a
                    // guaranteed-nonempty peeled suffix advances the
                    // induction measure.
                    let strict = !sa.to_regex().is_nullable() || !sb.to_regex().is_nullable();
                    check_child(0, &Goal::new(Origin::Distinct, sa, sb), stack, shrinks)?;
                    if goal.origin() == Origin::Distinct && pa.is_epsilon() && pb.is_epsilon() {
                        // Roots are distinct by quantification; T2 suffices.
                        expect_children(1)
                    } else {
                        expect_children(2)?;
                        if goal.origin() == Origin::Same && pa.is_epsilon() && pb.is_epsilon() {
                            return Err(err(goal, "equal roots cannot be distinct origins"));
                        }
                        check_child(
                            1,
                            &Goal::new(goal.origin(), pa, pb),
                            stack,
                            shrinks + usize::from(strict),
                        )
                    }
                }
            }
        }
        Rule::AltSplit => {
            expect_children(2)?;
            // Verify each premise is the parent with one alternation
            // component replaced by one alternative, same position for
            // both, covering both alternatives.
            let verify = |which_a: bool| -> bool {
                let path = if which_a { goal.a() } else { goal.b() };
                for (idx, c) in path.components().iter().enumerate().rev() {
                    if let Component::Alt(x, y) = c {
                        let splice = |alt: &Path| -> Path {
                            let mut comps: Vec<Component> = path.components()[..idx].to_vec();
                            comps.extend(alt.components().iter().cloned());
                            comps.extend(path.components()[idx + 1..].iter().cloned());
                            Path::new(comps)
                        };
                        let other = if which_a { goal.b() } else { goal.a() };
                        let g1 = Goal::new(goal.origin(), splice(x), other.clone());
                        let g2 = Goal::new(goal.origin(), splice(y), other.clone());
                        let found1 = children.iter().any(|ch| same_goal(&ch.goal, &g1));
                        let found2 = children.iter().any(|ch| same_goal(&ch.goal, &g2));
                        if found1 && found2 {
                            return true;
                        }
                    }
                }
                false
            };
            if !verify(true) && !verify(false) {
                return Err(err(
                    goal,
                    "premises do not split an alternation of the goal",
                ));
            }
            for (i, child) in children.iter().enumerate() {
                let _ = i;
                check_node(axioms, child, stack, shrinks, rewrites)?;
            }
            Ok(())
        }
        Rule::StarCases => {
            let tail_star = |p: &Path| -> Option<(Path, Path)> {
                let (init, last) = p.split_last()?;
                if let Component::Star(w) = last {
                    Some((init, w.clone()))
                } else {
                    None
                }
            };
            let sa = tail_star(goal.a());
            let sb = tail_star(goal.b());
            if sa.is_none() && sb.is_none() {
                return Err(err(goal, "no trailing star to case-split"));
            }
            let cases = |p: &Path, s: &Option<(Path, Path)>| -> Vec<Path> {
                match s {
                    Some((init, w)) => {
                        let mut plus = init.clone();
                        plus.push(Component::Plus(w.clone()));
                        vec![init.clone(), plus]
                    }
                    None => vec![p.clone()],
                }
            };
            let mut expected = Vec::new();
            for aa in cases(goal.a(), &sa) {
                for bb in cases(goal.b(), &sb) {
                    expected.push(Goal::new(goal.origin(), aa.clone(), bb));
                }
            }
            expect_children(expected.len())?;
            for (i, e) in expected.iter().enumerate() {
                check_child(i, e, stack, shrinks)?;
            }
            Ok(())
        }
        Rule::Rewrite { axiom } => {
            expect_children(1)?;
            let ax = axiom_by_label(axioms, axiom)
                .ok_or_else(|| err(goal, format!("cites unknown axiom {axiom:?}")))?;
            if ax.kind() != AxiomKind::Equal {
                return Err(err(goal, format!("axiom {axiom} is not an equality axiom")));
            }
            let child = &children[0];
            // Verify the child goal arises from the parent by rewriting a
            // prefix of one path with the axiom (either direction).
            let mut valid = false;
            'outer: for (path, other) in [
                (goal.a().clone(), goal.b().clone()),
                (goal.b().clone(), goal.a().clone()),
            ] {
                for k in 1..=path.len() {
                    let head = Path::new(path.components()[..k].to_vec());
                    let tail = Path::new(path.components()[k..].to_vec());
                    let head_re = head.to_regex();
                    for (from, to) in [(ax.lhs(), ax.rhs()), (ax.rhs(), ax.lhs())] {
                        if ops::equivalent(&head_re, from) {
                            if let Ok(to_path) = Path::try_from(to) {
                                let new_path = to_path.concat(&tail);
                                let g = Goal::new(goal.origin(), new_path, other.clone());
                                if same_goal(&child.goal, &g) {
                                    valid = true;
                                    break 'outer;
                                }
                            }
                        }
                    }
                }
            }
            if !valid {
                return Err(err(goal, "premise is not a prefix rewrite of the goal"));
            }
            check_node(axioms, child, stack, shrinks, rewrites + 1)
        }
        Rule::Induction { target } => {
            expect_children(0)?;
            if target != &goal.to_string() {
                return Err(err(goal, "induction target does not match the goal"));
            }
            // The target must appear as a *proper* ancestor, with at least
            // one shrinking rule and no rewrite in between.
            let hit = stack[..stack.len().saturating_sub(1)]
                .iter()
                .rev()
                .find(|f| f.goal == *target);
            match hit {
                Some(f) if shrinks > f.shrinks && rewrites == f.rewrites => Ok(()),
                Some(_) => Err(err(
                    goal,
                    "induction cycle is not guarded by a shrinking, rewrite-free path",
                )),
                None => Err(err(goal, "induction target is not an ancestor goal")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prover::Prover;
    use apt_axioms::adds;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    fn prove(axioms: &AxiomSet, origin: Origin, a: &str, b: &str) -> Proof {
        let mut prover = Prover::new(axioms);
        crate::DepQuery::disjoint(&p(a), &p(b))
            .origin(origin)
            .run_with(&mut prover)
            .proof
            .unwrap_or_else(|| panic!("{a} <> {b} should be provable"))
    }

    #[test]
    fn checks_paper_3_3_proof() {
        let axioms = adds::leaf_linked_tree_axioms();
        let proof = prove(&axioms, Origin::Same, "L.L.N", "L.R.N");
        check_proof(&axioms, &proof).expect("valid");
    }

    #[test]
    fn checks_theorem_t_proofs() {
        let axioms = adds::sparse_matrix_minimal_axioms();
        let proof = prove(&axioms, Origin::Same, "ncolE+", "nrowE+.ncolE+");
        check_proof(&axioms, &proof).expect("valid");
        let full = adds::sparse_matrix_axioms();
        let proof = prove(&full, Origin::Same, "ncolE+", "nrowE+.ncolE+");
        check_proof(&full, &proof).expect("valid");
    }

    #[test]
    fn checks_star_induction_proof() {
        let axioms = AxiomSet::parse(
            "A1: forall p, p.L <> p.R\n\
             A2: forall p <> q, p.(L|R) <> q.(L|R)\n\
             A3: forall p, p.(L|R)+ <> p.eps",
        )
        .unwrap();
        let proof = prove(&axioms, Origin::Same, "L.(L|R)*", "R.(L|R)*");
        check_proof(&axioms, &proof).expect("valid cyclic proof");
    }

    #[test]
    fn checks_rewrite_proof() {
        let axioms = AxiomSet::parse(
            "D1: forall p, p.next.prev = p.eps\n\
             D2: forall p, p.next+ <> p.eps",
        )
        .unwrap();
        let proof = prove(&axioms, Origin::Same, "next.prev.next", "eps");
        check_proof(&axioms, &proof).expect("valid");
    }

    #[test]
    fn rejects_fabricated_axiom_leaf() {
        let axioms = adds::leaf_linked_tree_axioms();
        // Claim L <> L.L by A1 — bogus.
        let fake = Proof::leaf(
            Goal::new(Origin::Same, p("L"), p("L.L")),
            Rule::Axiom {
                axiom: "A1".into(),
                swapped: false,
            },
        );
        let e = check_proof(&axioms, &fake).unwrap_err();
        assert!(e.message.contains("does not cover"), "{e}");
    }

    #[test]
    fn rejects_unknown_axiom_citation() {
        let axioms = adds::leaf_linked_tree_axioms();
        let fake = Proof::leaf(
            Goal::new(Origin::Same, p("L"), p("R")),
            Rule::Axiom {
                axiom: "A99".into(),
                swapped: false,
            },
        );
        assert!(check_proof(&axioms, &fake).is_err());
    }

    #[test]
    fn rejects_unguarded_induction() {
        let axioms = adds::leaf_linked_tree_axioms();
        let g = Goal::new(Origin::Same, p("L.(L|R)*"), p("R.(L|R)*"));
        // An induction leaf with itself as target but no ancestor chain.
        let fake = Proof::leaf(
            g.clone(),
            Rule::Induction {
                target: g.to_string(),
            },
        );
        let e = check_proof(&axioms, &fake).unwrap_err();
        assert!(e.message.contains("ancestor"), "{e}");
    }

    #[test]
    fn rejects_wrong_premise_goal() {
        let axioms = adds::leaf_linked_tree_axioms();
        // TailPeel that claims L.N <> R.N reduces to L <> L (wrong).
        let fake = Proof {
            goal: Goal::new(Origin::Same, p("L.N"), p("R.N")),
            rule: Rule::TailPeel {
                field: "N".into(),
                axiom: "A3".into(),
            },
            children: vec![Proof::leaf(
                Goal::new(Origin::Same, p("L"), p("L")),
                Rule::Axiom {
                    axiom: "A1".into(),
                    swapped: false,
                },
            )],
        };
        assert!(check_proof(&axioms, &fake).is_err());
    }

    #[test]
    fn rejects_trivial_rule_misuse() {
        let axioms = AxiomSet::new();
        let fake = Proof::leaf(
            Goal::new(Origin::Same, Path::epsilon(), Path::epsilon()),
            Rule::TrivialDistinctEpsilon,
        );
        assert!(check_proof(&axioms, &fake).is_err());
    }

    #[test]
    fn every_suite_proof_checks() {
        // All flagship proofs across axiom families pass the checker.
        let cases: Vec<(AxiomSet, Origin, &str, &str)> = vec![
            (
                adds::leaf_linked_tree_axioms(),
                Origin::Same,
                "L.L.N",
                "L.R.N",
            ),
            (
                adds::leaf_linked_tree_axioms(),
                Origin::Same,
                "eps",
                "(L|R|N)+",
            ),
            (
                adds::leaf_linked_tree_axioms(),
                Origin::Distinct,
                "N.N",
                "N.N",
            ),
            (
                adds::sparse_matrix_axioms(),
                Origin::Distinct,
                "relem.ncolE*",
                "relem.ncolE*",
            ),
            (
                adds::sparse_matrix_minimal_axioms(),
                Origin::Same,
                "ncolE+",
                "nrowE+.ncolE+",
            ),
        ];
        for (axioms, origin, a, b) in cases {
            let proof = prove(&axioms, origin, a, b);
            check_proof(&axioms, &proof).unwrap_or_else(|e| panic!("{a} <> {b}: {e}\n{proof}"));
        }
    }
}
