//! Proof trees.
//!
//! A successful `proveDisj` run yields a derivation tree whose rendering
//! mirrors the paper's "paraphrased proof" style (§3.3): each node says
//! which rule fired, which axiom (if any) was used, and lists the subproofs.

use crate::goal::Goal;
use std::fmt;

/// The proof rule that discharged a goal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rule {
    /// Direct application of a single axiom (steps A/B of `proveDisj`):
    /// each path's language is contained in one side of the axiom.
    Axiom {
        /// Label of the axiom used.
        axiom: String,
        /// Whether the goal's paths matched the axiom's sides swapped.
        swapped: bool,
    },
    /// `∀x<>y, x.ε <> y.ε` is trivially true.
    TrivialDistinctEpsilon,
    /// Peeled a common definite head field from both same-origin paths
    /// ("since both paths start from the same vertex and begin with L…").
    HeadPeel {
        /// The peeled field.
        field: String,
    },
    /// Peeled a common definite head field from distinct-origin paths using
    /// an injectivity axiom (`∀p<>q, p.f <> q.f`).
    HeadPeelInjective {
        /// The peeled field.
        field: String,
        /// The injectivity axiom used.
        axiom: String,
    },
    /// Peeled a common definite head field from distinct-origin paths
    /// without injectivity — requires both the same- and distinct-origin
    /// subgoals on the tails.
    HeadPeelCases {
        /// The peeled field.
        field: String,
    },
    /// Peeled a common trailing field from both paths using an injectivity
    /// axiom ("Applying A3, theorem is true if …").
    TailPeel {
        /// The peeled field.
        field: String,
        /// The injectivity axiom used.
        axiom: String,
    },
    /// Inductive peel of common trailing Kleene runs of one injective field
    /// (the paper's multi-case Kleene induction, collapsed through
    /// injectivity into the equal/left-extra/right-extra cases).
    ClosureTailPeel {
        /// The run field.
        field: String,
        /// The injectivity axiom used.
        axiom: String,
    },
    /// Case split on leading Kleene runs of a common head field for a
    /// same-origin goal (equal/left-extra/right-extra).
    ClosureHeadPeel {
        /// The run field.
        field: String,
    },
    /// The suffix-decomposition step of `proveDisj` (Figure 5): suffixes
    /// proven disjoint for both the same- and distinct-origin cases, or one
    /// case plus a prefix argument.
    Decompose {
        /// Rendering of the chosen suffix of the first path.
        suffix_a: String,
        /// Rendering of the chosen suffix of the second path.
        suffix_b: String,
        /// How the prefix pair was discharged.
        prefix_case: PrefixCase,
    },
    /// Split an alternation component; every branch proved separately.
    AltSplit,
    /// Rewrote a path prefix using an equality axiom (`∀p, p.RE1 = p.RE2`).
    Rewrite {
        /// The equality axiom used.
        axiom: String,
    },
    /// Case analysis on trailing Kleene-star components (step E of §4.1):
    /// each star is replaced by ε and by one-or-more repetitions; every
    /// case must prove.
    StarCases,
    /// Closed by the inductive hypothesis: this goal is an ancestor of
    /// itself across at least one witness-shrinking step, so a minimal
    /// counterexample would yield a strictly smaller one (the paper's
    /// "assume a*a and replace with a*aa" induction, as infinite descent).
    Induction {
        /// Rendering of the ancestor goal assumed as hypothesis.
        target: String,
    },
}

/// How the prefix pair of a [`Rule::Decompose`] step was discharged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixCase {
    /// Both suffix-origin cases (same and distinct) were proven directly,
    /// so the prefix relationship is irrelevant (steps A ∧ B).
    BothOrigins,
    /// Same-origin suffix case proven; prefixes are definitely equal
    /// (step C).
    PrefixesEqual,
    /// Distinct-origin suffix case proven; prefixes proven disjoint
    /// recursively (step D).
    PrefixesDisjoint,
}

/// A node of a proof tree: a goal, the rule that discharged it, and the
/// subproofs the rule required.
#[derive(Debug, Clone)]
pub struct Proof {
    /// The goal this node establishes.
    pub goal: Goal,
    /// The rule that fired.
    pub rule: Rule,
    /// Subproofs (rule premises), in rule-specific order.
    pub children: Vec<Proof>,
}

impl Proof {
    /// Creates a leaf proof.
    pub fn leaf(goal: Goal, rule: Rule) -> Proof {
        Proof {
            goal,
            rule,
            children: Vec::new(),
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(Proof::node_count).sum::<usize>()
    }

    /// Depth of the tree.
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(Proof::depth).max().unwrap_or(0)
    }

    /// Every axiom label cited anywhere in the proof.
    pub fn axioms_used(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_axioms(&mut out);
        out.sort();
        out.dedup();
        out
    }

    /// Renderings of every goal assumed by an [`Rule::Induction`] leaf in
    /// this tree. A proof is self-contained once this set is a subset of
    /// `{self.goal}`.
    pub fn induction_targets(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_targets(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_targets(&self, out: &mut Vec<String>) {
        if let Rule::Induction { target } = &self.rule {
            out.push(target.clone());
        }
        for c in &self.children {
            c.collect_targets(out);
        }
    }

    fn collect_axioms(&self, out: &mut Vec<String>) {
        match &self.rule {
            Rule::Axiom { axiom, .. }
            | Rule::TailPeel { axiom, .. }
            | Rule::ClosureTailPeel { axiom, .. }
            | Rule::HeadPeelInjective { axiom, .. }
            | Rule::Rewrite { axiom } => out.push(axiom.clone()),
            _ => {}
        }
        for c in &self.children {
            c.collect_axioms(out);
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        let explain = match &self.rule {
            Rule::Axiom { axiom, .. } => format!("by axiom {axiom}"),
            Rule::TrivialDistinctEpsilon => "trivially (distinct origins)".to_owned(),
            Rule::HeadPeel { field } => {
                format!("both paths start from the same vertex and begin with {field}; reduces to:")
            }
            Rule::HeadPeelInjective { field, axiom } => {
                format!("origins distinct and {field} is injective (axiom {axiom}); reduces to:")
            }
            Rule::HeadPeelCases { field } => {
                format!("peeling head {field} without injectivity; both origin cases required:")
            }
            Rule::TailPeel { field, axiom } => {
                format!("applying {axiom} (injectivity of {field}), theorem is true if:")
            }
            Rule::ClosureTailPeel { field, axiom } => format!(
                "induction on the trailing {field}-runs (injectivity axiom {axiom}); cases:"
            ),
            Rule::ClosureHeadPeel { field } => {
                format!("case split on the leading {field}-runs; cases:")
            }
            Rule::Decompose {
                suffix_a,
                suffix_b,
                prefix_case,
            } => {
                let pc = match prefix_case {
                    PrefixCase::BothOrigins => "suffixes disjoint from any origins",
                    PrefixCase::PrefixesEqual => {
                        "suffixes disjoint from a common origin; prefixes definitely equal"
                    }
                    PrefixCase::PrefixesDisjoint => {
                        "suffixes disjoint from distinct origins; prefixes proven disjoint"
                    }
                };
                format!("decompose with suffixes ({suffix_a}, {suffix_b}): {pc}:")
            }
            Rule::AltSplit => "splitting the alternatives; each case:".to_owned(),
            Rule::Rewrite { axiom } => format!("rewriting with equality axiom {axiom}:"),
            Rule::StarCases => "case analysis on the trailing kleene components; cases:".to_owned(),
            Rule::Induction { target } => {
                format!("by the inductive hypothesis [{target}]")
            }
        };
        writeln!(f, "{pad}- {}  [{explain}]", self.goal)?;
        for c in &self.children {
            c.fmt_indented(f, depth + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for Proof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Proof:")?;
        self.fmt_indented(f, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::Origin;
    use apt_regex::Path;

    fn goal(a: &str, b: &str) -> Goal {
        Goal::new(
            Origin::Same,
            Path::parse(a).unwrap(),
            Path::parse(b).unwrap(),
        )
    }

    #[test]
    fn node_count_and_depth() {
        let leaf = Proof::leaf(
            goal("L", "R"),
            Rule::Axiom {
                axiom: "A1".into(),
                swapped: false,
            },
        );
        let root = Proof {
            goal: goal("L.L", "L.R"),
            rule: Rule::HeadPeel { field: "L".into() },
            children: vec![leaf],
        };
        assert_eq!(root.node_count(), 2);
        assert_eq!(root.depth(), 2);
    }

    #[test]
    fn axioms_used_deduplicates() {
        let leaf = |ax: &str| {
            Proof::leaf(
                goal("L", "R"),
                Rule::Axiom {
                    axiom: ax.into(),
                    swapped: false,
                },
            )
        };
        let root = Proof {
            goal: goal("L.L", "L.R"),
            rule: Rule::AltSplit,
            children: vec![leaf("A1"), leaf("A1"), leaf("A3")],
        };
        assert_eq!(root.axioms_used(), vec!["A1".to_owned(), "A3".to_owned()]);
    }

    #[test]
    fn display_contains_goal_and_axiom() {
        let p = Proof::leaf(
            goal("L", "R"),
            Rule::Axiom {
                axiom: "A1".into(),
                swapped: false,
            },
        );
        let s = p.to_string();
        assert!(s.contains("forall x, x.L <> x.R"));
        assert!(s.contains("by axiom A1"));
    }
}
