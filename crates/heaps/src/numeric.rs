//! Sparse Gaussian elimination: the `scale` / `factor` / `solve` kernels
//! of §5, instrumented to emit [`apt_parsim::Trace`]s.
//!
//! `factor` follows the paper's five-step pivot loop:
//!
//! ```text
//! for each successive row R in M
//! { compute fillin heuristic for each elem in SM;   // read-only
//!   search SM for best pivot p;                     // read-only
//!   adjust M to bring p into pivot position;        // inherently sequential
//!   add fillins to SM;                              // structural writes
//!   perform elimination on each row of SM; }        // data writes
//! ```
//!
//! Each step emits one [`apt_parsim::Step`] whose tasks are the per-row
//! operation counts actually incurred, and whose `parallel` flag comes
//! from the caller-provided [`LoopClassification`] — i.e. from what the
//! dependence analysis managed to prove. Pivot adjustment is always
//! sequential, exactly the paper's explanation for the sub-linear "full"
//! speedups.
//!
//! The paper's physical row/column swap is realized with permutation
//! vectors (a documented substitution: the list-splice cost of the swap is
//! still charged to the sequential `adjust` step).

#![allow(clippy::needless_range_loop)] // index couples several arrays

use crate::sparse::SparseMatrix;
use apt_parsim::{Step, Trace};

/// Which of the kernel loops the dependence analysis proved parallel.
///
/// The paper's *partial* analysis only collects access paths in
/// structurally read-only code, so only the heuristic/search/scale/solve
/// loops parallelize; the *full* analysis also handles the structural
/// fillin insertions, additionally parallelizing `fillins` and
/// `eliminate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopClassification {
    /// The fillin-heuristic loop over submatrix rows.
    pub heuristic: bool,
    /// The pivot-search loop over submatrix rows.
    pub search: bool,
    /// The fillin-insertion loop over target rows (structural writes).
    pub fillins: bool,
    /// The per-row elimination loop (data writes).
    pub eliminate: bool,
    /// The scaling loop over rows.
    pub scale: bool,
    /// The substitution inner loops over a column's rows.
    pub solve: bool,
}

impl LoopClassification {
    /// Everything sequential (no dependence analysis at all).
    pub fn sequential() -> LoopClassification {
        LoopClassification {
            heuristic: false,
            search: false,
            fillins: false,
            eliminate: false,
            scale: false,
            solve: false,
        }
    }

    /// The paper's "partial" analysis: structurally read-only loops only.
    pub fn partial() -> LoopClassification {
        LoopClassification {
            heuristic: true,
            search: true,
            fillins: false,
            eliminate: false,
            scale: true,
            solve: true,
        }
    }

    /// The paper's "full" analysis: structural modifications understood.
    pub fn full() -> LoopClassification {
        LoopClassification {
            heuristic: true,
            search: true,
            fillins: true,
            eliminate: true,
            scale: true,
            solve: true,
        }
    }
}

fn step(name: &str, tasks: Vec<u64>, parallel: bool) -> Step {
    if parallel {
        Step::parallel(name, tasks)
    } else {
        Step::sequential(name, tasks)
    }
}

/// Multiplies every element by `s`; returns the task trace (one task per
/// row).
pub fn scale(m: &mut SparseMatrix, s: f64, loops: LoopClassification) -> Trace {
    let mut tasks = Vec::with_capacity(m.n());
    for r in 0..m.n() {
        let ids: Vec<_> = m.iter_row(r).collect();
        for id in &ids {
            *m.elem_val_mut(*id) *= s;
        }
        tasks.push(ids.len() as u64 + 1);
    }
    let mut trace = Trace::new();
    trace.push(step("scale", tasks, loops.scale));
    trace
}

/// The result of a factorization.
#[derive(Debug)]
pub struct FactorResult {
    /// Pivot order: `pivot[k] = (row, col)` eliminated at step `k`.
    pub pivots: Vec<(usize, usize)>,
    /// Number of fillin elements inserted.
    pub fillins: usize,
    /// The instrumented task trace.
    pub trace: Trace,
}

/// In-place LU factorization with Markowitz pivoting on the orthogonal
/// lists. After return the matrix holds both factors: multipliers (L,
/// unit diagonal implied) in the pivot columns below the pivot, U on and
/// above.
///
/// # Panics
///
/// Panics if the matrix is structurally or numerically singular.
pub fn factor(m: &mut SparseMatrix, loops: LoopClassification) -> FactorResult {
    let n = m.n();
    let mut trace = Trace::new();
    let mut pivots = Vec::with_capacity(n);
    let mut fillins = 0usize;
    // Active (not yet pivoted) rows/cols.
    let mut row_active = vec![true; n];
    let mut col_active = vec![true; n];

    for _k in 0..n {
        // Step 1: fillin heuristic — Markowitz count for every active
        // element; one task per active row.
        let mut heur_tasks = Vec::new();
        let mut best: Option<(usize, usize, f64, u64)> = None; // row, col, val, score
        let mut row_counts = vec![0u64; n];
        let mut col_counts = vec![0u64; n];
        for r in 0..n {
            if !row_active[r] {
                continue;
            }
            for id in m.iter_row(r) {
                let e = m.elem(id);
                if col_active[e.col] {
                    row_counts[r] += 1;
                    col_counts[e.col] += 1;
                }
            }
        }
        for r in 0..n {
            if !row_active[r] {
                continue;
            }
            heur_tasks.push(row_counts[r] + 1);
        }
        trace.push(step("heuristic", heur_tasks, loops.heuristic));

        // Step 2: pivot search — minimize (r-1)(c-1), numerically guarded;
        // one task per active row.
        let mut search_tasks = Vec::new();
        for r in 0..n {
            if !row_active[r] {
                continue;
            }
            let mut work = 1u64;
            // Largest magnitude in the row among active cols, for the
            // threshold test.
            let mut row_max = 0.0f64;
            for id in m.iter_row(r) {
                let e = m.elem(id);
                if col_active[e.col] {
                    row_max = row_max.max(e.val.abs());
                }
            }
            for id in m.iter_row(r) {
                let e = m.elem(id);
                work += 1;
                if !col_active[e.col] || e.val == 0.0 {
                    continue;
                }
                if e.val.abs() < 1e-3 * row_max {
                    continue; // numerically unacceptable pivot
                }
                let score = (row_counts[r] - 1) * (col_counts[e.col] - 1);
                let better = match &best {
                    None => true,
                    Some((_, _, bv, bs)) => score < *bs || (score == *bs && e.val.abs() > bv.abs()),
                };
                if better {
                    best = Some((r, e.col, e.val, score));
                }
            }
            search_tasks.push(work);
        }
        trace.push(step("search", search_tasks, loops.search));

        let (pr, pc, pval, _) = best.expect("matrix is singular: no acceptable pivot");
        assert!(pval != 0.0, "matrix is numerically singular");

        // Step 3: adjust — bring the pivot into position. Realized with
        // permutation bookkeeping; the list-splice work the paper's code
        // performs is charged here, proportional to the pivot row and
        // column lengths. Always sequential.
        let adjust_cost = (m.row_len(pr) + m.col_len(pc) + 2) as u64;
        trace.push(Step::sequential("adjust", vec![adjust_cost]));
        pivots.push((pr, pc));
        row_active[pr] = false;
        col_active[pc] = false;

        // Target rows: active rows with an element in the pivot column.
        let targets: Vec<usize> = m
            .iter_col(pc)
            .map(|id| m.elem(id).row)
            .filter(|&r| row_active[r] && m.get(r, pc) != 0.0)
            .collect();
        // Pivot row pattern among active columns.
        let pivot_pattern: Vec<(usize, f64)> = m
            .iter_row(pr)
            .map(|id| (m.elem(id).col, m.elem(id).val))
            .filter(|&(c, _)| col_active[c])
            .collect();

        // Step 4: add fillins — structural insertions, one task per target
        // row.
        let mut fillin_tasks = Vec::new();
        for &r in &targets {
            let mut work = 1u64;
            for &(c, _) in &pivot_pattern {
                work += 1;
                if m.find(r, c).is_none() {
                    m.set(r, c, 0.0);
                    fillins += 1;
                    work += 2;
                }
            }
            fillin_tasks.push(work);
        }
        trace.push(step("fillins", fillin_tasks, loops.fillins));

        // Step 5: eliminate — pure data updates, one task per target row.
        let mut elim_tasks = Vec::new();
        for &r in &targets {
            let mut work = 2u64;
            let mult = m.get(r, pc) / pval;
            let mid = m.find(r, pc).expect("target row has pivot-col entry");
            *m.elem_val_mut(mid) = mult; // store the L multiplier in place
            for &(c, v) in &pivot_pattern {
                let id = m.find(r, c).expect("fillin phase inserted it");
                *m.elem_val_mut(id) -= mult * v;
                work += 2;
            }
            elim_tasks.push(work);
        }
        trace.push(step("eliminate", elim_tasks, loops.eliminate));
    }

    FactorResult {
        pivots,
        fillins,
        trace,
    }
}

/// Solves `A x = b` using the factors left in `m` by [`factor`]; returns
/// the solution and the task trace (forward then backward substitution).
///
/// # Panics
///
/// Panics if `b.len() != n` or the factorization is missing a pivot.
pub fn solve(
    m: &SparseMatrix,
    pivots: &[(usize, usize)],
    b: &[f64],
    loops: LoopClassification,
) -> (Vec<f64>, Trace) {
    let n = m.n();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(pivots.len(), n, "factorization incomplete");
    let mut trace = Trace::new();

    // Position of each (row, col) pivot in elimination order.
    let mut col_order = vec![0usize; n]; // order index → pivot col
    let mut row_order = vec![0usize; n];
    for (k, &(r, c)) in pivots.iter().enumerate() {
        row_order[k] = r;
        col_order[k] = c;
    }
    let mut row_stage = vec![0usize; n]; // row → its elimination stage
    for (k, &r) in row_order.iter().enumerate() {
        row_stage[r] = k;
    }

    // Forward substitution: y in pivot-row order, applying the stored L
    // multipliers column by column. The updates within one column touch
    // distinct rows, so they form the parallel tasks.
    let mut y = b.to_vec();
    for k in 0..n {
        let (pr, pc) = (row_order[k], col_order[k]);
        let mut tasks = Vec::new();
        for id in m.iter_col(pc) {
            let e = m.elem(id);
            if row_stage[e.row] > k && e.val != 0.0 {
                y[e.row] -= e.val * y[pr];
                tasks.push(2u64);
            }
        }
        trace.push(step("fwd-subst", tasks, loops.solve));
    }

    // Backward substitution in reverse pivot order. The unknown solved at
    // stage k corresponds to pivot column col_order[k]; x is indexed by
    // stage and unpermuted at the end.
    let mut stage_of_col = vec![0usize; n];
    for (k, &c) in col_order.iter().enumerate() {
        stage_of_col[c] = k;
    }
    let mut x = vec![0.0; n];
    for k in (0..n).rev() {
        let (pr, pc) = (row_order[k], col_order[k]);
        let mut acc = y[pr];
        let mut tasks = Vec::new();
        let mut diag = 0.0;
        for id in m.iter_row(pr) {
            let e = m.elem(id);
            if e.col == pc {
                diag = e.val;
            } else {
                // Only U entries (columns eliminated later) contribute.
                let s = stage_of_col[e.col];
                if s > k {
                    acc -= e.val * x[s];
                    tasks.push(2u64);
                }
            }
        }
        assert!(diag != 0.0, "zero pivot in back substitution");
        x[k] = acc / diag;
        trace.push(step("bwd-subst", tasks, loops.solve));
    }

    // The value computed at stage k belongs to unknown col_order[k].
    let mut solution = vec![0.0; n];
    for k in 0..n {
        solution[col_order[k]] = x[k];
    }
    (solution, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;

    fn well_conditioned(n: usize, seed: u64) -> Vec<Vec<f64>> {
        // Deterministic diagonally-dominant sparse-ish matrix.
        let mut a = vec![vec![0.0; n]; n];
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 100.0 - 5.0
        };
        for (i, row) in a.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                if i == j {
                    *cell = 50.0 + next().abs();
                } else if (i + 3 * j) % 4 == 0 {
                    *cell = next();
                }
            }
        }
        a
    }

    #[test]
    fn factor_solve_matches_dense_reference() {
        for seed in 0..4 {
            let a = well_conditioned(12, seed);
            let b: Vec<f64> = (0..12).map(|i| (i as f64) - 3.5).collect();
            let expect = dense::solve_dense(&a, &b).expect("dense solve");
            let mut m = SparseMatrix::from_dense(&a);
            let res = factor(&mut m, LoopClassification::full());
            let (x, _trace) = solve(&m, &res.pivots, &b, LoopClassification::full());
            for (xi, ei) in x.iter().zip(&expect) {
                assert!((xi - ei).abs() < 1e-6, "seed {seed}: {x:?} vs {expect:?}");
            }
        }
    }

    #[test]
    fn residual_is_small() {
        let a = well_conditioned(20, 7);
        let b: Vec<f64> = (0..20).map(|i| (i * i) as f64 % 11.0).collect();
        let mut m = SparseMatrix::from_dense(&a);
        let res = factor(&mut m, LoopClassification::full());
        let (x, _) = solve(&m, &res.pivots, &b, LoopClassification::full());
        // Compute A·x against the ORIGINAL dense matrix.
        for (i, row) in a.iter().enumerate() {
            let ax: f64 = row.iter().zip(&x).map(|(aij, xj)| aij * xj).sum();
            assert!((ax - b[i]).abs() < 1e-6, "row {i}: {ax} vs {}", b[i]);
        }
    }

    #[test]
    fn scale_scales_and_traces() {
        let mut m = SparseMatrix::from_triplets(3, &[(0, 0, 2.0), (1, 2, 4.0), (2, 1, 8.0)]);
        let t = scale(&mut m, 0.5, LoopClassification::partial());
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 2.0);
        assert_eq!(t.steps.len(), 1);
        assert!(t.steps[0].parallel);
        assert_eq!(t.steps[0].tasks.len(), 3);
    }

    #[test]
    fn factor_records_fillins() {
        // An arrow matrix: dense first row/col, diagonal elsewhere —
        // eliminating without reordering would fill everything; Markowitz
        // avoids most of it by picking low-degree pivots first.
        let n = 8;
        let mut tr = vec![(0usize, 0usize, (n + 1) as f64)];
        for i in 1..n {
            tr.push((0, i, 1.0));
            tr.push((i, 0, 1.0));
            tr.push((i, i, (i + 10) as f64));
        }
        let mut m = SparseMatrix::from_triplets(n, &tr);
        let res = factor(&mut m, LoopClassification::full());
        // Markowitz keeps the arrow sparse: far fewer than the worst case
        // (n-1)^2 fillins.
        assert!(res.fillins <= n, "fillins {} too high", res.fillins);
        assert_eq!(res.pivots.len(), n);
    }

    #[test]
    fn trace_step_structure() {
        let a = well_conditioned(10, 3);
        let mut m = SparseMatrix::from_dense(&a);
        let res = factor(&mut m, LoopClassification::partial());
        // Five steps per pivot.
        assert_eq!(res.trace.steps.len(), 5 * 10);
        // Partial: heuristic/search parallel, fillins/eliminate/adjust not.
        for s in &res.trace.steps {
            match s.name.as_str() {
                "heuristic" | "search" => assert!(s.parallel),
                "adjust" | "fillins" | "eliminate" => assert!(!s.parallel),
                other => panic!("unexpected step {other}"),
            }
        }
    }

    #[test]
    fn full_parallelizes_more_than_partial() {
        let a = well_conditioned(24, 11);
        let b: Vec<f64> = vec![1.0; 24];
        let mut mp = SparseMatrix::from_dense(&a);
        let rp = factor(&mut mp, LoopClassification::partial());
        let mut mf = SparseMatrix::from_dense(&a);
        let rf = factor(&mut mf, LoopClassification::full());
        // Identical numerical work…
        assert_eq!(rp.trace.total_work(), rf.trace.total_work());
        let (xp, _) = solve(&mp, &rp.pivots, &b, LoopClassification::partial());
        let (xf, _) = solve(&mf, &rf.pivots, &b, LoopClassification::full());
        for (a, b) in xp.iter().zip(&xf) {
            assert!((a - b).abs() < 1e-12);
        }
        // …but better speedup under the full classification.
        let sp = rp.trace.speedup(7);
        let sf = rf.trace.speedup(7);
        assert!(
            sf > sp,
            "full ({sf:.2}) should outrun partial ({sp:.2}) at 7 PEs"
        );
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_matrix_panics() {
        let mut m = SparseMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 0, 1.0)]);
        let _ = factor(&mut m, LoopClassification::sequential());
    }
}
