//! Sparse matrices as orthogonal lists (Figure 6 of the paper).
//!
//! Every nonzero element sits on two singly-linked lists: its row (linked
//! by `ncolE`, "next column element") and its column (linked by `nrowE`).
//! Row and column headers form linked lists (`nrowH`/`ncolH`) reached from
//! the root via `rows`/`cols`; headers point at their first element via
//! `relem`/`celem`. The twelve Appendix A axioms describe exactly this
//! shape, and [`SparseMatrix::heap_graph`] exports it for model checking.
//!
//! Elements live in an arena ([`ElemId`] indices) — the idiomatic Rust
//! encoding of a pointer structure — and are never physically removed
//! (Gaussian elimination only adds fillins), so ids stay stable.

use apt_axioms::graph::{HeapGraph, NodeId};
use std::fmt;

/// Index of an element in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElemId(pub usize);

/// One nonzero (or explicit fillin) element.
#[derive(Debug, Clone)]
pub struct Elem {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// The stored value.
    pub val: f64,
    /// Next element in the same row (the paper's `ncolE`).
    pub next_in_row: Option<ElemId>,
    /// Next element in the same column (the paper's `nrowE`).
    pub next_in_col: Option<ElemId>,
}

/// An `n × n` sparse matrix stored as orthogonal lists.
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    n: usize,
    elems: Vec<Elem>,
    row_head: Vec<Option<ElemId>>,
    col_head: Vec<Option<ElemId>>,
}

impl SparseMatrix {
    /// An empty `n × n` matrix.
    pub fn new(n: usize) -> SparseMatrix {
        SparseMatrix {
            n,
            elems: Vec::new(),
            row_head: vec![None; n],
            col_head: vec![None; n],
        }
    }

    /// Builds from `(row, col, value)` triplets (later triplets overwrite
    /// earlier ones at the same position).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> SparseMatrix {
        let mut m = SparseMatrix::new(n);
        for &(r, c, v) in triplets {
            m.set(r, c, v);
        }
        m
    }

    /// Builds from a dense row-major matrix, skipping exact zeros.
    pub fn from_dense(rows: &[Vec<f64>]) -> SparseMatrix {
        let n = rows.len();
        let mut m = SparseMatrix::new(n);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "matrix must be square");
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    m.set(r, c, v);
                }
            }
        }
        m
    }

    /// The dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored elements (including explicit zeros/fillins).
    pub fn nnz(&self) -> usize {
        self.elems.len()
    }

    /// Immutable access to an element by id.
    pub fn elem(&self, id: ElemId) -> &Elem {
        &self.elems[id.0]
    }

    /// Mutable access to an element's value.
    pub fn elem_val_mut(&mut self, id: ElemId) -> &mut f64 {
        &mut self.elems[id.0].val
    }

    /// Mutable references to every stored value, in arena order. The
    /// returned references are disjoint, so they can be partitioned across
    /// threads — the concrete counterpart of the scale loop's independence.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut f64> {
        self.elems.iter_mut().map(|e| &mut e.val)
    }

    /// Finds the element at `(row, col)`, walking the row list.
    pub fn find(&self, row: usize, col: usize) -> Option<ElemId> {
        let mut cur = self.row_head[row];
        while let Some(id) = cur {
            let e = &self.elems[id.0];
            if e.col == col {
                return Some(id);
            }
            if e.col > col {
                return None;
            }
            cur = e.next_in_row;
        }
        None
    }

    /// Reads the value at `(row, col)` (0 when absent).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.find(row, col).map_or(0.0, |id| self.elems[id.0].val)
    }

    /// Writes `(row, col) = val`, inserting a new element (keeping the row
    /// and column lists sorted) when absent. Returns the element id.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn set(&mut self, row: usize, col: usize, val: f64) -> ElemId {
        assert!(row < self.n && col < self.n, "index out of range");
        if let Some(id) = self.find(row, col) {
            self.elems[id.0].val = val;
            return id;
        }
        let id = ElemId(self.elems.len());
        self.elems.push(Elem {
            row,
            col,
            val,
            next_in_row: None,
            next_in_col: None,
        });
        // Splice into the row list (sorted by column).
        let mut prev: Option<ElemId> = None;
        let mut cur = self.row_head[row];
        while let Some(c) = cur {
            if self.elems[c.0].col > col {
                break;
            }
            prev = Some(c);
            cur = self.elems[c.0].next_in_row;
        }
        self.elems[id.0].next_in_row = cur;
        match prev {
            Some(p) => self.elems[p.0].next_in_row = Some(id),
            None => self.row_head[row] = Some(id),
        }
        // Splice into the column list (sorted by row).
        let mut prev: Option<ElemId> = None;
        let mut cur = self.col_head[col];
        while let Some(c) = cur {
            if self.elems[c.0].row > row {
                break;
            }
            prev = Some(c);
            cur = self.elems[c.0].next_in_col;
        }
        self.elems[id.0].next_in_col = cur;
        match prev {
            Some(p) => self.elems[p.0].next_in_col = Some(id),
            None => self.col_head[col] = Some(id),
        }
        id
    }

    /// Iterates over row `r`'s elements in column order.
    pub fn iter_row(&self, r: usize) -> RowIter<'_> {
        RowIter {
            m: self,
            cur: self.row_head[r],
        }
    }

    /// Iterates over column `c`'s elements in row order.
    pub fn iter_col(&self, c: usize) -> ColIter<'_> {
        ColIter {
            m: self,
            cur: self.col_head[c],
        }
    }

    /// Number of stored elements in row `r`.
    pub fn row_len(&self, r: usize) -> usize {
        self.iter_row(r).count()
    }

    /// Number of stored elements in column `c`.
    pub fn col_len(&self, c: usize) -> usize {
        self.iter_col(c).count()
    }

    /// Converts to a dense row-major matrix.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.n]; self.n];
        for e in &self.elems {
            out[e.row][e.col] = e.val;
        }
        out
    }

    /// Exports the structure as a labeled heap graph with the Figure 6
    /// shape (root, header lists, element lists), suitable for checking
    /// the Appendix A axioms.
    pub fn heap_graph(&self) -> (HeapGraph, NodeId) {
        let mut g = HeapGraph::new();
        let root = g.add_node();
        let row_headers: Vec<NodeId> = (0..self.n).map(|_| g.add_node()).collect();
        let col_headers: Vec<NodeId> = (0..self.n).map(|_| g.add_node()).collect();
        let elem_nodes: Vec<NodeId> = self.elems.iter().map(|_| g.add_node()).collect();

        if let Some(&first) = row_headers.first() {
            g.set_edge(root, "rows", first);
        }
        if let Some(&first) = col_headers.first() {
            g.set_edge(root, "cols", first);
        }
        for w in row_headers.windows(2) {
            g.set_edge(w[0], "nrowH", w[1]);
        }
        for w in col_headers.windows(2) {
            g.set_edge(w[0], "ncolH", w[1]);
        }
        for (r, &head) in self.row_head.iter().enumerate() {
            if let Some(id) = head {
                g.set_edge(row_headers[r], "relem", elem_nodes[id.0]);
            }
        }
        for (c, &head) in self.col_head.iter().enumerate() {
            if let Some(id) = head {
                g.set_edge(col_headers[c], "celem", elem_nodes[id.0]);
            }
        }
        for (i, e) in self.elems.iter().enumerate() {
            if let Some(nr) = e.next_in_row {
                g.set_edge(elem_nodes[i], "ncolE", elem_nodes[nr.0]);
            }
            if let Some(nc) = e.next_in_col {
                g.set_edge(elem_nodes[i], "nrowE", elem_nodes[nc.0]);
            }
        }
        (g, root)
    }
}

/// Iterator over a row's elements.
#[derive(Debug)]
pub struct RowIter<'a> {
    m: &'a SparseMatrix,
    cur: Option<ElemId>,
}

impl Iterator for RowIter<'_> {
    type Item = ElemId;

    fn next(&mut self) -> Option<ElemId> {
        let id = self.cur?;
        self.cur = self.m.elems[id.0].next_in_row;
        Some(id)
    }
}

/// Iterator over a column's elements.
#[derive(Debug)]
pub struct ColIter<'a> {
    m: &'a SparseMatrix,
    cur: Option<ElemId>,
}

impl Iterator for ColIter<'_> {
    type Item = ElemId;

    fn next(&mut self) -> Option<ElemId> {
        let id = self.cur?;
        self.cur = self.m.elems[id.0].next_in_col;
        Some(id)
    }
}

impl fmt::Display for SparseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in self.to_dense() {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:8.3}")).collect();
            writeln!(f, "[{}]", cells.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_axioms::{adds, check::check_set};

    fn example() -> SparseMatrix {
        // The 4×4 example shape of Figure 6 (values arbitrary).
        SparseMatrix::from_triplets(
            4,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
                (2, 3, 6.0),
                (3, 1, 7.0),
                (3, 3, 8.0),
            ],
        )
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = example();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
        m.set(0, 2, 9.0);
        assert_eq!(m.get(0, 2), 9.0);
        assert_eq!(m.nnz(), 8);
        m.set(0, 1, 1.5); // insertion in the middle of row 0
        assert_eq!(m.nnz(), 9);
        assert_eq!(m.get(0, 1), 1.5);
    }

    #[test]
    fn rows_sorted_by_column() {
        let mut m = SparseMatrix::new(3);
        m.set(0, 2, 1.0);
        m.set(0, 0, 2.0);
        m.set(0, 1, 3.0);
        let cols: Vec<usize> = m.iter_row(0).map(|id| m.elem(id).col).collect();
        assert_eq!(cols, vec![0, 1, 2]);
    }

    #[test]
    fn cols_sorted_by_row() {
        let mut m = SparseMatrix::new(3);
        m.set(2, 1, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 1, 3.0);
        let rows: Vec<usize> = m.iter_col(1).map(|id| m.elem(id).row).collect();
        assert_eq!(rows, vec![0, 1, 2]);
    }

    #[test]
    fn dense_roundtrip() {
        let m = example();
        let d = m.to_dense();
        let m2 = SparseMatrix::from_dense(&d);
        assert_eq!(m2.to_dense(), d);
        assert_eq!(m2.nnz(), m.nnz());
    }

    #[test]
    fn row_col_lengths() {
        let m = example();
        assert_eq!(m.row_len(2), 3);
        assert_eq!(m.col_len(0), 2);
        assert_eq!(m.row_len(1), 1);
    }

    #[test]
    fn heap_graph_satisfies_appendix_a_axioms() {
        let m = example();
        let (g, _root) = m.heap_graph();
        let axioms = adds::sparse_matrix_axioms();
        assert_eq!(check_set(&g, &axioms), Ok(()));
    }

    #[test]
    fn heap_graph_axioms_hold_after_insertions() {
        let mut m = example();
        // Simulate fillin insertions, then re-check the structure.
        m.set(1, 0, 0.5);
        m.set(3, 2, 0.25);
        let (g, _root) = m.heap_graph();
        assert_eq!(check_set(&g, &adds::sparse_matrix_axioms()), Ok(()));
    }

    #[test]
    fn heap_graph_walks_match_lists() {
        let m = example();
        let (g, root) = m.heap_graph();
        // root.rows.relem walks to row 0's first element.
        let rows = apt_regex::Symbol::intern("rows");
        let relem = apt_regex::Symbol::intern("relem");
        let first = g.walk(root, &[rows, relem]).expect("row 0 nonempty");
        // That vertex's ncolE chain has row_len(0) vertices total.
        let chain = g.targets(first, &apt_regex::parse("ncolE*").unwrap());
        assert_eq!(chain.len(), m.row_len(0));
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn set_out_of_range_panics() {
        let mut m = SparseMatrix::new(2);
        m.set(2, 0, 1.0);
    }
}
