//! Linked lists: singly, doubly, and circular variants.
//!
//! The paper's Figure 1 motivates the whole problem with a linked-list
//! update loop; these arena lists provide concrete instances for the
//! examples and for axiom model checking (listness `∀p<>q, p.next <>
//! q.next`, acyclicity, and the doubly-linked cycle law `next.prev = ε`).

#![allow(clippy::needless_range_loop)] // index couples several arrays

use apt_axioms::graph::{HeapGraph, NodeId as GraphNode};

/// Index of a list cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub usize);

/// The list shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListKind {
    /// `next` only, nil-terminated.
    Singly,
    /// `next`/`prev`, nil-terminated.
    Doubly,
    /// `next`/`prev`, last cell links back to the first.
    CircularDoubly,
}

/// One cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Next cell.
    pub next: Option<CellId>,
    /// Previous cell (doubly-linked variants).
    pub prev: Option<CellId>,
    /// Payload.
    pub data: f64,
}

/// An arena-allocated linked list.
#[derive(Debug, Clone)]
pub struct List {
    kind: ListKind,
    cells: Vec<Cell>,
    head: Option<CellId>,
}

impl List {
    /// Builds a list of `len` cells with data `0, 1, 2, …`.
    pub fn build(kind: ListKind, len: usize) -> List {
        let mut cells: Vec<Cell> = (0..len)
            .map(|i| Cell {
                next: None,
                prev: None,
                data: i as f64,
            })
            .collect();
        for i in 0..len {
            if i + 1 < len {
                cells[i].next = Some(CellId(i + 1));
            }
            if matches!(kind, ListKind::Doubly | ListKind::CircularDoubly) && i > 0 {
                cells[i].prev = Some(CellId(i - 1));
            }
        }
        if kind == ListKind::CircularDoubly && len > 0 {
            cells[len - 1].next = Some(CellId(0));
            cells[0].prev = Some(CellId(len - 1));
        }
        List {
            kind,
            cells,
            head: if len > 0 { Some(CellId(0)) } else { None },
        }
    }

    /// The list shape.
    pub fn kind(&self) -> ListKind {
        self.kind
    }

    /// The head cell.
    pub fn head(&self) -> Option<CellId> {
        self.head
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the list has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Shared access to a cell.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0]
    }

    /// Mutable access to a cell's payload.
    pub fn data_mut(&mut self, id: CellId) -> &mut f64 {
        &mut self.cells[id.0].data
    }

    /// Iterates from the head following `next`, visiting each cell once.
    pub fn iter(&self) -> ListIter<'_> {
        ListIter {
            list: self,
            cur: self.head,
            seen: 0,
        }
    }

    /// Exports as a labeled heap graph (fields `next`, `prev`).
    pub fn heap_graph(&self) -> (HeapGraph, Option<GraphNode>) {
        let mut g = HeapGraph::new();
        let ids: Vec<GraphNode> = self.cells.iter().map(|_| g.add_node()).collect();
        for (i, c) in self.cells.iter().enumerate() {
            if let Some(n) = c.next {
                g.set_edge(ids[i], "next", ids[n.0]);
            }
            if let Some(p) = c.prev {
                g.set_edge(ids[i], "prev", ids[p.0]);
            }
        }
        (g, self.head.map(|h| ids[h.0]))
    }
}

/// Iterator over a list's cells (bounded to one lap on circular lists).
#[derive(Debug)]
pub struct ListIter<'a> {
    list: &'a List,
    cur: Option<CellId>,
    seen: usize,
}

impl Iterator for ListIter<'_> {
    type Item = CellId;

    fn next(&mut self) -> Option<CellId> {
        if self.seen >= self.list.len() {
            return None;
        }
        let id = self.cur?;
        self.seen += 1;
        self.cur = self.list.cell(id).next;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_axioms::{check::check_set, AxiomSet};

    fn singly_axioms() -> AxiomSet {
        AxiomSet::parse(
            "A1: forall p <> q, p.next <> q.next\n\
             A2: forall p, p.next+ <> p.eps",
        )
        .unwrap()
    }

    #[test]
    fn build_and_iterate() {
        let l = List::build(ListKind::Singly, 5);
        let data: Vec<f64> = l.iter().map(|id| l.cell(id).data).collect();
        assert_eq!(data, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn singly_list_satisfies_list_axioms() {
        let l = List::build(ListKind::Singly, 6);
        let (g, _) = l.heap_graph();
        assert_eq!(check_set(&g, &singly_axioms()), Ok(()));
    }

    #[test]
    fn circular_list_violates_acyclicity_but_keeps_listness() {
        let l = List::build(ListKind::CircularDoubly, 4);
        let (g, _) = l.heap_graph();
        // Listness still holds…
        let listness = AxiomSet::parse("forall p <> q, p.next <> q.next").unwrap();
        assert_eq!(check_set(&g, &listness), Ok(()));
        // …acyclicity does not.
        assert!(check_set(&g, &singly_axioms()).is_err());
    }

    #[test]
    fn circular_doubly_satisfies_cycle_law() {
        let l = List::build(ListKind::CircularDoubly, 5);
        let (g, _) = l.heap_graph();
        let law = AxiomSet::parse(
            "C1: forall p, p.next.prev = p.eps\n\
             C2: forall p, p.prev.next = p.eps",
        )
        .unwrap();
        assert_eq!(check_set(&g, &law), Ok(()));
    }

    #[test]
    fn doubly_linked_prev_matches_next() {
        let l = List::build(ListKind::Doubly, 4);
        for id in l.iter() {
            if let Some(n) = l.cell(id).next {
                assert_eq!(l.cell(n).prev, Some(id));
            }
        }
    }

    #[test]
    fn circular_iteration_is_bounded() {
        let l = List::build(ListKind::CircularDoubly, 3);
        assert_eq!(l.iter().count(), 3);
    }

    #[test]
    fn empty_list() {
        let l = List::build(ListKind::Singly, 0);
        assert!(l.is_empty());
        assert_eq!(l.iter().count(), 0);
        assert_eq!(l.head(), None);
    }
}
