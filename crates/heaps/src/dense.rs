//! Dense Gaussian elimination — the reference implementation the sparse
//! kernels are validated against.

#![allow(clippy::needless_range_loop)] // index couples several arrays

/// Solves `A x = b` by dense LU with partial pivoting. Returns `None` when
/// the matrix is (near-)singular.
///
/// ```
/// let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
/// let x = apt_heaps::dense::solve_dense(&a, &[3.0, 4.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
pub fn solve_dense(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = a.len();
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut m: Vec<Vec<f64>> = a.to_vec();
    let mut rhs = b.to_vec();

    for k in 0..n {
        // Partial pivot.
        let (pivot_row, pivot_val) = (k..n)
            .map(|r| (r, m[r][k].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))?;
        if pivot_val < 1e-12 {
            return None;
        }
        m.swap(k, pivot_row);
        rhs.swap(k, pivot_row);
        for r in k + 1..n {
            let mult = m[r][k] / m[k][k];
            if mult == 0.0 {
                continue;
            }
            for c in k..n {
                m[r][c] -= mult * m[k][c];
            }
            rhs[r] -= mult * rhs[k];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for k in (0..n).rev() {
        let mut acc = rhs[k];
        for c in k + 1..n {
            acc -= m[k][c] * x[c];
        }
        x[k] = acc / m[k][k];
    }
    Some(x)
}

/// Dense matrix–vector product.
pub fn matvec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    a.iter()
        .map(|row| row.iter().zip(x).map(|(aij, xj)| aij * xj).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_dense(&a, &[3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_with_pivoting() {
        // Leading zero forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_dense(&a, &[5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn rejects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert_eq!(solve_dense(&a, &[1.0, 2.0]), None);
    }

    #[test]
    fn residual_check_on_random_system() {
        let a = vec![
            vec![10.0, 1.0, 2.0],
            vec![-1.0, 8.0, 0.5],
            vec![3.0, -2.0, 12.0],
        ];
        let b = vec![1.0, 2.0, 3.0];
        let x = solve_dense(&a, &b).unwrap();
        for (ri, bi) in matvec(&a, &x).iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }
}
