//! Two-dimensional range trees: a leaf-linked tree of leaf-linked trees.
//!
//! §3.1 of the paper names "two-dimensional range trees (a leaf-linked
//! tree of leaf-linked trees, used in computational geometry \[PS85\])" as a
//! structure its axioms describe. The x-dimension is a leaf-linked binary
//! tree over the points' x-coordinates; every x-leaf owns, via `sub`, a
//! y-dimension leaf-linked tree over its bucket of points.

use crate::llt::{LeafLinkedTree, NodeId};
use apt_axioms::graph::HeapGraph;
use apt_axioms::AxiomSet;

/// A 2-D range tree over a point set.
#[derive(Debug, Clone)]
pub struct RangeTree2D {
    xtree: LeafLinkedTree,
    /// One y-tree per x-leaf (same order as `xtree.leaves()`).
    ytrees: Vec<LeafLinkedTree>,
    /// The x-coordinate stored at each x-leaf.
    xs: Vec<f64>,
    /// Points per x-leaf bucket, sorted by y.
    buckets: Vec<Vec<(f64, f64)>>,
}

impl RangeTree2D {
    /// Builds a range tree over `points`; x-coordinates are bucketed into
    /// `2^depth` leaves by rank.
    pub fn build(points: &[(f64, f64)], depth: usize) -> RangeTree2D {
        let mut sorted: Vec<(f64, f64)> = points.to_vec();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let xtree = LeafLinkedTree::complete(depth);
        let leaf_count = 1 << depth;
        let mut buckets: Vec<Vec<(f64, f64)>> = vec![Vec::new(); leaf_count];
        for (i, p) in sorted.iter().enumerate() {
            let b = i * leaf_count / sorted.len().max(1);
            buckets[b.min(leaf_count - 1)].push(*p);
        }
        for b in &mut buckets {
            b.sort_by(|a, c| a.1.total_cmp(&c.1));
        }
        let xs: Vec<f64> = buckets
            .iter()
            .map(|b| b.first().map_or(f64::INFINITY, |p| p.0))
            .collect();
        let ytrees: Vec<LeafLinkedTree> = buckets
            .iter()
            .map(|b| {
                // Smallest complete tree with ≥ bucket-size leaves.
                let mut d = 0;
                while (1 << d) < b.len().max(1) {
                    d += 1;
                }
                let mut t = LeafLinkedTree::complete(d);
                let leaves = t.leaves();
                for (leaf, p) in leaves.iter().zip(b) {
                    *t.data_mut(*leaf) = p.1;
                }
                t
            })
            .collect();
        RangeTree2D {
            xtree,
            ytrees,
            xs,
            buckets,
        }
    }

    /// The x-dimension tree.
    pub fn xtree(&self) -> &LeafLinkedTree {
        &self.xtree
    }

    /// The y-tree owned by x-leaf `i`.
    pub fn ytree(&self, i: usize) -> &LeafLinkedTree {
        &self.ytrees[i]
    }

    /// Number of x-leaves.
    pub fn leaf_count(&self) -> usize {
        self.ytrees.len()
    }

    /// Counts points in the axis-aligned query box (inclusive), walking
    /// the x-leaf chain and each bucket's y-list — the access pattern whose
    /// independence the axioms certify.
    pub fn count_in_box(&self, x0: f64, x1: f64, y0: f64, y1: f64) -> usize {
        let mut count = 0;
        for bucket in &self.buckets {
            for &(x, y) in bucket {
                if x >= x0 && x <= x1 && y >= y0 && y <= y1 {
                    count += 1;
                }
            }
        }
        count
    }

    /// Naive count over the original points (validation oracle).
    pub fn count_naive(points: &[(f64, f64)], x0: f64, x1: f64, y0: f64, y1: f64) -> usize {
        points
            .iter()
            .filter(|&&(x, y)| x >= x0 && x <= x1 && y >= y0 && y <= y1)
            .count()
    }

    /// The first x-coordinate of each bucket (diagnostics).
    pub fn bucket_min_xs(&self) -> &[f64] {
        &self.xs
    }

    /// Exports the whole two-level structure as one heap graph: x-fields
    /// `Lx`/`Rx`/`Nx`, y-fields `Ly`/`Ry`/`Ny`, and `sub` from each x-leaf
    /// to its y-root.
    pub fn heap_graph(&self) -> HeapGraph {
        let mut g = HeapGraph::new();
        // x-tree nodes
        let x_ids: Vec<_> = (0..self.xtree.len()).map(|_| g.add_node()).collect();
        for i in 0..self.xtree.len() {
            let n = self.xtree.node(NodeId(i));
            if let Some(l) = n.left {
                g.set_edge(x_ids[i], "Lx", x_ids[l.0]);
            }
            if let Some(r) = n.right {
                g.set_edge(x_ids[i], "Rx", x_ids[r.0]);
            }
            if let Some(nx) = n.next {
                g.set_edge(x_ids[i], "Nx", x_ids[nx.0]);
            }
        }
        // y-trees, one per x-leaf
        let x_leaves = self.xtree.leaves();
        for (leaf_idx, ytree) in self.ytrees.iter().enumerate() {
            let y_ids: Vec<_> = (0..ytree.len()).map(|_| g.add_node()).collect();
            for i in 0..ytree.len() {
                let n = ytree.node(NodeId(i));
                if let Some(l) = n.left {
                    g.set_edge(y_ids[i], "Ly", y_ids[l.0]);
                }
                if let Some(r) = n.right {
                    g.set_edge(y_ids[i], "Ry", y_ids[r.0]);
                }
                if let Some(nx) = n.next {
                    g.set_edge(y_ids[i], "Ny", y_ids[nx.0]);
                }
            }
            if let Some(yroot) = ytree.root() {
                g.set_edge(x_ids[x_leaves[leaf_idx].0], "sub", y_ids[yroot.0]);
            }
        }
        g
    }
}

/// The axiom set describing a 2-D range tree: Figure 3-style axioms per
/// dimension plus injectivity of `sub` and global acyclicity.
pub fn range_tree_axioms() -> AxiomSet {
    AxiomSet::parse(
        "X1: forall p, p.Lx <> p.Rx\n\
         X2: forall p <> q, p.(Lx|Rx) <> q.(Lx|Rx)\n\
         X3: forall p <> q, p.Nx <> q.Nx\n\
         Y1: forall p, p.Ly <> p.Ry\n\
         Y2: forall p <> q, p.(Ly|Ry) <> q.(Ly|Ry)\n\
         Y3: forall p <> q, p.Ny <> q.Ny\n\
         S1: forall p <> q, p.sub <> q.sub\n\
         S2: forall p, p.(Lx|Rx|Nx)+ <> p.sub.(Ly|Ry|Ny)*\n\
         S3: forall p <> q, p.sub.(Ly|Ry|Ny)* <> q.sub.(Ly|Ry|Ny)*\n\
         G1: forall p, p.(Lx|Rx|Nx|Ly|Ry|Ny|sub)+ <> p.eps",
    )
    .expect("range tree axioms parse")
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_axioms::check::check_set;

    fn points() -> Vec<(f64, f64)> {
        (0..16)
            .map(|i| ((i * 7 % 16) as f64, (i * 3 % 16) as f64))
            .collect()
    }

    #[test]
    fn counts_match_naive_oracle() {
        let pts = points();
        let t = RangeTree2D::build(&pts, 2);
        for (x0, x1, y0, y1) in [
            (0.0, 15.0, 0.0, 15.0),
            (2.0, 9.0, 1.0, 8.0),
            (5.0, 5.0, 0.0, 15.0),
            (10.0, 2.0, 0.0, 1.0), // empty box
        ] {
            assert_eq!(
                t.count_in_box(x0, x1, y0, y1),
                RangeTree2D::count_naive(&pts, x0, x1, y0, y1),
                "box ({x0},{x1},{y0},{y1})"
            );
        }
    }

    #[test]
    fn heap_graph_satisfies_range_tree_axioms() {
        let t = RangeTree2D::build(&points(), 2);
        let g = t.heap_graph();
        assert_eq!(check_set(&g, &range_tree_axioms()), Ok(()));
    }

    #[test]
    fn every_xleaf_owns_a_ytree() {
        let t = RangeTree2D::build(&points(), 2);
        assert_eq!(t.leaf_count(), 4);
        for i in 0..t.leaf_count() {
            assert!(!t.ytree(i).is_empty());
        }
    }

    #[test]
    fn handles_fewer_points_than_leaves() {
        let pts = vec![(1.0, 2.0), (3.0, 4.0)];
        let t = RangeTree2D::build(&pts, 3);
        assert_eq!(t.count_in_box(0.0, 5.0, 0.0, 5.0), 2);
        let g = t.heap_graph();
        assert_eq!(check_set(&g, &range_tree_axioms()), Ok(()));
    }
}
