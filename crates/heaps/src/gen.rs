//! Random structure generators for the soundness property tests.
//!
//! Each generator produces heaps guaranteed (by construction) to satisfy a
//! known axiom family, so the test suite can check the central soundness
//! invariant: whenever APT answers **No**, the two access paths never meet
//! on any generated heap.

use crate::sparse::SparseMatrix;
use apt_axioms::graph::{HeapGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random binary tree over `L`/`R` with `n` nodes (uniform attachment),
/// returning the graph and its root.
pub fn random_binary_tree(n: usize, seed: u64) -> (HeapGraph, NodeId) {
    assert!(n > 0, "tree needs at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = HeapGraph::new();
    let root = g.add_node();
    // Nodes with a free L or R slot.
    let mut open: Vec<(NodeId, bool, bool)> = vec![(root, true, true)];
    for _ in 1..n {
        let idx = rng.gen_range(0..open.len());
        let (parent, l_free, r_free) = open[idx];
        let child = g.add_node();
        let took_left = if l_free && r_free {
            rng.gen_bool(0.5)
        } else {
            l_free
        };
        if took_left {
            g.set_edge(parent, "L", child);
            open[idx].1 = false;
        } else {
            g.set_edge(parent, "R", child);
            open[idx].2 = false;
        }
        if !open[idx].1 && !open[idx].2 {
            open.swap_remove(idx);
        }
        open.push((child, true, true));
    }
    (g, root)
}

/// A random leaf-linked binary tree: a random tree whose leaves are
/// threaded left-to-right with `N`.
pub fn random_leaf_linked_tree(n: usize, seed: u64) -> (HeapGraph, NodeId) {
    let (mut g, root) = random_binary_tree(n, seed);
    let leaves = leaves_in_order(&g, root);
    for w in leaves.windows(2) {
        g.set_edge(w[0], "N", w[1]);
    }
    (g, root)
}

fn leaves_in_order(g: &HeapGraph, root: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    fn walk(g: &HeapGraph, v: NodeId, out: &mut Vec<NodeId>) {
        let l = g.edge(v, "L");
        let r = g.edge(v, "R");
        if l.is_none() && r.is_none() {
            out.push(v);
            return;
        }
        if let Some(l) = l {
            walk(g, l, out);
        }
        if let Some(r) = r {
            walk(g, r, out);
        }
    }
    walk(g, root, &mut out);
    out
}

/// A random nil-terminated singly linked list of `n` cells over `next`.
///
/// The seed permutes the *allocation order* of the cells: the list shape
/// is always a chain, but node ids land in seed-dependent positions, so
/// id-sensitive consumers (witness decoding, snapshot codecs) are
/// exercised against non-identity layouts.
pub fn random_list(n: usize, seed: u64) -> (HeapGraph, NodeId) {
    assert!(n > 0, "list needs at least one cell");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = HeapGraph::new();
    let mut cells = g.add_nodes(n);
    // Fisher–Yates over the allocated ids: position i in the chain maps
    // to a seed-chosen node id.
    for i in (1..cells.len()).rev() {
        let j = rng.gen_range(0..=i);
        cells.swap(i, j);
    }
    for w in cells.windows(2) {
        g.set_edge(w[0], "next", w[1]);
    }
    (g, cells[0])
}

/// A random sparse matrix with `n` rows/columns, a full diagonal, and
/// roughly `extra` additional off-diagonal nonzeros placed within a narrow
/// band around the diagonal — the locality structure of circuit matrices
/// (a flat uniform scatter would fill in catastrophically under
/// elimination, which real netlists do not).
pub fn random_sparse_matrix(n: usize, extra: usize, seed: u64) -> SparseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = SparseMatrix::new(n);
    for i in 0..n {
        // Strong diagonal keeps factorization numerically boring.
        m.set(i, i, 100.0 + rng.gen_range(0.0..10.0));
    }
    if n < 2 {
        return m;
    }
    let band = (2 * extra / n).max(2).min(n - 1) as i64;
    for k in 0..extra {
        let r = rng.gen_range(0..n) as i64;
        // Mostly local coupling, with ~3% long-range entries
        // (power/clock nets span the whole circuit).
        let c = if k % 33 == 0 {
            rng.gen_range(0..n) as i64
        } else {
            r + rng.gen_range(-band..=band)
        };
        if c != r && c >= 0 && (c as usize) < n {
            m.set(r as usize, c as usize, rng.gen_range(-2.0..2.0));
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_axioms::{adds, check::check_set, AxiomSet};

    #[test]
    fn random_trees_satisfy_tree_axioms() {
        let axioms = AxiomSet::parse(
            "A1: forall p, p.L <> p.R\n\
             A2: forall p <> q, p.(L|R) <> q.(L|R)\n\
             A4: forall p, p.(L|R)+ <> p.eps",
        )
        .unwrap();
        for seed in 0..10 {
            let (g, _) = random_binary_tree(12, seed);
            assert_eq!(check_set(&g, &axioms), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn random_llts_satisfy_figure3_axioms() {
        for seed in 0..10 {
            let (g, _) = random_leaf_linked_tree(15, seed);
            assert_eq!(
                check_set(&g, &adds::leaf_linked_tree_axioms()),
                Ok(()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn random_lists_satisfy_list_axioms() {
        let axioms = AxiomSet::parse(
            "A1: forall p <> q, p.next <> q.next\n\
             A2: forall p, p.next+ <> p.eps",
        )
        .unwrap();
        for seed in 0..10 {
            let (g, _) = random_list(20, seed);
            assert_eq!(check_set(&g, &axioms), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn random_list_consumes_its_seed() {
        // Different seeds must place node ids differently (the chain
        // shape is fixed, the allocation order is not).
        let heads: std::collections::BTreeSet<usize> =
            (0..16).map(|seed| random_list(20, seed).1 .0).collect();
        assert!(
            heads.len() > 1,
            "seed ignored: every list head allocated at the same id"
        );
        // And the same seed must reproduce the same heap exactly.
        let (a, ha) = random_list(20, 7);
        let (b, hb) = random_list(20, 7);
        assert_eq!(ha, hb, "seed 7");
        assert_eq!(a.to_edge_list(), b.to_edge_list(), "seed 7");
    }

    #[test]
    fn random_sparse_matrices_satisfy_appendix_a() {
        for seed in 0..5 {
            let m = random_sparse_matrix(6, 8, seed);
            let (g, _) = m.heap_graph();
            assert_eq!(
                check_set(&g, &adds::sparse_matrix_axioms()),
                Ok(()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = random_sparse_matrix(8, 10, 42).to_dense();
        let b = random_sparse_matrix(8, 10, 42).to_dense();
        assert_eq!(a, b);
    }
}
