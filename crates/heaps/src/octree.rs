//! Octrees for N-body simulation (Barnes–Hut \[BH86\]), the paper's §1
//! motivating application ("octrees are important data structures in
//! computational geometry and N-body simulations").
//!
//! A cubic region is recursively subdivided into eight children (`c0` …
//! `c7`); each internal node caches the total mass and center of mass of
//! its subtree; leaves hold single bodies. The Barnes–Hut force
//! approximation walks the tree, replacing far-away subtrees by their
//! centers of mass (the `theta` criterion).
//!
//! The octree's aliasing axioms are exactly the paper's tree pattern over
//! eight fields ([`octree_axioms`]); force accumulation writes one leaf
//! per body, which is the per-body independence APT certifies.

#![allow(clippy::needless_range_loop)] // index couples several arrays

use apt_axioms::graph::{HeapGraph, NodeId as GraphNode};
use apt_axioms::AxiomSet;

/// A point mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: [f64; 3],
    /// Mass (positive).
    pub mass: f64,
}

/// Index of an octree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// One node: either an internal cell with up to eight children or a leaf
/// holding one body. Every node caches its subtree's mass statistics.
#[derive(Debug, Clone)]
pub struct Node {
    /// Children `c0`–`c7` (by octant).
    pub children: [Option<NodeId>; 8],
    /// The body, for leaves.
    pub body: Option<Body>,
    /// Total mass of the subtree.
    pub mass: f64,
    /// Center of mass of the subtree.
    pub com: [f64; 3],
    /// Cell center.
    center: [f64; 3],
    /// Cell half-width.
    half: f64,
}

impl Node {
    fn empty(center: [f64; 3], half: f64) -> Node {
        Node {
            children: [None; 8],
            body: None,
            mass: 0.0,
            com: [0.0; 3],
            center,
            half,
        }
    }

    /// Whether the node is a leaf (holds a body, no children).
    pub fn is_leaf(&self) -> bool {
        self.children.iter().all(Option::is_none)
    }
}

/// A Barnes–Hut octree.
#[derive(Debug, Clone)]
pub struct Octree {
    nodes: Vec<Node>,
    root: Option<NodeId>,
    /// Leaf node of each inserted body, in insertion order.
    leaf_of_body: Vec<NodeId>,
}

fn octant(center: &[f64; 3], p: &[f64; 3]) -> usize {
    let mut o = 0;
    for d in 0..3 {
        if p[d] >= center[d] {
            o |= 1 << d;
        }
    }
    o
}

fn child_center(center: &[f64; 3], half: f64, o: usize) -> [f64; 3] {
    let q = half / 2.0;
    let mut c = *center;
    for (d, cd) in c.iter_mut().enumerate() {
        *cd += if o & (1 << d) != 0 { q } else { -q };
    }
    c
}

impl Octree {
    /// Builds an octree over `bodies` inside the cube centered at `center`
    /// with half-width `half`.
    ///
    /// # Panics
    ///
    /// Panics if two bodies coincide exactly (subdivision cannot separate
    /// them) or a body lies outside the cube.
    pub fn build(bodies: &[Body], center: [f64; 3], half: f64) -> Octree {
        let mut t = Octree {
            nodes: Vec::new(),
            root: None,
            leaf_of_body: Vec::new(),
        };
        if bodies.is_empty() {
            return t;
        }
        let root = t.push(Node::empty(center, half));
        t.root = Some(root);
        for b in bodies {
            for d in 0..3 {
                assert!(
                    (b.pos[d] - center[d]).abs() <= half,
                    "body outside the root cell"
                );
            }
            let leaf = t.insert(root, *b, 0);
            t.leaf_of_body.push(leaf);
        }
        if let Some(root) = t.root {
            t.summarize(root);
        }
        t
    }

    fn push(&mut self, n: Node) -> NodeId {
        self.nodes.push(n);
        NodeId(self.nodes.len() - 1)
    }

    fn insert(&mut self, at: NodeId, b: Body, depth: usize) -> NodeId {
        assert!(depth < 64, "bodies too close to separate");
        let node = &self.nodes[at.0];
        if node.is_leaf() && node.body.is_none() {
            self.nodes[at.0].body = Some(b);
            return at;
        }
        // Occupied leaf: push the resident body down first.
        if let Some(resident) = self.nodes[at.0].body.take() {
            let (rc, rh) = (self.nodes[at.0].center, self.nodes[at.0].half);
            assert!(
                resident.pos != b.pos,
                "coincident bodies cannot be separated"
            );
            let o = octant(&rc, &resident.pos);
            let child = self.child_or_new(at, o, rc, rh);
            let moved = self.insert(child, resident, depth + 1);
            // The resident body's leaf moved; patch the bookkeeping.
            for l in &mut self.leaf_of_body {
                if *l == at {
                    *l = moved;
                }
            }
        }
        let (c, h) = (self.nodes[at.0].center, self.nodes[at.0].half);
        let o = octant(&c, &b.pos);
        let child = self.child_or_new(at, o, c, h);
        self.insert(child, b, depth + 1)
    }

    fn child_or_new(&mut self, at: NodeId, o: usize, center: [f64; 3], half: f64) -> NodeId {
        if let Some(c) = self.nodes[at.0].children[o] {
            return c;
        }
        let cc = child_center(&center, half, o);
        let id = self.push(Node::empty(cc, half / 2.0));
        self.nodes[at.0].children[o] = Some(id);
        id
    }

    fn summarize(&mut self, at: NodeId) -> (f64, [f64; 3]) {
        let children = self.nodes[at.0].children;
        let mut mass = 0.0;
        let mut weighted = [0.0; 3];
        if let Some(b) = self.nodes[at.0].body {
            mass += b.mass;
            for d in 0..3 {
                weighted[d] += b.mass * b.pos[d];
            }
        }
        for c in children.into_iter().flatten() {
            let (m, com) = self.summarize(c);
            mass += m;
            for d in 0..3 {
                weighted[d] += m * com[d];
            }
        }
        let com = if mass > 0.0 {
            [weighted[0] / mass, weighted[1] / mass, weighted[2] / mass]
        } else {
            self.nodes[at.0].center
        };
        self.nodes[at.0].mass = mass;
        self.nodes[at.0].com = com;
        (mass, com)
    }

    /// The root node.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Shared node access.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// The leaf holding body `i` (insertion order).
    pub fn leaf_of(&self, i: usize) -> NodeId {
        self.leaf_of_body[i]
    }

    /// The Barnes–Hut approximate force on `body`, with opening angle
    /// `theta` (0 = exact tree walk, larger = coarser).
    pub fn force_on(&self, body: &Body, theta: f64) -> [f64; 3] {
        let mut f = [0.0; 3];
        if let Some(root) = self.root {
            self.accumulate(root, body, theta, &mut f);
        }
        f
    }

    fn accumulate(&self, at: NodeId, body: &Body, theta: f64, f: &mut [f64; 3]) {
        let node = &self.nodes[at.0];
        if node.mass == 0.0 {
            return;
        }
        let d = dist(&node.com, &body.pos);
        if d == 0.0 {
            // The node is (or contains only) the body itself at zero
            // distance: descend or skip.
            if node.is_leaf() {
                return;
            }
        }
        let far_enough = node.is_leaf() || (2.0 * node.half) / d < theta;
        if far_enough && d > 0.0 {
            let scale = node.mass * body.mass / (d * d * d);
            for k in 0..3 {
                f[k] += scale * (node.com[k] - body.pos[k]);
            }
        } else {
            if let Some(b) = &node.body {
                let db = dist(&b.pos, &body.pos);
                if db > 0.0 {
                    let scale = b.mass * body.mass / (db * db * db);
                    for k in 0..3 {
                        f[k] += scale * (b.pos[k] - body.pos[k]);
                    }
                }
            }
            for c in node.children.into_iter().flatten() {
                self.accumulate(c, body, theta, f);
            }
        }
    }

    /// The exact pairwise force on `body` from every body in `bodies`
    /// (the O(N²) oracle).
    pub fn direct_force(bodies: &[Body], body: &Body) -> [f64; 3] {
        let mut f = [0.0; 3];
        for b in bodies {
            let d = dist(&b.pos, &body.pos);
            if d > 0.0 {
                let scale = b.mass * body.mass / (d * d * d);
                for k in 0..3 {
                    f[k] += scale * (b.pos[k] - body.pos[k]);
                }
            }
        }
        f
    }

    /// Exports the tree shape as a heap graph with fields `c0`–`c7`.
    pub fn heap_graph(&self) -> (HeapGraph, Option<GraphNode>) {
        let mut g = HeapGraph::new();
        let ids: Vec<GraphNode> = self.nodes.iter().map(|_| g.add_node()).collect();
        for (i, n) in self.nodes.iter().enumerate() {
            for (o, c) in n.children.iter().enumerate() {
                if let Some(c) = c {
                    g.set_edge(ids[i], format!("c{o}").as_str(), ids[c.0]);
                }
            }
        }
        (g, self.root.map(|r| ids[r.0]))
    }
}

fn dist(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    let mut s = 0.0;
    for d in 0..3 {
        s += (a[d] - b[d]) * (a[d] - b[d]);
    }
    s.sqrt()
}

/// The octree aliasing axioms: the eight child fields form a tree
/// (pairwise-sibling disjointness + no shared children) and are acyclic —
/// the Figure 3 pattern at arity eight.
pub fn octree_axioms() -> AxiomSet {
    let fields: Vec<String> = (0..8).map(|o| format!("c{o}")).collect();
    apt_axioms::adds::StructureSpec::new()
        .tree(fields.iter().map(String::as_str))
        .acyclic(fields.iter().map(String::as_str))
        .into_axioms()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_axioms::check::check_set;

    fn bodies(n: usize) -> Vec<Body> {
        (0..n)
            .map(|i| Body {
                pos: [
                    ((i * 37) % 101) as f64 - 50.0,
                    ((i * 53) % 101) as f64 - 50.0,
                    ((i * 71) % 101) as f64 - 50.0,
                ],
                mass: 1.0 + (i % 5) as f64,
            })
            .collect()
    }

    #[test]
    fn builds_and_summarizes_mass() {
        let bs = bodies(32);
        let t = Octree::build(&bs, [0.0; 3], 64.0);
        let root = t.root().unwrap();
        let total: f64 = bs.iter().map(|b| b.mass).sum();
        assert!((t.node(root).mass - total).abs() < 1e-9);
        // center of mass matches the direct computation
        let mut com = [0.0; 3];
        for b in &bs {
            for d in 0..3 {
                com[d] += b.mass * b.pos[d] / total;
            }
        }
        for d in 0..3 {
            assert!((t.node(root).com[d] - com[d]).abs() < 1e-9);
        }
    }

    #[test]
    fn every_body_has_its_own_leaf() {
        let bs = bodies(24);
        let t = Octree::build(&bs, [0.0; 3], 64.0);
        let mut leaves: Vec<NodeId> = (0..bs.len()).map(|i| t.leaf_of(i)).collect();
        leaves.sort();
        leaves.dedup();
        assert_eq!(leaves.len(), bs.len(), "leaves must be distinct");
        for (i, b) in bs.iter().enumerate() {
            assert_eq!(
                t.node(t.leaf_of(i)).body.as_ref().map(|x| x.pos),
                Some(b.pos)
            );
        }
    }

    #[test]
    fn exact_theta_matches_direct_forces() {
        // theta = 0 forces full descent: Barnes–Hut equals direct
        // summation.
        let bs = bodies(20);
        let t = Octree::build(&bs, [0.0; 3], 64.0);
        for b in &bs {
            let bh = t.force_on(b, 0.0);
            let direct = Octree::direct_force(&bs, b);
            for d in 0..3 {
                assert!((bh[d] - direct[d]).abs() < 1e-9, "{bh:?} vs {direct:?}");
            }
        }
    }

    #[test]
    fn coarse_theta_approximates_direct_forces() {
        let bs = bodies(48);
        let t = Octree::build(&bs, [0.0; 3], 64.0);
        for b in bs.iter().take(8) {
            let bh = t.force_on(b, 0.5);
            let direct = Octree::direct_force(&bs, b);
            let mag: f64 = direct.iter().map(|x| x * x).sum::<f64>().sqrt();
            let err: f64 = bh
                .iter()
                .zip(&direct)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            assert!(err <= 0.15 * mag + 1e-12, "err {err} vs magnitude {mag}");
        }
    }

    #[test]
    fn satisfies_octree_axioms() {
        let bs = bodies(40);
        let t = Octree::build(&bs, [0.0; 3], 64.0);
        let (g, _) = t.heap_graph();
        assert_eq!(check_set(&g, &octree_axioms()), Ok(()));
    }

    #[test]
    fn axiom_count_is_tree_pattern_at_arity_8() {
        // C(8,2) sibling axioms + 1 shared-child + 1 acyclicity.
        assert_eq!(octree_axioms().len(), 28 + 2);
    }

    #[test]
    fn empty_tree() {
        let t = Octree::build(&[], [0.0; 3], 1.0);
        assert!(t.is_empty());
        assert_eq!(t.root(), None);
    }

    #[test]
    #[should_panic(expected = "coincident")]
    fn coincident_bodies_panic() {
        let b = Body {
            pos: [1.0, 2.0, 3.0],
            mass: 1.0,
        };
        let _ = Octree::build(&[b, b], [0.0; 3], 8.0);
    }
}
