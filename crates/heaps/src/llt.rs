//! Leaf-linked binary trees (Figure 3 of the paper).
//!
//! A binary tree over `L`/`R` whose leaves are additionally threaded into a
//! list by `N` — the structure used in N-body simulations \[BH86\] and the
//! running example of §3. Arena-allocated, with data payloads, traversals,
//! and a [`HeapGraph`] export for axiom model checking.

use apt_axioms::graph::{HeapGraph, NodeId as GraphNode};

/// Index of a tree node in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// One node of a leaf-linked binary tree.
#[derive(Debug, Clone)]
pub struct Node {
    /// Left child.
    pub left: Option<NodeId>,
    /// Right child.
    pub right: Option<NodeId>,
    /// Next leaf (only set on leaves).
    pub next: Option<NodeId>,
    /// Payload.
    pub data: f64,
}

/// A leaf-linked binary tree.
#[derive(Debug, Clone, Default)]
pub struct LeafLinkedTree {
    nodes: Vec<Node>,
    root: Option<NodeId>,
}

impl LeafLinkedTree {
    /// An empty tree.
    pub fn new() -> LeafLinkedTree {
        LeafLinkedTree::default()
    }

    /// Builds a complete tree of the given depth (`depth = 0` is a single
    /// leaf), leaves linked left-to-right, with data initialized to 0.
    pub fn complete(depth: usize) -> LeafLinkedTree {
        let mut t = LeafLinkedTree::new();
        let root = t.build_complete(depth);
        t.root = Some(root);
        let leaves = t.leaves();
        for w in leaves.windows(2) {
            t.nodes[w[0].0].next = Some(w[1]);
        }
        t
    }

    fn build_complete(&mut self, depth: usize) -> NodeId {
        if depth == 0 {
            return self.push(Node {
                left: None,
                right: None,
                next: None,
                data: 0.0,
            });
        }
        let l = self.build_complete(depth - 1);
        let r = self.build_complete(depth - 1);
        self.push(Node {
            left: Some(l),
            right: Some(r),
            next: None,
            data: 0.0,
        })
    }

    fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// The root, if the tree is nonempty.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Shared access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable access to a node's payload.
    pub fn data_mut(&mut self, id: NodeId) -> &mut f64 {
        &mut self.nodes[id.0].data
    }

    /// Whether `id` is a leaf.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        let n = &self.nodes[id.0];
        n.left.is_none() && n.right.is_none()
    }

    /// The leaves in left-to-right order (by tree walk).
    pub fn leaves(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.collect_leaves(root, &mut out);
        }
        out
    }

    fn collect_leaves(&self, id: NodeId, out: &mut Vec<NodeId>) {
        let n = &self.nodes[id.0];
        match (n.left, n.right) {
            (None, None) => out.push(id),
            (l, r) => {
                if let Some(l) = l {
                    self.collect_leaves(l, out);
                }
                if let Some(r) = r {
                    self.collect_leaves(r, out);
                }
            }
        }
    }

    /// Walks a field word (`"L"`, `"R"`, `"N"`) from a node.
    pub fn walk(&self, from: NodeId, word: &str) -> Option<NodeId> {
        let mut cur = from;
        for ch in word.chars() {
            let n = &self.nodes[cur.0];
            cur = match ch {
                'L' => n.left?,
                'R' => n.right?,
                'N' => n.next?,
                other => panic!("unknown field {other:?}"),
            };
        }
        Some(cur)
    }

    /// Exports as a labeled heap graph (fields `L`, `R`, `N`).
    pub fn heap_graph(&self) -> (HeapGraph, Option<GraphNode>) {
        let mut g = HeapGraph::new();
        let ids: Vec<GraphNode> = self.nodes.iter().map(|_| g.add_node()).collect();
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(l) = n.left {
                g.set_edge(ids[i], "L", ids[l.0]);
            }
            if let Some(r) = n.right {
                g.set_edge(ids[i], "R", ids[r.0]);
            }
            if let Some(nx) = n.next {
                g.set_edge(ids[i], "N", ids[nx.0]);
            }
        }
        (g, self.root.map(|r| ids[r.0]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_axioms::{adds, check::check_set};

    #[test]
    fn complete_tree_counts() {
        let t = LeafLinkedTree::complete(3);
        assert_eq!(t.len(), 15);
        assert_eq!(t.leaves().len(), 8);
    }

    #[test]
    fn leaves_are_threaded() {
        let t = LeafLinkedTree::complete(2);
        let leaves = t.leaves();
        for w in leaves.windows(2) {
            assert_eq!(t.node(w[0]).next, Some(w[1]));
        }
        assert_eq!(t.node(*leaves.last().unwrap()).next, None);
    }

    #[test]
    fn paper_figure3_walks() {
        // root.LLN == root.LR in a complete depth-2 tree.
        let t = LeafLinkedTree::complete(2);
        let root = t.root().unwrap();
        assert_eq!(t.walk(root, "LLN"), t.walk(root, "LR"));
        // root.LLN ≠ root.LRN — the §3.3 independence, concretely.
        assert_ne!(t.walk(root, "LLN"), t.walk(root, "LRN"));
    }

    #[test]
    fn satisfies_figure3_axioms() {
        for depth in 0..4 {
            let t = LeafLinkedTree::complete(depth);
            let (g, _) = t.heap_graph();
            assert_eq!(
                check_set(&g, &adds::leaf_linked_tree_axioms()),
                Ok(()),
                "depth {depth}"
            );
        }
    }

    #[test]
    fn data_updates() {
        let mut t = LeafLinkedTree::complete(1);
        let root = t.root().unwrap();
        let leaf = t.walk(root, "L").unwrap();
        *t.data_mut(leaf) = 42.0;
        assert_eq!(t.node(leaf).data, 42.0);
    }

    #[test]
    fn walk_dangles_gracefully() {
        let t = LeafLinkedTree::complete(1);
        let root = t.root().unwrap();
        assert_eq!(t.walk(root, "LL"), None);
        assert_eq!(t.walk(root, "N"), None); // root is not a leaf
    }
}
