//! Concrete heap substrates for the APT reproduction.
//!
//! The paper's evaluation exercises real pointer structures; this crate
//! builds them:
//!
//! * [`llt`] — leaf-linked binary trees (Figure 3, the §3 running
//!   example);
//! * [`list`] — singly/doubly/circular linked lists (Figure 1's motivating
//!   loop);
//! * [`sparse`] — sparse matrices as orthogonal lists (Figure 6), with
//! * [`numeric`] — the §5 `scale`/`factor`/`solve` kernels, instrumented
//!   to emit `apt-parsim` task traces for the Figure 7 speedup study;
//! * [`dense`] — the dense reference solver the sparse kernels validate
//!   against;
//! * [`rangetree`] — 2-D range trees (leaf-linked trees of leaf-linked
//!   trees, §3.1);
//! * [`octree`] — Barnes–Hut octrees (§1's N-body motivation);
//! * [`gen`] — random structure generators for the soundness property
//!   tests.
//!
//! Every structure exports its shape as an [`apt_axioms::graph::HeapGraph`]
//! so the axiom model checker can verify that the instances really satisfy
//! the axiom sets the prover is given — the ground-truth side of the
//! reproduction's soundness story.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod gen;
pub mod list;
pub mod llt;
pub mod numeric;
pub mod octree;
pub mod rangetree;
pub mod sparse;
