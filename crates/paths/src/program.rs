//! Whole-program incremental dependence analysis — the `apt analyze`
//! layer.
//!
//! [`analyze_program`] walks every procedure of a multi-procedure IR
//! program and derives the full dependence table: each procedure's
//! [`Analysis::all_queries`] workload (loop-carried queries plus every
//! pairwise conflict with at least one write), with cross-procedure pairs
//! arising naturally because calls are inlined per call site — a callee's
//! labeled accesses appear in the caller's snapshot set under their
//! `callee@site::label` namespace and pair against the caller's own
//! accesses like any other label.
//!
//! The incremental part is the [`DepTable`]: per procedure it records the
//! definite verdicts keyed by a stable rendering of each query, plus two
//! content hashes — one over the procedure body *and every transitively
//! reachable callee body* (inlining makes callee edits invalidate their
//! callers), one over the program's axiom set. [`ProgramAnalysis::run`]
//! replays a baseline entry only when both hashes match; replayed `No`
//! verdicts are spot-checked through [`check_proof`] before any of the
//! entry is trusted — the same forged-proof discipline the snapshot
//! restore tier uses. Everything else (changed procedures, `Maybe`
//! results, corrupt entries) is re-proved from scratch, so a damaged
//! table can cost warmth but never a wrong verdict:
//!
//! * hash match ⇒ identical procedure text, identical reachable callee
//!   texts, identical axiom text ⇒ the cold analysis would re-derive the
//!   exact same queries and answers (the analysis is a pure function of
//!   those inputs, and [`Analysis::all_queries`] ordering is
//!   deterministic);
//! * a definite verdict is only ever stored with the proofs that earned
//!   it, and a sample is re-checked on import — a tampered entry is
//!   discarded whole and the procedure re-proves cold.

use crate::analysis::{analyze_proc, Analysis, BatchOptions, BatchQuery, QueryError};
use apt_core::{
    check_proof, Answer, CacheStats, PortfolioConfig, Proof, ProverConfig, TallySink, TestOutcome,
    Witness,
};
use apt_ir::{Block, Program, StmtKind};
use std::collections::{BTreeSet, HashMap};

/// How many stored proofs of a matched table entry are re-verified
/// through [`check_proof`] before the entry's verdicts are replayed. One
/// failure rejects the whole entry.
pub const REPLAY_PROOF_SAMPLE: usize = 8;

/// 64-bit FNV-1a over a byte string: a small, process-stable content
/// hash (no `DefaultHasher`, whose seeds vary per process) for keying
/// persisted table entries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The stable rendering of a [`BatchQuery`] used as the verdict key in a
/// [`DepTable`] — and as the row label in `apt analyze` output.
pub fn query_key(query: &BatchQuery) -> String {
    match query {
        BatchQuery::Sequential { from, to } => format!("{from} vs {to}"),
        BatchQuery::LoopCarried { label, loop_label } => match loop_label {
            Some(l) => format!("carried {label} @ {l}"),
            None => format!("carried {label}"),
        },
    }
}

/// One persisted definite verdict: the query's stable key, the answer,
/// and the evidence that earned it — proof trees for a `No` (nonempty
/// exactly when the prover proved disjointness; a proof-less `No` is a
/// dispatch prune), a concrete dependence [`Witness`] heap for a `Yes`
/// settled by the portfolio's refuter (`None` for the identical-path
/// `Yes`, which needs no evidence).
#[derive(Debug, Clone)]
pub struct StoredVerdict {
    /// [`query_key`] rendering of the query.
    pub query: String,
    /// The definite answer (`Yes` or `No`; `Maybe` is never persisted).
    pub answer: Answer,
    /// The disjointness proofs backing a `No`.
    pub proofs: Vec<Proof>,
    /// The concrete-heap witness backing a refuter `Yes`.
    pub witness: Option<Witness>,
}

/// The persisted verdicts of one procedure, keyed by content hashes of
/// everything the analysis depends on.
#[derive(Debug, Clone)]
pub struct ProcVerdicts {
    /// The procedure's name.
    pub proc_name: String,
    /// [`fnv1a`] over the procedure's rendered body plus the rendered
    /// bodies of every transitively reachable callee (sorted by name).
    pub body_hash: u64,
    /// [`fnv1a`] over the program's rendered axiom set.
    pub axioms_hash: u64,
    /// Definite verdicts, in query order.
    pub verdicts: Vec<StoredVerdict>,
}

/// A whole-program dependence table: per-procedure definite verdicts plus
/// the content hashes that decide whether they may be replayed.
#[derive(Debug, Clone, Default)]
pub struct DepTable {
    /// Per-procedure entries, in program order.
    pub procs: Vec<ProcVerdicts>,
}

impl DepTable {
    /// An empty table (everything analyzes cold).
    pub fn new() -> DepTable {
        DepTable::default()
    }

    /// The entry for a procedure, if present.
    pub fn entry(&self, proc_name: &str) -> Option<&ProcVerdicts> {
        self.procs.iter().find(|p| p.proc_name == proc_name)
    }

    /// Drops a procedure's entry; returns how many verdicts were dropped.
    pub fn invalidate_proc(&mut self, proc_name: &str) -> usize {
        let mut dropped = 0;
        self.procs.retain(|p| {
            if p.proc_name == proc_name {
                dropped += p.verdicts.len();
                false
            } else {
                true
            }
        });
        dropped
    }

    /// Total persisted verdicts across all procedures.
    pub fn total_verdicts(&self) -> usize {
        self.procs.iter().map(|p| p.verdicts.len()).sum()
    }
}

/// One analyzed procedure: its per-procedure [`Analysis`] plus the
/// content hashes keying its table entry.
#[derive(Debug, Clone)]
struct ProcUnit {
    name: String,
    analysis: Analysis,
    body_hash: u64,
}

/// The whole-program analysis: every procedure analyzed (calls inlined),
/// ready to run the full dependence-table workload — cold, or
/// incrementally against a baseline [`DepTable`].
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    procs: Vec<ProcUnit>,
    axioms_hash: u64,
}

/// Collects the procedure names transitively reachable from `block`
/// through `call` statements (the walker inlines them, so their text is
/// part of this procedure's analysis input).
fn reachable_callees(program: &Program, block: &Block, seen: &mut BTreeSet<String>) {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Call { callee, .. } if seen.insert(callee.clone()) => {
                if let Some(proc) = program.proc(callee) {
                    reachable_callees(program, &proc.body, seen);
                }
            }
            StmtKind::Loop { body } => reachable_callees(program, body, seen),
            StmtKind::If {
                then_branch,
                else_branch,
            } => {
                reachable_callees(program, then_branch, seen);
                reachable_callees(program, else_branch, seen);
            }
            _ => {}
        }
    }
}

/// [`fnv1a`] over a procedure's rendered text plus every transitively
/// reachable callee's rendered text (sorted by name, `0xFF`-separated so
/// unit boundaries cannot alias). Editing a callee therefore changes the
/// hash of each of its (transitive) callers — exactly the procedures
/// whose inlined analyses the edit invalidates.
fn body_hash_of(program: &Program, proc_name: &str) -> u64 {
    let mut text = Vec::new();
    let Some(proc) = program.proc(proc_name) else {
        return fnv1a(proc_name.as_bytes());
    };
    text.extend_from_slice(proc.to_string().as_bytes());
    let mut callees = BTreeSet::new();
    reachable_callees(program, &proc.body, &mut callees);
    for callee in &callees {
        text.push(0xFF);
        text.extend_from_slice(callee.as_bytes());
        text.push(0xFF);
        if let Some(p) = program.proc(callee) {
            text.extend_from_slice(p.to_string().as_bytes());
        }
    }
    fnv1a(&text)
}

/// Analyzes every procedure of a program for the whole-program workload.
///
/// Procedures are analyzed in program order; each analysis inlines the
/// procedure's calls, so cross-procedure dependence pairs at call sites
/// appear in the caller's query list under `callee@site::label` names.
pub fn analyze_program(program: &Program) -> ProgramAnalysis {
    let axioms_hash = fnv1a(program.all_axioms().to_string().as_bytes());
    let procs = program
        .procs
        .iter()
        .map(|proc| {
            let analysis =
                analyze_proc(program, &proc.name).expect("procedure exists in its own program");
            ProcUnit {
                name: proc.name.clone(),
                analysis,
                body_hash: body_hash_of(program, &proc.name),
            }
        })
        .collect();
    ProgramAnalysis { procs, axioms_hash }
}

impl ProgramAnalysis {
    /// Sets the prover configuration for every procedure's queries.
    pub fn set_prover_config(&mut self, config: ProverConfig) {
        for unit in &mut self.procs {
            unit.analysis.set_prover_config(config.clone());
        }
    }

    /// Builder form of [`ProgramAnalysis::set_prover_config`].
    #[must_use]
    pub fn with_prover_config(mut self, config: ProverConfig) -> ProgramAnalysis {
        self.set_prover_config(config);
        self
    }

    /// Enables portfolio racing for every procedure's queries.
    pub fn set_portfolio_config(&mut self, config: PortfolioConfig) {
        for unit in &mut self.procs {
            unit.analysis.set_portfolio_config(config.clone());
        }
    }

    /// Builder form of [`ProgramAnalysis::set_portfolio_config`].
    #[must_use]
    pub fn with_portfolio_config(mut self, config: PortfolioConfig) -> ProgramAnalysis {
        self.set_portfolio_config(config);
        self
    }

    /// Routes every procedure's race tallies into `sink` (clones of a
    /// [`TallySink`] share counters, so the per-procedure analyses all
    /// aggregate into the caller's one total).
    pub fn set_portfolio_tallies(&mut self, sink: &TallySink) {
        for unit in &mut self.procs {
            unit.analysis.set_portfolio_tallies(sink.clone());
        }
    }

    /// The analyzed procedure names, in program order.
    pub fn proc_names(&self) -> Vec<&str> {
        self.procs.iter().map(|u| u.name.as_str()).collect()
    }

    /// The content hash of the program's axiom set.
    pub fn axioms_hash(&self) -> u64 {
        self.axioms_hash
    }

    /// The body hash (own text + reachable callee texts) of a procedure.
    pub fn body_hash(&self, proc_name: &str) -> Option<u64> {
        self.procs
            .iter()
            .find(|u| u.name == proc_name)
            .map(|u| u.body_hash)
    }

    /// Runs the whole-program workload, replaying from `baseline` where
    /// its entries' content hashes still match.
    ///
    /// Per procedure: if the baseline holds an entry whose
    /// `(body_hash, axioms_hash)` equals this analysis's, the entry's
    /// stored proofs are spot-checked ([`REPLAY_PROOF_SAMPLE`] of them,
    /// through [`check_proof`] against the program's axiom set — proofs
    /// were built under a per-query *subset* of it, and a proof valid
    /// under a subset is valid under the full set); on success the
    /// entry's definite verdicts replay without touching the prover, and
    /// only queries it does not cover (always including every `Maybe`,
    /// which is never persisted) are re-proved. Any check failure, or a
    /// structurally bogus verdict (a `Maybe`, or a `Yes` carrying
    /// proofs), discards the whole entry and the procedure re-proves
    /// cold.
    ///
    /// A `No` with *no* proofs is legitimate — dispatch prunes queries
    /// whose access paths cannot meet (different final selectors, for
    /// one) and answers without engaging the prover — but it is also
    /// unverifiable, so it never replays: a `No` replays only on the
    /// strength of a checkable proof. Such verdicts re-prove each run,
    /// which costs what the dispatch prune costs — not a prover call.
    pub fn run(&self, baseline: Option<&DepTable>, options: &BatchOptions) -> ProgramReport {
        let mut procs = Vec::with_capacity(self.procs.len());
        let mut table = DepTable::new();
        for unit in &self.procs {
            let queries = unit.analysis.all_queries();
            let entry = baseline
                .and_then(|t| t.entry(&unit.name))
                .filter(|e| e.body_hash == unit.body_hash && e.axioms_hash == self.axioms_hash)
                .filter(|e| self.entry_checks_out(unit, e));
            let replay: HashMap<&str, &StoredVerdict> = entry
                .map(|e| {
                    e.verdicts
                        .iter()
                        // An unproven No is unverifiable and never
                        // replays (it re-proves at dispatch-prune cost).
                        .filter(|v| v.answer != Answer::No || !v.proofs.is_empty())
                        .map(|v| (v.query.as_str(), v))
                        .collect()
                })
                .unwrap_or_default();

            // Split the workload: replayable queries come straight from
            // the table, the rest go through the engine as one batch.
            let keys: Vec<String> = queries.iter().map(query_key).collect();
            let mut fresh = Vec::new();
            for (query, key) in queries.iter().zip(&keys) {
                if !replay.contains_key(key.as_str()) {
                    fresh.push(query.clone());
                }
            }
            let (mut fresh_results, cache) = if fresh.is_empty() {
                (Vec::new().into_iter(), CacheStats::default())
            } else {
                let report = unit.analysis.run_batch(&fresh, options);
                (report.results.into_iter(), report.cache)
            };

            let mut rows = Vec::with_capacity(queries.len());
            let mut verdicts = Vec::new();
            let (mut replayed, mut reproved) = (0, 0);
            for (query, key) in queries.into_iter().zip(keys) {
                let outcome = match replay.get(key.as_str()) {
                    Some(stored) => {
                        replayed += 1;
                        verdicts.push((*stored).clone());
                        RowOutcome::Replayed(stored.answer)
                    }
                    None => {
                        reproved += 1;
                        match fresh_results.next().expect("one result per fresh query") {
                            Ok(outcome) => {
                                if outcome.answer != Answer::Maybe {
                                    verdicts.push(StoredVerdict {
                                        query: key.clone(),
                                        answer: outcome.answer,
                                        proofs: outcome.proofs.clone(),
                                        witness: outcome.witness.clone(),
                                    });
                                }
                                RowOutcome::Fresh(outcome)
                            }
                            Err(e) => RowOutcome::Error(e),
                        }
                    }
                };
                rows.push(ReportRow {
                    query,
                    key,
                    outcome,
                });
            }
            table.procs.push(ProcVerdicts {
                proc_name: unit.name.clone(),
                body_hash: unit.body_hash,
                axioms_hash: self.axioms_hash,
                verdicts,
            });
            procs.push(ProcReport {
                name: unit.name.clone(),
                reused: entry.is_some(),
                replayed,
                reproved,
                rows,
                cache,
            });
        }
        ProgramReport { procs, table }
    }

    /// Structural + proof-sample validation of a hash-matched baseline
    /// entry. Rejecting here sends the whole procedure down the cold
    /// path; nothing of a suspect entry is ever replayed.
    fn entry_checks_out(&self, unit: &ProcUnit, entry: &ProcVerdicts) -> bool {
        for v in &entry.verdicts {
            match v.answer {
                // Proofs only ever back No verdicts: a Yes means
                // identical singleton paths (no evidence) or a refuter
                // dependence (a witness heap) and never carries any. A
                // No without proofs is allowed here (a dispatch prune)
                // but is filtered out of the replay map by the caller.
                // A witness only ever backs a Yes.
                Answer::Yes if v.proofs.is_empty() => {}
                Answer::No if v.witness.is_none() => {}
                _ => return false,
            }
        }
        let axioms = unit.analysis.axioms();
        let proofs_ok = entry
            .verdicts
            .iter()
            .flat_map(|v| v.proofs.iter())
            .take(REPLAY_PROOF_SAMPLE)
            .all(|proof| check_proof(axioms, proof).is_ok());
        // Same forged-evidence discipline for witnesses: every stored
        // witness heap must decode and satisfy the program's axioms, or
        // the whole entry re-proves cold.
        let witnesses_ok = entry
            .verdicts
            .iter()
            .filter_map(|v| v.witness.as_ref())
            .all(|w| w.check_heap(axioms).is_ok());
        proofs_ok && witnesses_ok
    }
}

/// How one row of the program report was settled.
#[derive(Debug, Clone)]
pub enum RowOutcome {
    /// Proved live this run.
    Fresh(TestOutcome),
    /// Replayed from the baseline table (definite answers only).
    Replayed(Answer),
    /// The query could not be phrased against the analysis.
    Error(QueryError),
}

impl RowOutcome {
    /// The answer, treating unphrasable queries as `Maybe`.
    pub fn answer(&self) -> Answer {
        match self {
            RowOutcome::Fresh(o) => o.answer,
            RowOutcome::Replayed(a) => *a,
            RowOutcome::Error(_) => Answer::Maybe,
        }
    }

    /// Whether this row came from the baseline table.
    pub fn is_replayed(&self) -> bool {
        matches!(self, RowOutcome::Replayed(_))
    }
}

/// One query's row in a [`ProcReport`].
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// The query.
    pub query: BatchQuery,
    /// Its stable [`query_key`] rendering (the table key).
    pub key: String,
    /// How it was settled.
    pub outcome: RowOutcome,
}

/// One procedure's slice of a [`ProgramReport`].
#[derive(Debug, Clone)]
pub struct ProcReport {
    /// The procedure's name.
    pub name: String,
    /// Whether a baseline entry was accepted for replay (hashes matched
    /// and the proof spot-check passed).
    pub reused: bool,
    /// Queries answered straight from the table.
    pub replayed: usize,
    /// Queries sent through the prover this run.
    pub reproved: usize,
    /// Per-query rows, in [`Analysis::all_queries`] order.
    pub rows: Vec<ReportRow>,
    /// Engine cache statistics for this procedure's fresh batch (all
    /// zeros when everything replayed — the assertion hook for "untouched
    /// procedures never touch the prover").
    pub cache: CacheStats,
}

/// The result of [`ProgramAnalysis::run`]: per-procedure reports plus the
/// updated table to persist for the next run.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// Per-procedure reports, in program order.
    pub procs: Vec<ProcReport>,
    /// The refreshed dependence table (replayed entries carried forward,
    /// fresh definite verdicts added).
    pub table: DepTable,
}

impl ProgramReport {
    /// Total queries across all procedures.
    pub fn total_queries(&self) -> usize {
        self.procs.iter().map(|p| p.rows.len()).sum()
    }

    /// Queries answered from the table.
    pub fn replayed(&self) -> usize {
        self.procs.iter().map(|p| p.replayed).sum()
    }

    /// Queries proved live.
    pub fn reproved(&self) -> usize {
        self.procs.iter().map(|p| p.reproved).sum()
    }

    /// Procedures whose baseline entry was accepted for replay.
    pub fn procs_reused(&self) -> usize {
        self.procs.iter().filter(|p| p.reused).count()
    }

    /// Whether any answer was Maybe (or a query unphrasable).
    pub fn any_maybe(&self) -> bool {
        self.procs
            .iter()
            .flat_map(|p| p.rows.iter())
            .any(|r| r.outcome.answer() == Answer::Maybe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_ir::parse_program;

    const TWO_PROCS: &str = r"
        type List {
            ptr link: List;
            data f;
            axiom A1: forall p <> q, p.link <> q.link;
            axiom A2: forall p, p.link+ <> p.eps;
        }
        proc update(head: List) {
            q = head;
            loop {
            U:  q->f = fun();
                q = q->link;
            }
        }
        proc touch(h: List) {
        W:  h->f = 9;
        X:  v = h->f;
        }";

    fn answers(report: &ProgramReport) -> Vec<(String, String, Answer)> {
        report
            .procs
            .iter()
            .flat_map(|p| {
                p.rows
                    .iter()
                    .map(|r| (p.name.clone(), r.key.clone(), r.outcome.answer()))
            })
            .collect()
    }

    #[test]
    fn cold_run_covers_every_procedure() {
        let program = parse_program(TWO_PROCS).unwrap();
        let pa = analyze_program(&program);
        assert_eq!(pa.proc_names(), vec!["update", "touch"]);
        let report = pa.run(None, &BatchOptions::new());
        assert_eq!(report.procs.len(), 2);
        assert_eq!(report.procs_reused(), 0);
        assert_eq!(report.replayed(), 0);
        assert!(report.total_queries() >= 2);
        // The table holds every definite verdict just proved.
        assert!(report.table.total_verdicts() > 0);
    }

    #[test]
    fn incremental_replays_unchanged_procs_and_reproves_edited_ones() {
        let program = parse_program(TWO_PROCS).unwrap();
        let pa = analyze_program(&program);
        let cold = pa.run(None, &BatchOptions::new());

        // Unedited re-run: everything definite replays, the prover is
        // never touched for fully-definite procedures.
        let warm = pa.run(Some(&cold.table), &BatchOptions::new());
        assert_eq!(answers(&warm), answers(&cold));
        assert_eq!(warm.procs_reused(), 2);
        for (w, c) in warm.procs.iter().zip(&cold.procs) {
            assert!(w.reused, "{}", w.name);
            // Only queries the table cannot cover (Maybes) re-prove.
            let cold_maybes = c
                .rows
                .iter()
                .filter(|r| r.outcome.answer() == Answer::Maybe)
                .count();
            assert_eq!(w.reproved, cold_maybes, "{}", w.name);
        }

        // Edit `touch`: it re-proves, `update` still replays.
        let edited_src = TWO_PROCS.replace("W:  h->f = 9;", "W:  h->f = 7;");
        let edited = parse_program(&edited_src).unwrap();
        let pa2 = analyze_program(&edited);
        assert_eq!(pa2.body_hash("update"), pa.body_hash("update"));
        assert_ne!(pa2.body_hash("touch"), pa.body_hash("touch"));
        let incr = pa2.run(Some(&cold.table), &BatchOptions::new());
        let from_scratch = pa2.run(None, &BatchOptions::new());
        assert_eq!(answers(&incr), answers(&from_scratch));
        let touch = incr.procs.iter().find(|p| p.name == "touch").unwrap();
        assert!(!touch.reused);
        assert!(touch.reproved > 0);
        let update = incr.procs.iter().find(|p| p.name == "update").unwrap();
        assert!(update.reused);
    }

    #[test]
    fn editing_a_callee_invalidates_its_callers() {
        let src = r"
            type List {
                ptr link: List;
                data f;
                axiom A1: forall p <> q, p.link <> q.link;
                axiom A2: forall p, p.link+ <> p.eps;
            }
            proc peek(t: List) {
            P:  v = t->f;
            }
            proc outer(h: List) {
            S:  h->f = 1;
                call peek(h);
            }";
        let pa = analyze_program(&parse_program(src).unwrap());
        let edited = src.replace("P:  v = t->f;", "P:  t->f = 2;");
        let pa2 = analyze_program(&parse_program(&edited).unwrap());
        // The caller's hash must change too: peek's body is inlined into
        // outer's analysis.
        assert_ne!(pa2.body_hash("peek"), pa.body_hash("peek"));
        assert_ne!(pa2.body_hash("outer"), pa.body_hash("outer"));
    }

    #[test]
    fn axiom_edits_invalidate_everything() {
        let program = parse_program(TWO_PROCS).unwrap();
        let pa = analyze_program(&program);
        let cold = pa.run(None, &BatchOptions::new());
        let edited = TWO_PROCS.replace(
            "axiom A2: forall p, p.link+ <> p.eps;",
            "axiom A2: forall p, p.link.link+ <> p.eps;",
        );
        let pa2 = analyze_program(&parse_program(&edited).unwrap());
        assert_ne!(pa2.axioms_hash(), pa.axioms_hash());
        let incr = pa2.run(Some(&cold.table), &BatchOptions::new());
        assert_eq!(incr.procs_reused(), 0);
    }

    #[test]
    fn tampered_entries_are_rejected_not_replayed() {
        let program = parse_program(TWO_PROCS).unwrap();
        let pa = analyze_program(&program);
        let cold = pa.run(None, &BatchOptions::new());

        // Flip a stored No to Yes (keeping its proofs): the structural
        // check cannot see this, but re-running still must not produce a
        // wrong verdict... it would replay the flipped answer, except a
        // Yes with proofs attached is structurally bogus and rejected.
        let mut tampered = cold.table.clone();
        let mut flipped = false;
        for entry in &mut tampered.procs {
            for v in &mut entry.verdicts {
                if v.answer == Answer::No {
                    v.answer = Answer::Yes;
                    flipped = true;
                    break;
                }
            }
            if flipped {
                break;
            }
        }
        assert!(flipped, "workload should prove at least one No");
        // A Yes carrying proofs fails the structural validation (proofs
        // only back No verdicts), so the whole entry re-proves cold.
        let report = pa.run(Some(&tampered), &BatchOptions::new());
        assert_eq!(
            answers(&report),
            answers(&pa.run(None, &BatchOptions::new()))
        );

        // Strip the proofs off every No: the entry still passes the
        // structural check (dispatch prunes legitimately store proof-less
        // Nos), but an unproven No never replays — each one re-proves,
        // so the tamper costs warmth, never a verdict.
        let mut stripped = cold.table.clone();
        let entry = stripped
            .procs
            .iter_mut()
            .find(|e| e.verdicts.iter().any(|v| v.answer == Answer::No))
            .unwrap();
        let name = entry.proc_name.clone();
        let nos = entry
            .verdicts
            .iter()
            .filter(|v| v.answer == Answer::No)
            .count();
        for v in &mut entry.verdicts {
            v.proofs.clear();
        }
        let report = pa.run(Some(&stripped), &BatchOptions::new());
        let proc = report.procs.iter().find(|p| p.name == name).unwrap();
        let cold_proc = cold.procs.iter().find(|p| p.name == name).unwrap();
        let cold_maybes = cold_proc
            .rows
            .iter()
            .filter(|r| r.outcome.answer() == Answer::Maybe)
            .count();
        assert!(proc.reused);
        assert_eq!(proc.reproved, cold_maybes + nos, "{name}");
        assert!(proc
            .rows
            .iter()
            .all(|r| { r.outcome.answer() != Answer::No || !r.outcome.is_replayed() }));
        assert_eq!(
            answers(&report),
            answers(&pa.run(None, &BatchOptions::new()))
        );
    }

    #[test]
    fn invalidate_proc_drops_only_that_entry() {
        let program = parse_program(TWO_PROCS).unwrap();
        let pa = analyze_program(&program);
        let mut table = pa.run(None, &BatchOptions::new()).table;
        let before = table.total_verdicts();
        let dropped = table.invalidate_proc("touch");
        assert!(dropped > 0);
        assert_eq!(table.total_verdicts(), before - dropped);
        assert!(table.entry("touch").is_none());
        assert!(table.entry("update").is_some());
        assert_eq!(table.invalidate_proc("touch"), 0);
    }
}
