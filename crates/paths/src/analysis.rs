//! The access-path collection analysis (§3.3) and its dependence queries.
//!
//! The analyzer walks a procedure maintaining an [`Apm`] per program point,
//! snapshotting the matrix at every labeled memory access. Loops are
//! handled with the paper's induction-variable treatment: a variable
//! updated only self-relatively (`r = r->nrowE`) keeps its handles, its
//! per-iteration growth `Δ` is detected, and its paths widen to `P·Δ*`.
//! Each loop additionally anchors its induction variables at a fresh
//! *iteration handle* denoting the variable's value at the start of an
//! arbitrary iteration `i` — the anchor the paper uses to phrase
//! loop-carried theorems (`hr.ncolE+ <> hr.nrowE+ncolE+`, §5).

use crate::apm::Apm;
use apt_axioms::AxiomSet;
use apt_core::{
    AccessPath, Answer, CacheStats, DepEngine, DepTest, Handle, HandleRelation, MemRef,
    PortfolioConfig, PortfolioStats, ProverConfig, TallySink, TestOutcome,
};
use apt_ir::{Block, Program, Stmt, StmtKind};
use apt_regex::{Component, Path, Symbol};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;
use std::ops::Range;

/// What a labeled statement does to memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// The dereferenced pointer variable (`p` in `p->f`).
    pub ptr: String,
    /// The accessed field.
    pub field: Symbol,
    /// Whether the access writes.
    pub is_write: bool,
}

/// One loop the analysis passed through, innermost last.
#[derive(Debug, Clone)]
pub struct LoopFrame {
    /// The loop statement's label, if any.
    pub label: Option<String>,
    /// Iteration anchors: `var → (handle for the var's value at iteration
    /// start, per-iteration growth Δ)`.
    pub induction: BTreeMap<String, (Handle, Path)>,
    /// Pointer fields the loop body stores to. A loop-carried query whose
    /// paths or deltas traverse one of these cannot be phrased: the body
    /// may redirect the walk between the two iterations.
    pub stored_fields: std::collections::BTreeSet<apt_regex::Symbol>,
    /// Whether the body contains an opaque call that may store anything.
    pub wildcard_stores: bool,
}

/// The analysis state recorded at a labeled statement.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The label.
    pub label: String,
    /// Position of the statement in the walk order: 0 for the first
    /// recorded access, counting up through inlined callee bodies. Stable
    /// across runs for the same program text, and the sort key that makes
    /// [`Analysis::all_queries`] deterministic.
    pub stmt_index: usize,
    /// The matrix at the statement (paths traversed up to, but not
    /// including, the statement).
    pub apm: Apm,
    /// What the statement accesses.
    pub access: Access,
    /// Enclosing loops, outermost first.
    pub loops: Vec<LoopFrame>,
}

/// Error from a dependence query against an [`Analysis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// No snapshot with this label (missing label, or the labeled statement
    /// does not access memory).
    NoSuchLabel(String),
    /// The two references share no handle, or loop context is missing.
    NoCommonAnchor,
    /// The label is not inside a loop (for loop-carried queries).
    NotInLoop(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NoSuchLabel(l) => write!(f, "no memory-access snapshot labeled {l:?}"),
            QueryError::NoCommonAnchor => write!(f, "no common handle anchors the two references"),
            QueryError::NotInLoop(l) => write!(f, "statement {l:?} is not inside a loop"),
        }
    }
}

impl Error for QueryError {}

/// One dependence question against an [`Analysis`], addressed by label —
/// the batch-mode counterpart of [`Analysis::test_sequential`] and
/// [`Analysis::test_loop_carried`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchQuery {
    /// Sequential dependence between two labeled statements, `from → to`.
    Sequential {
        /// The earlier statement's label.
        from: String,
        /// The later statement's label.
        to: String,
    },
    /// Loop-carried self-dependence on a labeled statement.
    LoopCarried {
        /// The statement's label.
        label: String,
        /// The enclosing loop's label (`None` = innermost with an anchor).
        loop_label: Option<String>,
    },
}

/// Options for [`Analysis::run_batch`]. Today that is the worker-thread
/// fan-out; the struct exists so future knobs (per-query budgets, replay
/// hints) extend the API without another signature change.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads each shared engine fans its queries out over.
    pub jobs: usize,
}

impl BatchOptions {
    /// Defaults: single-threaded execution.
    pub fn new() -> BatchOptions {
        BatchOptions { jobs: 1 }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> BatchOptions {
        self.jobs = jobs.max(1);
        self
    }
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions::new()
    }
}

/// What [`Analysis::run_batch`] returns: one outcome (or [`QueryError`])
/// per input query, in order, plus the engine cache statistics summed
/// over every axiom-set group the batch used — observability for
/// `apt batch` and the whole-program layer (proof/subset cache sizes,
/// raw vs minimized DFA states).
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-query outcomes, in input order.
    pub results: Vec<Result<TestOutcome, QueryError>>,
    /// Cache statistics summed across the batch's engines.
    pub cache: CacheStats,
}

impl BatchReport {
    /// Whether any query answered Maybe or failed to be phrased.
    pub fn any_maybe(&self) -> bool {
        self.results
            .iter()
            .any(|r| !matches!(r, Ok(o) if o.answer != Answer::Maybe))
    }
}

/// The result of analyzing one procedure.
#[derive(Debug, Clone)]
pub struct Analysis {
    snapshots: BTreeMap<String, Snapshot>,
    exit: Apm,
    axioms: AxiomSet,
    config: ProverConfig,
    /// When set, queries race the configured engine portfolio instead of
    /// running the axiomatic prover alone.
    portfolio: Option<PortfolioConfig>,
    /// Race tallies, shared across every tester this analysis spawns
    /// (clones of the analysis share it too, so panic-isolated report
    /// queries still aggregate here).
    tallies: TallySink,
}

/// Analyzes one procedure of a program.
///
/// The axioms attached to the program's type declarations are assumed valid
/// on entry; structural modifications conservatively clear the matrix
/// (§3.4), so queries never cross them with stale paths.
///
/// # Errors
///
/// Returns `Err` if the procedure does not exist.
pub fn analyze_proc(program: &Program, proc_name: &str) -> Result<Analysis, QueryError> {
    let proc = program
        .proc(proc_name)
        .ok_or_else(|| QueryError::NoSuchLabel(proc_name.to_owned()))?;
    let mut apm = Apm::new();
    for (var, _ty) in &proc.params {
        apm.seed_var(var);
    }
    let mut snapshots = BTreeMap::new();
    let mut frames = Vec::new();
    let mut wctx = WalkCtx {
        program,
        call_stack: vec![proc_name.to_owned()],
        callsite: 0,
        next_index: 0,
    };
    walk_block(
        &proc.body,
        &mut apm,
        &mut frames,
        Some(&mut snapshots),
        &mut wctx,
    );
    Ok(Analysis {
        snapshots,
        exit: apm,
        axioms: program.all_axioms(),
        config: ProverConfig::default(),
        portfolio: None,
        tallies: TallySink::new(),
    })
}

/// Interprocedural walking state: the program (for callee lookup), the
/// call stack (recursion guard), and a counter giving each inlined call
/// site a unique suffix.
struct WalkCtx<'a> {
    program: &'a Program,
    call_stack: Vec<String>,
    callsite: usize,
    /// Next [`Snapshot::stmt_index`]; bumped only when a snapshot is
    /// recorded (pass-A probe walks pass no snapshot map and do not
    /// advance it, so the numbering is the pass-B statement order).
    next_index: usize,
}

fn access_of(kind: &StmtKind) -> Option<Access> {
    match kind {
        StmtKind::ScalarWrite { ptr, field, .. } => Some(Access {
            ptr: ptr.clone(),
            field: *field,
            is_write: true,
        }),
        StmtKind::ScalarRead { ptr, field, .. } => Some(Access {
            ptr: ptr.clone(),
            field: *field,
            is_write: false,
        }),
        StmtKind::PtrStore { ptr, field, .. } => Some(Access {
            ptr: ptr.clone(),
            field: *field,
            is_write: true,
        }),
        StmtKind::PtrLoad { src, field, dst } if dst != src => Some(Access {
            ptr: src.clone(),
            field: *field,
            is_write: false,
        }),
        StmtKind::PtrLoad { src, field, .. } => Some(Access {
            ptr: src.clone(),
            field: *field,
            is_write: false,
        }),
        _ => None,
    }
}

fn walk_block(
    block: &Block,
    apm: &mut Apm,
    frames: &mut Vec<LoopFrame>,
    mut snapshots: Option<&mut BTreeMap<String, Snapshot>>,
    wctx: &mut WalkCtx<'_>,
) {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Loop { body } => {
                walk_loop(stmt, body, apm, frames, snapshots.as_deref_mut(), wctx);
            }
            StmtKind::If {
                then_branch,
                else_branch,
            } => {
                let mut then_apm = apm.clone();
                let mut else_apm = apm.clone();
                walk_block(
                    then_branch,
                    &mut then_apm,
                    frames,
                    snapshots.as_deref_mut(),
                    wctx,
                );
                walk_block(
                    else_branch,
                    &mut else_apm,
                    frames,
                    snapshots.as_deref_mut(),
                    wctx,
                );
                *apm = then_apm.join(&else_apm);
            }
            StmtKind::Call { callee, args } => {
                walk_call(
                    stmt,
                    callee,
                    args,
                    apm,
                    frames,
                    snapshots.as_deref_mut(),
                    wctx,
                );
            }
            _ => {
                // Snapshot *before* the statement's own transfer.
                if let (Some(label), Some(snaps)) = (&stmt.label, snapshots.as_deref_mut()) {
                    if let Some(access) = access_of(&stmt.kind) {
                        let stmt_index = wctx.next_index;
                        wctx.next_index += 1;
                        snaps.insert(
                            label.clone(),
                            Snapshot {
                                label: label.clone(),
                                stmt_index,
                                apm: apm.clone(),
                                access,
                                loops: frames.clone(),
                            },
                        );
                    }
                }
                apm.transfer(stmt);
            }
        }
    }
}

fn walk_loop(
    stmt: &Stmt,
    body: &Block,
    apm: &mut Apm,
    frames: &mut Vec<LoopFrame>,
    snapshots: Option<&mut BTreeMap<String, Snapshot>>,
    wctx: &mut WalkCtx<'_>,
) {
    // Pass A: run the body once (without snapshots) to find per-iteration
    // growth.
    let entry = apm.clone();
    let mut probe = entry.clone();
    let mut probe_frames = frames.clone();
    walk_block(body, &mut probe, &mut probe_frames, None, wctx);

    // Widen: classify each variable.
    let mut widened = Apm::new();
    widened.inherit_modifications(&probe);
    // var → deltas seen across its handles (None = non-prefix change).
    let mut var_deltas: BTreeMap<String, Option<Vec<Path>>> = BTreeMap::new();
    for var in entry.vars() {
        let mut deltas: Option<Vec<Path>> = Some(Vec::new());
        for (h, before) in entry.paths_of(&var) {
            match probe.path_from(&h, &var) {
                Some(after) if component_prefix(&before, after) => {
                    let delta = suffix_after(&before, after);
                    if let Some(ds) = deltas.as_mut() {
                        ds.push(delta);
                    }
                }
                _ => deltas = None,
            }
        }
        var_deltas.insert(var, deltas);
    }
    let mut induction: BTreeMap<String, (Handle, Path)> = BTreeMap::new();
    let mut widened_inner = widened;
    for (var, deltas) in &var_deltas {
        let Some(deltas) = deltas else { continue };
        // All entries grew by a common delta?
        let first = deltas.first().cloned().unwrap_or_default();
        let uniform = deltas.iter().all(|d| *d == first);
        for (h, before) in entry.paths_of(var) {
            let path = if uniform && !first.is_epsilon() {
                let mut p = before.clone();
                p.push(Component::Star(first.clone()));
                p
            } else if uniform {
                before.clone()
            } else {
                // Non-uniform growth: widen each entry by its own delta.
                let after = probe.path_from(&h, var).expect("prefix-checked");
                let delta = suffix_after(&before, after);
                if delta.is_epsilon() {
                    before.clone()
                } else {
                    let mut p = before.clone();
                    p.push(Component::Star(delta));
                    p
                }
            };
            seed_entry(&mut widened_inner, &h, var, path);
        }
        if uniform && !first.is_epsilon() {
            // Induction variable: anchor its value at iteration start.
            let h_iter = Handle::new(format!("_h{var}_iter"));
            seed_entry(&mut widened_inner, &h_iter, var, Path::epsilon());
            induction.insert(var.clone(), (h_iter, first));
        }
    }
    let widened = widened_inner;

    // Pass B: walk the body from the widened state, recording snapshots.
    let (stored_fields, wildcard_stores) = probe.modified_fields_since(&entry);
    let mut pass_b = widened.clone();
    frames.push(LoopFrame {
        label: stmt.label.clone(),
        induction,
        stored_fields,
        wildcard_stores,
    });
    walk_block(body, &mut pass_b, frames, snapshots, wctx);
    frames.pop();

    // Post-loop state: any number (≥0) of iterations from entry = widened.
    *apm = widened;
}

/// Inlines a procedure call (§2's interprocedural setting, done
/// McCAT-style by substitution): parameters are bound to the argument
/// variables, the callee body is walked with its variables renamed to a
/// unique `callee::var@site` namespace (labels likewise), and the callee
/// locals are dropped afterwards. Recursive, unknown, or arity-mismatched
/// calls fall back to the conservative [`Apm::transfer`] treatment.
#[allow(clippy::too_many_arguments)]
fn walk_call(
    stmt: &Stmt,
    callee: &str,
    args: &[String],
    apm: &mut Apm,
    frames: &mut Vec<LoopFrame>,
    snapshots: Option<&mut BTreeMap<String, Snapshot>>,
    wctx: &mut WalkCtx<'_>,
) {
    let conservative = |apm: &mut Apm| apm.transfer(stmt);
    let Some(proc) = wctx.program.proc(callee) else {
        conservative(apm);
        return;
    };
    if wctx.call_stack.iter().any(|c| c == callee) || args.len() != proc.params.len() {
        conservative(apm);
        return;
    }
    wctx.callsite += 1;
    let site = wctx.callsite;
    let prefix = format!("{callee}@{site}");
    let rename = |v: &str| format!("{prefix}::{v}");

    // Scope bookkeeping: everything visible now survives the call.
    let caller_vars: std::collections::BTreeSet<String> = apm.vars().into_iter().collect();

    // Bind parameters by value.
    for ((param, _ty), arg) in proc.params.iter().zip(args) {
        apm.transfer(&Stmt::new(StmtKind::PtrCopy {
            dst: rename(param),
            src: arg.clone(),
        }));
    }
    let body = rename_block(&proc.body, &prefix);
    wctx.call_stack.push(callee.to_owned());
    walk_block(&body, apm, frames, snapshots, wctx);
    wctx.call_stack.pop();
    apm.retain_vars(&caller_vars);
}

/// Renames every variable and label of a callee body into the call-site
/// namespace.
fn rename_block(block: &Block, prefix: &str) -> Block {
    Block {
        stmts: block.stmts.iter().map(|s| rename_stmt(s, prefix)).collect(),
    }
}

fn rename_stmt(stmt: &Stmt, prefix: &str) -> Stmt {
    let r = |v: &String| format!("{prefix}::{v}");
    let kind = match &stmt.kind {
        StmtKind::PtrCopy { dst, src } => StmtKind::PtrCopy {
            dst: r(dst),
            src: r(src),
        },
        StmtKind::PtrLoad { dst, src, field } => StmtKind::PtrLoad {
            dst: r(dst),
            src: r(src),
            field: *field,
        },
        StmtKind::PtrNew { dst, ty } => StmtKind::PtrNew {
            dst: r(dst),
            ty: ty.clone(),
        },
        StmtKind::PtrNull { dst } => StmtKind::PtrNull { dst: r(dst) },
        StmtKind::PtrStore { ptr, field, src } => StmtKind::PtrStore {
            ptr: r(ptr),
            field: *field,
            src: src.as_ref().map(r),
        },
        StmtKind::ScalarWrite { ptr, field, value } => StmtKind::ScalarWrite {
            ptr: r(ptr),
            field: *field,
            value: value.clone(),
        },
        StmtKind::ScalarRead { var, ptr, field } => StmtKind::ScalarRead {
            var: r(var),
            ptr: r(ptr),
            field: *field,
        },
        StmtKind::ScalarAssign { var, value } => StmtKind::ScalarAssign {
            var: r(var),
            value: value.clone(),
        },
        StmtKind::Call { callee, args } => StmtKind::Call {
            callee: callee.clone(),
            args: args.iter().map(r).collect(),
        },
        StmtKind::Reassert => StmtKind::Reassert,
        StmtKind::Loop { body } => StmtKind::Loop {
            body: rename_block(body, prefix),
        },
        StmtKind::If {
            then_branch,
            else_branch,
        } => StmtKind::If {
            then_branch: rename_block(then_branch, prefix),
            else_branch: rename_block(else_branch, prefix),
        },
    };
    Stmt {
        label: stmt.label.as_ref().map(|l| format!("{prefix}::{l}")),
        kind,
    }
}

/// Inserts an entry into an APM. (The APM's public API is driven by
/// statement transfer; the analysis driver needs direct seeding for
/// widening, which this helper provides via a synthetic copy.)
fn seed_entry(apm: &mut Apm, handle: &Handle, var: &str, path: Path) {
    apm.insert_entry(handle.clone(), var.to_owned(), path);
}

/// Whether `long` extends `short` component-wise.
fn component_prefix(short: &Path, long: &Path) -> bool {
    long.len() >= short.len() && &long.components()[..short.len()] == short.components()
}

/// The components of `long` after the `short` prefix.
fn suffix_after(short: &Path, long: &Path) -> Path {
    Path::new(long.components()[short.len()..].to_vec())
}

impl Analysis {
    /// Sets the prover configuration (budget, rule switches) used by all
    /// subsequent dependence queries against this analysis.
    pub fn set_prover_config(&mut self, config: ProverConfig) {
        self.config = config;
    }

    /// Builder form of [`Analysis::set_prover_config`].
    #[must_use]
    pub fn with_prover_config(mut self, config: ProverConfig) -> Analysis {
        self.config = config;
        self
    }

    /// The prover configuration queries will run under.
    pub fn prover_config(&self) -> &ProverConfig {
        &self.config
    }

    /// Routes all subsequent queries through a racing engine portfolio
    /// (axiomatic prover, Dyck reachability, concrete-heap refuter).
    pub fn set_portfolio_config(&mut self, config: PortfolioConfig) {
        self.portfolio = Some(config);
    }

    /// Builder form of [`Analysis::set_portfolio_config`].
    #[must_use]
    pub fn with_portfolio_config(mut self, config: PortfolioConfig) -> Analysis {
        self.portfolio = Some(config);
        self
    }

    /// The portfolio configuration, when portfolio racing is enabled.
    pub fn portfolio_config(&self) -> Option<&PortfolioConfig> {
        self.portfolio.as_ref()
    }

    /// Records this analysis's race tallies into a caller-shared sink
    /// (clones of a [`TallySink`] share counters), e.g. the serve
    /// daemon's server-wide totals.
    pub fn set_portfolio_tallies(&mut self, sink: TallySink) {
        self.tallies = sink;
    }

    /// Cumulative per-engine race tallies across every query this
    /// analysis (and its clones) has run. `None` unless portfolio racing
    /// is enabled.
    pub fn portfolio_stats(&self) -> Option<PortfolioStats> {
        self.portfolio.as_ref().map(|_| self.tallies.stats())
    }

    /// A tester over `axioms`, routed through the portfolio when one is
    /// configured. Shared-tally: every tester reports into
    /// [`Analysis::portfolio_stats`].
    fn tester(&self, axioms: &AxiomSet) -> DepTest {
        let tester = DepTest::with_config(axioms, self.config.clone());
        match &self.portfolio {
            Some(cfg) => tester.with_portfolio_tallies(cfg.clone(), &self.tallies),
            None => tester,
        }
    }

    /// The snapshot at a label, if the statement accesses memory.
    pub fn snapshot(&self, label: &str) -> Option<&Snapshot> {
        self.snapshots.get(label)
    }

    /// Every labeled memory access, in label order.
    pub fn snapshots(&self) -> impl Iterator<Item = &Snapshot> {
        self.snapshots.values()
    }

    /// The labels of every recorded memory access, in label order.
    pub fn labels(&self) -> Vec<&str> {
        self.snapshots.keys().map(String::as_str).collect()
    }

    /// The matrix at procedure exit.
    pub fn exit_apm(&self) -> &Apm {
        &self.exit
    }

    /// The axioms collected from the program's type declarations.
    pub fn axioms(&self) -> &AxiomSet {
        &self.axioms
    }

    /// The axioms usable for a query touching the given snapshots: the
    /// declared set minus any axiom mentioning a field whose invariants
    /// are suspect at either point (§3.4's intersection of the axiom sets
    /// valid before and after a modification).
    pub fn valid_axioms(&self, snaps: &[&Snapshot]) -> AxiomSet {
        if snaps.iter().any(|s| s.apm.all_axioms_dirty()) {
            return AxiomSet::new();
        }
        let mut dirty: std::collections::BTreeSet<apt_regex::Symbol> =
            std::collections::BTreeSet::new();
        for s in snaps {
            dirty.extend(s.apm.dirty_axiom_fields().iter().copied());
        }
        if dirty.is_empty() {
            return self.axioms.clone();
        }
        self.axioms
            .iter()
            .filter(|a| {
                let mut fields = a.lhs().symbols();
                fields.extend(a.rhs().symbols());
                fields.iter().all(|f| !dirty.contains(f))
            })
            .cloned()
            .collect()
    }

    /// Builds the memory-reference pairs for a sequential dependence query
    /// `S → T`, one per common handle ("we scan the APMs at S and T,
    /// looking for a handle common to both p and q").
    ///
    /// # Errors
    ///
    /// See [`QueryError`].
    pub fn sequential_pairs(
        &self,
        s_label: &str,
        t_label: &str,
    ) -> Result<Vec<(MemRef, MemRef)>, QueryError> {
        let s = self
            .snapshot(s_label)
            .ok_or_else(|| QueryError::NoSuchLabel(s_label.to_owned()))?;
        let t = self
            .snapshot(t_label)
            .ok_or_else(|| QueryError::NoSuchLabel(t_label.to_owned()))?;
        // §3.4, field-sensitive: a pair is usable only when both paths'
        // traversed fields are unmodified between the two points, so each
        // path is valid at both statements.
        let mut pairs = Vec::new();
        for (hs, ps) in s.apm.paths_of(&s.access.ptr) {
            if !s.apm.path_valid_at(&ps, &t.apm) {
                continue;
            }
            for (ht, pt) in t.apm.paths_of(&t.access.ptr) {
                if hs != ht || !t.apm.path_valid_at(&pt, &s.apm) {
                    continue;
                }
                pairs.push((
                    MemRef::new(AccessPath::new(hs.clone(), ps.clone()), s.access.field),
                    MemRef::new(AccessPath::new(ht, pt), t.access.field),
                ));
            }
        }
        if pairs.is_empty() {
            return Err(QueryError::NoCommonAnchor);
        }
        Ok(pairs)
    }

    /// Builds the memory-reference pair for a loop-carried self-dependence
    /// query on the labeled statement: the access at iteration `i` versus
    /// the access at a later iteration `j > i`, both anchored at the
    /// induction variable's value at iteration `i` (the paper's §5
    /// formulation).
    ///
    /// `loop_label` selects the loop level; `None` means the innermost
    /// enclosing loop that has an induction anchor for the access.
    ///
    /// # Errors
    ///
    /// See [`QueryError`].
    pub fn loop_carried_pair(
        &self,
        label: &str,
        loop_label: Option<&str>,
    ) -> Result<(MemRef, MemRef), QueryError> {
        let snap = self
            .snapshot(label)
            .ok_or_else(|| QueryError::NoSuchLabel(label.to_owned()))?;
        if snap.loops.is_empty() {
            return Err(QueryError::NotInLoop(label.to_owned()));
        }
        let frames: Vec<&LoopFrame> = match loop_label {
            Some(l) => snap
                .loops
                .iter()
                .filter(|f| f.label.as_deref() == Some(l))
                .collect(),
            None => snap.loops.iter().rev().collect(),
        };
        for frame in frames {
            if frame.wildcard_stores {
                continue;
            }
            for (h_iter, delta) in frame.induction.values() {
                if let Some(path_i) = snap.apm.path_from(h_iter, &snap.access.ptr) {
                    // The iteration-relative formulation is only valid when
                    // the body leaves the traversed fields untouched: a
                    // store to one of them may redirect the walk between
                    // iterations i and j.
                    let mut fields = path_i.to_regex().symbols();
                    fields.extend(delta.to_regex().symbols());
                    if fields.iter().any(|f| frame.stored_fields.contains(f)) {
                        continue;
                    }
                    // iteration j = i + (≥1) applications of Δ
                    let mut path_j = Path::new(vec![Component::Plus(delta.clone())]);
                    path_j = path_j.concat(path_i);
                    let r_i = MemRef::new(
                        AccessPath::new(h_iter.clone(), path_i.clone()),
                        snap.access.field,
                    );
                    let r_j =
                        MemRef::new(AccessPath::new(h_iter.clone(), path_j), snap.access.field);
                    return Ok((r_i, r_j));
                }
            }
        }
        Err(QueryError::NoCommonAnchor)
    }

    /// Runs the full dependence test between two labeled statements, using
    /// the program's axioms.
    ///
    /// # Errors
    ///
    /// See [`QueryError`].
    pub fn test_sequential(&self, s_label: &str, t_label: &str) -> Result<TestOutcome, QueryError> {
        let pairs = self.sequential_pairs(s_label, t_label)?;
        let s = self.snapshot(s_label).expect("checked above");
        let t = self.snapshot(t_label).expect("checked above");
        let axioms = self.valid_axioms(&[s, t]);
        let tester = self.tester(&axioms);
        let mut last = None;
        for (s, t) in &pairs {
            let outcome = tester.test(s, t, HandleRelation::Same);
            match outcome.answer {
                Answer::No | Answer::Yes => return Ok(outcome),
                Answer::Maybe => last = Some(outcome),
            }
        }
        Ok(last.expect("pairs nonempty"))
    }

    /// Runs the loop-carried dependence test for the labeled statement.
    ///
    /// # Errors
    ///
    /// See [`QueryError`].
    pub fn test_loop_carried(
        &self,
        label: &str,
        loop_label: Option<&str>,
    ) -> Result<TestOutcome, QueryError> {
        let (ri, rj) = self.loop_carried_pair(label, loop_label)?;
        let snap = self.snapshot(label).expect("checked above");
        let axioms = self.valid_axioms(&[snap]);
        let tester = self.tester(&axioms);
        Ok(tester.test(&ri, &rj, HandleRelation::Same))
    }

    /// Resolves one [`BatchQuery`] to its memory-reference pairs and the
    /// axiom set valid at the points it touches.
    fn plan_query(
        &self,
        query: &BatchQuery,
    ) -> Result<(Vec<(MemRef, MemRef)>, AxiomSet), QueryError> {
        match query {
            BatchQuery::Sequential { from, to } => {
                let pairs = self.sequential_pairs(from, to)?;
                let s = self.snapshot(from).expect("checked above");
                let t = self.snapshot(to).expect("checked above");
                Ok((pairs, self.valid_axioms(&[s, t])))
            }
            BatchQuery::LoopCarried { label, loop_label } => {
                let pair = self.loop_carried_pair(label, loop_label.as_deref())?;
                let snap = self.snapshot(label).expect("checked above");
                Ok((vec![pair], self.valid_axioms(&[snap])))
            }
        }
    }

    /// Runs many dependence queries as engine batches and reports the
    /// per-query outcomes together with the engine cache statistics.
    ///
    /// Verdict-identical to running [`Analysis::test_sequential`] /
    /// [`Analysis::test_loop_carried`] per query: each query's pairs are
    /// resolved the same way, and the same first-definite-else-last
    /// selection applies. Queries whose points agree on the valid axiom
    /// set (compared by content — §3.4 may suspend different axioms at
    /// different points) share one [`DepEngine`] and therefore one
    /// proof/subset/DFA cache; each shared engine fans its queries out
    /// over [`BatchOptions::jobs`] threads via [`DepTest::test_batch`].
    ///
    /// One outcome (or [`QueryError`]) is returned per input query, in
    /// order, in [`BatchReport::results`].
    pub fn run_batch(&self, queries: &[BatchQuery], options: &BatchOptions) -> BatchReport {
        struct Slot {
            group: usize,
            range: Range<usize>,
        }
        type Tasks = Vec<(MemRef, MemRef, HandleRelation)>;
        // Group queries by axiom-set content. `AxiomSet` identity is
        // per-construction, so the rendered form is the grouping key.
        let mut group_of: HashMap<String, usize> = HashMap::new();
        let mut groups: Vec<(DepTest, Tasks)> = Vec::new();
        let mut slots: Vec<Result<Slot, QueryError>> = Vec::with_capacity(queries.len());
        for query in queries {
            match self.plan_query(query) {
                Err(e) => slots.push(Err(e)),
                Ok((pairs, axioms)) => {
                    let key = axioms.to_string();
                    let group = *group_of.entry(key).or_insert_with(|| {
                        let engine = DepEngine::with_config(axioms, self.config.clone());
                        let tester = match &self.portfolio {
                            Some(cfg) => DepTest::with_engine(engine)
                                .with_portfolio_tallies(cfg.clone(), &self.tallies),
                            None => DepTest::with_engine(engine),
                        };
                        groups.push((tester, Vec::new()));
                        groups.len() - 1
                    });
                    let tasks = &mut groups[group].1;
                    let start = tasks.len();
                    tasks.extend(pairs.into_iter().map(|(s, t)| (s, t, HandleRelation::Same)));
                    slots.push(Ok(Slot {
                        group,
                        range: start..tasks.len(),
                    }));
                }
            }
        }
        let outcomes: Vec<Vec<TestOutcome>> = groups
            .iter()
            .map(|(tester, tasks)| tester.test_batch(tasks, options.jobs))
            .collect();
        let mut cache = CacheStats::default();
        for (tester, _) in &groups {
            cache.absorb(&tester.engine().cache_stats());
        }
        let results = slots
            .into_iter()
            .map(|slot| {
                let Slot { group, range } = slot?;
                let outs = &outcomes[group][range];
                // Mirror test_sequential: first definite answer wins,
                // otherwise the last Maybe is reported.
                let settled = outs
                    .iter()
                    .find(|o| matches!(o.answer, Answer::No | Answer::Yes));
                Ok(settled
                    .or_else(|| outs.last())
                    .expect("plan_query yields at least one pair")
                    .clone())
            })
            .collect();
        BatchReport { results, cache }
    }

    /// The full query workload for this procedure, mirroring `apt report`:
    /// an (innermost) loop-carried query for every labeled access inside a
    /// loop, then a sequential query for every label pair where at least
    /// one side writes.
    ///
    /// The ordering is deterministic and part of the contract: snapshots
    /// are sorted by `(stmt_index, label)` — statement position in the
    /// walk order, label as tie-break — loop-carried queries come first in
    /// that order, then sequential pairs `(i, j)` with `i` before `j` in
    /// the same order. Two analyses of the same program text therefore
    /// produce the same query list, so table diffs between runs are
    /// stable and incremental caches keyed on the rendered queries are
    /// insensitive to container iteration order.
    pub fn all_queries(&self) -> Vec<BatchQuery> {
        let mut snaps: Vec<&Snapshot> = self.snapshots().collect();
        snaps.sort_by_key(|s| (s.stmt_index, s.label.as_str()));
        let mut queries = Vec::new();
        for snap in &snaps {
            if !snap.loops.is_empty() {
                queries.push(BatchQuery::LoopCarried {
                    label: snap.label.clone(),
                    loop_label: None,
                });
            }
        }
        for (i, a) in snaps.iter().enumerate() {
            for b in snaps.iter().skip(i + 1) {
                if a.access.is_write || b.access.is_write {
                    queries.push(BatchQuery::Sequential {
                        from: a.label.clone(),
                        to: b.label.clone(),
                    });
                }
            }
        }
        queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_ir::parse_program;

    const TREE: &str = r"
        type LLBinaryTree {
            ptr L: LLBinaryTree;
            ptr R: LLBinaryTree;
            ptr N: LLBinaryTree;
            data d;
            axiom A1: forall p, p.L <> p.R;
            axiom A2: forall p <> q, p.(L|R) <> q.(L|R);
            axiom A3: forall p <> q, p.N <> q.N;
            axiom A4: forall p, p.(L|R|N)+ <> p.eps;
        }
    ";

    const LIST: &str = r"
        type List {
            ptr link: List;
            data f;
            axiom A1: forall p <> q, p.link <> q.link;
            axiom A2: forall p, p.link+ <> p.eps;
        }
    ";

    #[test]
    fn paper_subr_example_end_to_end() {
        // The exact code fragment of §3.3.
        let src = format!(
            "{TREE}
            proc subr(root: LLBinaryTree) {{
                root = root->L;
                p = root->L;
                p = p->N;
            S:  p->d = 100;
                p = root;
                q = root->R;
                q = q->N;
            T:  t = q->d;
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "subr").unwrap();
        // The snapshots hold the paper's paths.
        let s = analysis.snapshot("S").unwrap();
        let paths: Vec<String> = s
            .apm
            .paths_of("p")
            .into_iter()
            .map(|(_, p)| p.to_string())
            .collect();
        assert!(paths.contains(&"L.L.N".to_owned()), "got {paths:?}");
        // And the dependence test answers No, as the paper proves.
        let outcome = analysis.test_sequential("S", "T").unwrap();
        assert_eq!(outcome.answer, Answer::No);
    }

    #[test]
    fn figure1_loop_carried_output_dependence_is_broken() {
        // Figure 1's right fragment: U: q->f = fun(); q = q->link;
        // The loop-carried output dependence U→U is disproven by listness.
        let src = format!(
            "{LIST}
            proc fig1(head: List) {{
                q = head;
                loop {{
                U:  q->f = fun();
                    q = q->link;
                }}
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "fig1").unwrap();
        let (ri, rj) = analysis.loop_carried_pair("U", None).unwrap();
        assert_eq!(ri.access.path.to_string(), "eps");
        assert_eq!(rj.access.path.to_string(), "link+");
        let outcome = analysis.test_loop_carried("U", None).unwrap();
        assert_eq!(outcome.answer, Answer::No);
    }

    #[test]
    fn loop_carried_dependence_not_broken_without_axioms() {
        let src = r"
            type List { ptr link: List; data f; }
            proc fig1(head: List) {
                q = head;
                loop {
                U:  q->f = fun();
                    q = q->link;
                }
            }";
        let program = parse_program(src).unwrap();
        let analysis = analyze_proc(&program, "fig1").unwrap();
        let outcome = analysis.test_loop_carried("U", None).unwrap();
        assert_eq!(outcome.answer, Answer::Maybe);
    }

    #[test]
    fn widening_produces_star_paths() {
        let src = format!(
            "{LIST}
            proc walk(head: List) {{
                q = head;
                loop {{
                    q = q->link;
                }}
            V:  q->f = 1;
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "walk").unwrap();
        let v = analysis.snapshot("V").unwrap();
        let paths: Vec<String> = v
            .apm
            .paths_of("q")
            .into_iter()
            .map(|(_, p)| p.to_string())
            .collect();
        assert!(
            paths.iter().any(|p| p.contains("link*")),
            "expected widened path, got {paths:?}"
        );
    }

    #[test]
    fn sequential_same_location_is_yes() {
        let src = format!(
            "{TREE}
            proc f(root: LLBinaryTree) {{
                p = root->L;
                q = root->L;
            S:  p->d = 1;
            T:  t = q->d;
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "f").unwrap();
        let outcome = analysis.test_sequential("S", "T").unwrap();
        assert_eq!(outcome.answer, Answer::Yes);
    }

    #[test]
    fn structural_modification_is_field_sensitive() {
        // Store to root->R between S and T: p itself is untouched (its
        // own ε anchor survives), so the same-location dependence is
        // still seen — a Yes, where the coarse §3.4 treatment could only
        // say Maybe.
        let src = format!(
            "{TREE}
            proc f(root: LLBinaryTree) {{
                p = root->L;
            S:  p->d = 1;
                n = malloc(LLBinaryTree);
                root->R = n;
            T:  t = p->d;
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "f").unwrap();
        let outcome = analysis.test_sequential("S", "T").unwrap();
        assert_eq!(outcome.answer, Answer::Yes);

        // But a cross-variable query whose paths traverse the stored
        // field is blocked: q re-walks root->L after L was modified, so
        // S's L-path is stale.
        let src = format!(
            "{TREE}
            proc g(root: LLBinaryTree) {{
                p = root->L;
            S:  p->d = 1;
                n = malloc(LLBinaryTree);
                root->L = n;
                q = root->L;
            T:  t = q->d;
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "g").unwrap();
        assert!(matches!(
            analysis.sequential_pairs("S", "T"),
            Err(QueryError::NoCommonAnchor)
        ));
    }

    #[test]
    fn store_suspends_axioms_mentioning_the_field() {
        // After a store to N, axioms over N (A3, A4) are suspect; a
        // reassert restores them (§3.4).
        let src = format!(
            "{TREE}
            proc f(root: LLBinaryTree) {{
                p = root->L;
                q = root->R;
                n = malloc(LLBinaryTree);
                p->N = n;
            S:  p->d = 1;
            T:  t = q->d;
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "f").unwrap();
        let s = analysis.snapshot("S").unwrap();
        let t = analysis.snapshot("T").unwrap();
        let valid = analysis.valid_axioms(&[s, t]);
        // A1, A2 survive (L/R only); A3, A4 mention N.
        assert!(valid.by_name("A1").is_some());
        assert!(valid.by_name("A2").is_some());
        assert!(valid.by_name("A3").is_none());
        assert!(valid.by_name("A4").is_none());
        // The L vs R query is still provable from the surviving axioms
        // (the paths don't traverse N, so they stayed valid too).
        let outcome = analysis.test_sequential("S", "T").unwrap();
        assert_eq!(outcome.answer, Answer::No);

        // With a reassert after the insertion, everything is usable again.
        let src = format!(
            "{TREE}
            proc g(root: LLBinaryTree) {{
                p = root->L;
                q = root->R;
                n = malloc(LLBinaryTree);
                p->N = n;
                reassert;
            S:  p->d = 1;
            T:  t = q->d;
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "g").unwrap();
        let s = analysis.snapshot("S").unwrap();
        let t = analysis.snapshot("T").unwrap();
        assert_eq!(analysis.valid_axioms(&[s, t]).len(), 4);
    }

    #[test]
    fn if_branches_join_conservatively() {
        let src = format!(
            "{TREE}
            proc f(root: LLBinaryTree) {{
                if {{ p = root->L; }} else {{ p = root->R; }}
            S:  p->d = 1;
            T:  t = root->d;
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "f").unwrap();
        // p's path differs between branches, so p has no anchor after the
        // join; the query cannot be phrased.
        assert!(analysis.sequential_pairs("S", "T").is_err());
    }

    #[test]
    fn nested_loops_give_paper_sparse_paths() {
        // The §5 factorization pattern: outer loop over rows (r induction),
        // inner loop over the row's elements (e induction).
        let src = r"
            type Elem {
                ptr nrowE: Elem;
                ptr ncolE: Elem;
                data val;
                axiom A1: forall p <> q, p.ncolE <> q.ncolE;
                axiom A2: forall p, p.ncolE+ <> p.nrowE+;
                axiom A3: forall p, p.(ncolE|nrowE)+ <> p.eps;
            }
            proc factor(row: Elem) {
                r = row;
                loop {
                    e = r->ncolE;
                    loop {
                    S:  e->val = fun();
                        e = e->ncolE;
                    }
                    r = r->nrowE;
                }
            }";
        let program = parse_program(src).unwrap();
        let analysis = analyze_proc(&program, "factor").unwrap();
        // Outer-loop carried dependence on S: iteration i accesses
        // hr.ncolE.ncolE*, iteration j accesses hr.nrowE+.ncolE.ncolE* —
        // the paper's Theorem T. APT breaks it.
        let (ri, rj) = analysis
            .loop_carried_pair("S", None)
            .or_else(|_| analysis.loop_carried_pair("S", Some("outer")))
            .unwrap();
        let _ = (&ri, &rj);
        let outcome = analysis.test_loop_carried("S", None).unwrap();
        assert_eq!(outcome.answer, Answer::No);
    }

    #[test]
    fn read_only_call_preserves_paths() {
        // A call that only reads must not invalidate the caller's paths:
        // S (before the call) and T (after) still share _hroot.
        let src = format!(
            "{TREE}
            proc peek(t: LLBinaryTree) {{
            P:  v = t->d;
            }}
            proc f(root: LLBinaryTree) {{
                p = root->L;
            S:  p->d = 1;
                call peek(p);
                q = root->R;
            T:  t = q->d;
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "f").unwrap();
        let outcome = analysis.test_sequential("S", "T").unwrap();
        assert_eq!(outcome.answer, Answer::No);
        // The callee's labeled access was recorded under its call-site
        // namespace, anchored at the caller's handle.
        let inner = analysis.snapshot("peek@1::P").expect("inlined label");
        let paths: Vec<String> = inner
            .apm
            .paths_of(&inner.access.ptr)
            .into_iter()
            .map(|(_, p)| p.to_string())
            .collect();
        assert!(paths.contains(&"L".to_owned()), "{paths:?}");
    }

    #[test]
    fn mutating_call_invalidates_traversing_paths() {
        // The inlined callee stores t->L: every L-traversing anchor dies,
        // but p's own ε anchor survives — the true p->d self-dependence
        // is still seen.
        let src = format!(
            "{TREE}
            proc grow(t: LLBinaryTree) {{
                n = malloc(LLBinaryTree);
                t->L = n;
            }}
            proc f(root: LLBinaryTree) {{
                p = root->L;
            S:  p->d = 1;
                call grow(p);
            T:  t = p->d;
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "f").unwrap();
        let outcome = analysis.test_sequential("S", "T").unwrap();
        assert_eq!(outcome.answer, Answer::Yes);
        // A cross-variable L-path query across the same call is blocked.
        let src = format!(
            "{TREE}
            proc grow(t: LLBinaryTree) {{
                n = malloc(LLBinaryTree);
                t->L = n;
            }}
            proc g(root: LLBinaryTree) {{
                p = root->L;
            S:  p->d = 1;
                call grow(root);
                q = root->L;
            T:  t = q->d;
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "g").unwrap();
        assert!(analysis.sequential_pairs("S", "T").is_err());
    }

    #[test]
    fn unknown_and_recursive_calls_are_conservative() {
        let src = format!(
            "{TREE}
            proc f(root: LLBinaryTree) {{
                p = root->L;
            S:  p->d = 1;
                call mystery(p);
            T:  t = p->d;
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "f").unwrap();
        assert!(analysis.sequential_pairs("S", "T").is_err());

        let src = format!(
            "{TREE}
            proc f(root: LLBinaryTree) {{
                p = root->L;
            S:  p->d = 1;
                call f(p);
            T:  t = p->d;
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "f").unwrap();
        assert!(analysis.sequential_pairs("S", "T").is_err());
    }

    #[test]
    fn nested_calls_get_distinct_namespaces() {
        let src = format!(
            "{TREE}
            proc peek(t: LLBinaryTree) {{
            P:  v = t->d;
            }}
            proc f(root: LLBinaryTree) {{
                p = root->L;
                call peek(p);
                q = root->R;
                call peek(q);
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "f").unwrap();
        assert!(analysis.snapshot("peek@1::P").is_some());
        assert!(analysis.snapshot("peek@2::P").is_some());
        // The two inlined reads are anchored at different subtrees:
        // provably independent despite being the same source statement.
        let outcome = analysis.test_sequential("peek@1::P", "peek@2::P").unwrap();
        assert_eq!(outcome.answer, Answer::No);
    }

    #[test]
    fn stores_inside_loops_invalidate_paths_across_the_loop() {
        // Regression: the widened loop state must carry the body's store
        // bookkeeping, or S's L-path would wrongly count as valid at T.
        let src = format!(
            "{TREE}
            proc f(root: LLBinaryTree) {{
                p = root->L;
            S:  p->d = 1;
                loop {{
                    n = malloc(LLBinaryTree);
                    root->L = n;
                }}
                q = root->L;
            T:  t = q->d;
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "f").unwrap();
        assert!(
            analysis.sequential_pairs("S", "T").is_err(),
            "L-paths must not survive a loop that stores L"
        );
        // And axioms over L are suspect after the loop.
        let t = analysis.snapshot("T").unwrap();
        assert!(analysis.valid_axioms(&[t]).by_name("A1").is_none());
    }

    #[test]
    fn fillin_style_loop_with_reassert_keeps_axioms_usable() {
        // The §5 full-analysis pattern: each iteration inserts (stores)
        // and then reasserts the invariants; the per-iteration write
        // query is still provable at the loop head.
        let src = r"
            type Cell {
                ptr link: Cell;
                data f;
                axiom A1: forall p <> q, p.link <> q.link;
                axiom A2: forall p, p.link+ <> p.eps;
            }
            proc insert_sweep(head: Cell) {
                q = head;
                loop {
                U:  q->f = fun();
                    n = malloc(Cell);
                    n->link = q;
                    reassert;
                    q = q->link;
                }
            }";
        let program = parse_program(src).unwrap();
        let analysis = analyze_proc(&program, "insert_sweep").unwrap();
        // The store makes link-axioms suspect mid-iteration, but by U (top
        // of the next iteration, after the reassert) they are valid again…
        let u = analysis.snapshot("U").unwrap();
        assert_eq!(analysis.valid_axioms(&[u]).len(), 2);
        // …but the loop-carried query walks `link`, which the body stores:
        // the insertion could redirect the walk between iterations, so the
        // iteration-relative formulation is refused outright.
        assert!(matches!(
            analysis.loop_carried_pair("U", None),
            Err(QueryError::NoCommonAnchor)
        ));
    }

    #[test]
    fn batch_matches_sequential_queries() {
        // Mixed workload over the §3.3 tree example plus a loop: the
        // batched answers must equal the one-at-a-time answers, errors
        // included, in order.
        let src = format!(
            "{TREE}
            proc subr(root: LLBinaryTree) {{
                root = root->L;
                p = root->L;
                p = p->N;
            S:  p->d = 100;
                p = root;
                q = root->R;
                q = q->N;
            T:  t = q->d;
                w = root;
                loop {{
                U:  w->d = 1;
                    w = w->N;
                }}
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "subr").unwrap();
        let queries = analysis.all_queries();
        assert!(queries.contains(&BatchQuery::LoopCarried {
            label: "U".to_owned(),
            loop_label: None,
        }));
        assert!(queries.contains(&BatchQuery::Sequential {
            from: "S".to_owned(),
            to: "T".to_owned(),
        }));
        let sequential: Vec<Result<(Answer, _), QueryError>> = queries
            .iter()
            .map(|q| {
                match q {
                    BatchQuery::Sequential { from, to } => analysis.test_sequential(from, to),
                    BatchQuery::LoopCarried { label, loop_label } => {
                        analysis.test_loop_carried(label, loop_label.as_deref())
                    }
                }
                .map(|o| (o.answer, o.reason))
            })
            .collect();
        for jobs in [1, 3] {
            let batched: Vec<Result<(Answer, _), QueryError>> = analysis
                .run_batch(&queries, &BatchOptions::new().with_jobs(jobs))
                .results
                .into_iter()
                .map(|r| r.map(|o| (o.answer, o.reason)))
                .collect();
            assert_eq!(batched, sequential, "jobs={jobs}");
        }
    }

    #[test]
    fn all_queries_order_is_stable_and_statement_indexed() {
        // Labels chosen so lexicographic and statement order disagree: the
        // contract sorts by (stmt_index, label), i.e. program position.
        let src = format!(
            "{LIST}
            proc f(h: List) {{
            Z:  h->f = 1;
                loop {{
                A:  h->f = 2;
                    h = h->link;
                }}
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "f").unwrap();
        assert_eq!(analysis.snapshot("Z").unwrap().stmt_index, 0);
        assert_eq!(analysis.snapshot("A").unwrap().stmt_index, 1);
        let queries = analysis.all_queries();
        assert_eq!(
            queries,
            vec![
                BatchQuery::LoopCarried {
                    label: "A".to_owned(),
                    loop_label: None,
                },
                BatchQuery::Sequential {
                    from: "Z".to_owned(),
                    to: "A".to_owned(),
                },
            ]
        );
        // Re-analyzing the identical text yields the identical list.
        let again = analyze_proc(&parse_program(&src).unwrap(), "f").unwrap();
        assert_eq!(again.all_queries(), queries);
    }

    #[test]
    fn batch_reports_errors_in_position() {
        let src = format!("{LIST} proc f(h: List) {{ S: h->f = 1; }}");
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "f").unwrap();
        let queries = vec![
            BatchQuery::LoopCarried {
                label: "S".to_owned(),
                loop_label: None,
            },
            BatchQuery::Sequential {
                from: "S".to_owned(),
                to: "missing".to_owned(),
            },
        ];
        let report = analysis.run_batch(&queries, &BatchOptions::new().with_jobs(2));
        assert!(matches!(report.results[0], Err(QueryError::NotInLoop(_))));
        assert!(matches!(report.results[1], Err(QueryError::NoSuchLabel(_))));
        assert!(report.any_maybe());
    }

    #[test]
    fn missing_label_errors() {
        let src = format!("{LIST} proc f(h: List) {{ q = h; }}");
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "f").unwrap();
        assert!(matches!(
            analysis.sequential_pairs("S", "T"),
            Err(QueryError::NoSuchLabel(_))
        ));
        assert!(matches!(
            analysis.loop_carried_pair("S", None),
            Err(QueryError::NoSuchLabel(_))
        ));
    }

    #[test]
    fn not_in_loop_errors() {
        let src = format!(
            "{LIST}
            proc f(h: List) {{
            S:  h->f = 1;
            }}"
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze_proc(&program, "f").unwrap();
        assert!(matches!(
            analysis.loop_carried_pair("S", None),
            Err(QueryError::NotInLoop(_))
        ));
    }
}
