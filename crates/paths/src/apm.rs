//! Access path matrices (§3.3 of the paper).
//!
//! "There exists an APM at each program point, where each entry in an APM
//! denotes a path (or set of paths) which may have been traversed up to
//! (but not including) that point in the program." Rows are *handles*
//! (fixed anchor vertices), columns are pointer variables.

use apt_core::Handle;
use apt_ir::{Stmt, StmtKind};
use apt_regex::{Component, Path, Symbol};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An access path matrix: `entries[(handle, var)] = path`.
///
/// Besides the matrix itself, the state tracks the §3.4 bookkeeping:
/// a per-field *version* (bumped by every store to that field — an access
/// path is valid across a region iff the versions of every field it
/// traverses are unchanged), the set of fields whose axioms are currently
/// *suspect* (a store may have broken the structure invariants mentioning
/// that field, until a `reassert`), and a wildcard flag for opaque calls
/// that may have modified anything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Apm {
    entries: BTreeMap<(Handle, String), Path>,
    /// Bumped by every structural modification; a cheap summary of the
    /// per-field versions.
    epoch: u64,
    /// Store count per pointer field.
    field_versions: BTreeMap<Symbol, u64>,
    /// Bumped when an un-inlinable call may have modified unknown fields.
    wildcard_version: u64,
    /// Fields whose axioms are suspect since the last `reassert`.
    dirty_axiom_fields: BTreeSet<Symbol>,
    /// Set when an opaque call makes *every* axiom suspect.
    all_axioms_dirty: bool,
}

impl Apm {
    /// The empty matrix.
    pub fn new() -> Apm {
        Apm::default()
    }

    /// The structural-modification epoch at this program point.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Declares a pointer variable anchored at a fresh handle (procedure
    /// entry, per the paper's `_hroot`).
    pub fn seed_var(&mut self, var: &str) -> Handle {
        let h = Handle::for_variable(var);
        self.entries
            .insert((h.clone(), var.to_owned()), Path::epsilon());
        h
    }

    /// All `(handle, path)` rows for one variable.
    pub fn paths_of(&self, var: &str) -> Vec<(Handle, Path)> {
        self.entries
            .iter()
            .filter(|((_, v), _)| v == var)
            .map(|((h, _), p)| (h.clone(), p.clone()))
            .collect()
    }

    /// The path of `var` relative to `handle`, if recorded.
    pub fn path_from(&self, handle: &Handle, var: &str) -> Option<&Path> {
        self.entries.get(&(handle.clone(), var.to_owned()))
    }

    /// Handles common to two variables — the starting point of a
    /// dependence query ("we scan the APMs … looking for a handle common to
    /// both p and q").
    pub fn common_handles(&self, var_a: &str, var_b: &str) -> Vec<Handle> {
        let ha: Vec<Handle> = self.paths_of(var_a).into_iter().map(|(h, _)| h).collect();
        self.paths_of(var_b)
            .into_iter()
            .map(|(h, _)| h)
            .filter(|h| ha.contains(h))
            .collect()
    }

    /// The live handles (rows).
    pub fn handles(&self) -> Vec<Handle> {
        let mut hs: Vec<Handle> = self.entries.keys().map(|(h, _)| h.clone()).collect();
        hs.sort();
        hs.dedup();
        hs
    }

    /// The tracked variables (columns).
    pub fn vars(&self) -> Vec<String> {
        let mut vs: Vec<String> = self.entries.keys().map(|(_, v)| v.clone()).collect();
        vs.sort();
        vs.dedup();
        vs
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn kill_var(&mut self, var: &str) {
        self.entries.retain(|(_, v), _| v != var);
    }

    /// Directly records `var = handle.path`. Used by the analysis driver
    /// when constructing widened loop states; ordinary clients should rely
    /// on [`Apm::transfer`].
    pub fn insert_entry(&mut self, handle: Handle, var: String, path: Path) {
        self.entries.insert((handle, var), path);
    }

    /// Overrides the structural-modification epoch (used when a widened
    /// loop state must inherit the epoch of the probed loop body).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Copies the §3.4 modification bookkeeping (epoch, field versions,
    /// wildcard counter, suspect-axiom sets) from another state. Used when
    /// a widened loop state must reflect the stores its body performs —
    /// otherwise paths could be wrongly considered valid across the loop.
    pub fn inherit_modifications(&mut self, from: &Apm) {
        self.epoch = from.epoch;
        self.field_versions = from.field_versions.clone();
        self.wildcard_version = from.wildcard_version;
        self.dirty_axiom_fields = from.dirty_axiom_fields.clone();
        self.all_axioms_dirty = from.all_axioms_dirty;
    }

    /// Drops every variable column not in `keep` (used when leaving an
    /// inlined callee: its locals go out of scope).
    pub fn retain_vars(&mut self, keep: &BTreeSet<String>) {
        self.entries.retain(|(_, v), _| keep.contains(v));
    }

    /// The store count of one field.
    pub fn field_version(&self, field: Symbol) -> u64 {
        self.field_versions.get(&field).copied().unwrap_or(0)
    }

    /// The opaque-call counter.
    pub fn wildcard_version(&self) -> u64 {
        self.wildcard_version
    }

    /// Fields whose axioms are suspect since the last `reassert`.
    pub fn dirty_axiom_fields(&self) -> &BTreeSet<Symbol> {
        &self.dirty_axiom_fields
    }

    /// Whether an opaque call has made every axiom suspect.
    pub fn all_axioms_dirty(&self) -> bool {
        self.all_axioms_dirty
    }

    /// The fields stored to between `earlier` and `self`, plus whether an
    /// opaque call may have stored to anything.
    pub fn modified_fields_since(&self, earlier: &Apm) -> (BTreeSet<Symbol>, bool) {
        let mut fields = BTreeSet::new();
        for (f, v) in &self.field_versions {
            if *v > earlier.field_version(*f) {
                fields.insert(*f);
            }
        }
        (fields, self.wildcard_version > earlier.wildcard_version)
    }

    /// Whether a path collected at `self` is still valid at `later`: no
    /// field it traverses has been stored to in between (§3.3: "since none
    /// of the pointer fields in the data structure have been modified
    /// between S and T, we know that p's access path is still valid").
    pub fn path_valid_at(&self, path: &Path, later: &Apm) -> bool {
        if self.wildcard_version != later.wildcard_version {
            return false;
        }
        path.to_regex()
            .symbols()
            .into_iter()
            .all(|f| self.field_version(f) == later.field_version(f))
    }

    /// Applies one statement's transfer function.
    pub fn transfer(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::PtrCopy { dst, src } => {
                if dst == src {
                    return;
                }
                let src_entries = self.paths_of(src);
                self.kill_var(dst);
                for (h, p) in src_entries {
                    self.entries.insert((h, dst.clone()), p);
                }
                // Fresh handle anchoring the (re)assigned variable.
                let h = Handle::for_variable(dst);
                self.entries.insert((h, dst.clone()), Path::epsilon());
            }
            StmtKind::PtrLoad { dst, src, field } => {
                if dst == src {
                    // Self-relative update: extend every path; no new
                    // handle (the induction-variable exception of §3.3).
                    let keys: Vec<(Handle, String)> = self
                        .entries
                        .keys()
                        .filter(|(_, v)| v == dst)
                        .cloned()
                        .collect();
                    for k in keys {
                        if let Some(p) = self.entries.get_mut(&k) {
                            p.push(Component::Field(*field));
                        }
                    }
                } else {
                    let src_entries = self.paths_of(src);
                    self.kill_var(dst);
                    for (h, p) in src_entries {
                        let mut p = p;
                        p.push(Component::Field(*field));
                        self.entries.insert((h, dst.clone()), p);
                    }
                    let h = Handle::for_variable(dst);
                    self.entries.insert((h, dst.clone()), Path::epsilon());
                }
            }
            StmtKind::PtrNew { dst, .. } => {
                self.kill_var(dst);
                let h = Handle::for_variable(dst);
                self.entries.insert((h, dst.clone()), Path::epsilon());
            }
            StmtKind::PtrNull { dst } => {
                self.kill_var(dst);
            }
            StmtKind::Call { .. } => {
                // Reaching the local transfer function means the analysis
                // driver could not inline the call (unknown callee,
                // recursion, arity mismatch): assume the callee may
                // restructure anything reachable.
                let vars = self.vars();
                self.entries.clear();
                for v in vars {
                    let h = Handle::for_variable(&v);
                    self.entries.insert((h, v), Path::epsilon());
                }
                self.epoch += 1;
                self.wildcard_version += 1;
                for v in self.field_versions.values_mut() {
                    *v += 1;
                }
                self.all_axioms_dirty = true;
            }
            StmtKind::PtrStore { field, .. } => {
                // Structural modification (§3.4), field-sensitive: a store
                // to `field` can only divert paths that traverse `field`,
                // and can only break invariants that mention `field`.
                // Entries whose path avoids the field stay valid; variables
                // that lose every anchor are re-anchored fresh.
                let vars = self.vars();
                let f = *field;
                self.entries.retain(|_, path| !path_mentions(path, f));
                for v in vars {
                    if self.paths_of(&v).is_empty() {
                        let h = Handle::for_variable(&v);
                        self.entries.insert((h, v), Path::epsilon());
                    }
                }
                self.epoch += 1;
                *self.field_versions.entry(f).or_insert(0) += 1;
                self.dirty_axiom_fields.insert(f);
            }
            StmtKind::Reassert => {
                // The programmer asserts the declared structure invariants
                // hold again (inserts complete, §3.4): axioms become
                // usable; previously collected paths stay invalid (the
                // edges really changed).
                self.dirty_axiom_fields.clear();
                self.all_axioms_dirty = false;
            }
            StmtKind::ScalarWrite { .. }
            | StmtKind::ScalarRead { .. }
            | StmtKind::ScalarAssign { .. } => {}
            StmtKind::Loop { .. } | StmtKind::If { .. } => {
                // Compound statements are handled by the analysis driver,
                // not by the local transfer function.
            }
        }
    }

    /// The join of two matrices at a control-flow merge: entries present in
    /// both with identical paths survive; everything else is dropped
    /// (conservative — a dropped variable simply has no usable anchor).
    #[must_use]
    pub fn join(&self, other: &Apm) -> Apm {
        let entries = self
            .entries
            .iter()
            .filter(|(k, p)| other.entries.get(*k) == Some(*p))
            .map(|(k, p)| (k.clone(), p.clone()))
            .collect();
        let mut field_versions = self.field_versions.clone();
        for (f, v) in &other.field_versions {
            let e = field_versions.entry(*f).or_insert(0);
            *e = (*e).max(*v);
        }
        Apm {
            entries,
            epoch: self.epoch.max(other.epoch),
            field_versions,
            wildcard_version: self.wildcard_version.max(other.wildcard_version),
            dirty_axiom_fields: self
                .dirty_axiom_fields
                .union(&other.dirty_axiom_fields)
                .copied()
                .collect(),
            all_axioms_dirty: self.all_axioms_dirty || other.all_axioms_dirty,
        }
    }
}

/// Whether a path traverses the given field anywhere.
fn path_mentions(path: &Path, field: Symbol) -> bool {
    path.to_regex().symbols().contains(&field)
}

impl fmt::Display for Apm {
    /// Renders in the paper's matrix layout: rows are handles, columns are
    /// variables.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vars = self.vars();
        let handles = self.handles();
        write!(f, "{:<10}", "APM")?;
        for v in &vars {
            write!(f, " {v:<14}")?;
        }
        writeln!(f)?;
        for h in &handles {
            write!(f, "{:<10}", h.to_string())?;
            for v in &vars {
                let cell = self
                    .path_from(h, v)
                    .map_or(String::new(), |p| p.to_string());
                write!(f, " {cell:<14}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_ir::Stmt;
    use apt_regex::Symbol;

    fn load(dst: &str, src: &str, field: &str) -> Stmt {
        Stmt::new(StmtKind::PtrLoad {
            dst: dst.into(),
            src: src.into(),
            field: Symbol::intern(field),
        })
    }

    #[test]
    fn paper_apm_at_statement_s() {
        // root = root->L; p = root->L; p = p->N;  (paper §3.3)
        let mut apm = Apm::new();
        let hroot = apm.seed_var("root");
        apm.transfer(&load("root", "root", "L"));
        apm.transfer(&load("p", "root", "L"));
        apm.transfer(&load("p", "p", "N"));

        assert_eq!(apm.path_from(&hroot, "root").unwrap().to_string(), "L");
        assert_eq!(apm.path_from(&hroot, "p").unwrap().to_string(), "L.L.N");
        // p also has its own handle with path N
        let own: Vec<(Handle, Path)> = apm
            .paths_of("p")
            .into_iter()
            .filter(|(h, _)| *h != hroot)
            .collect();
        assert_eq!(own.len(), 1);
        assert_eq!(own[0].1.to_string(), "N");
    }

    #[test]
    fn copy_reanchors_and_destroys_old_handle() {
        // continuing the paper's example: p = root
        let mut apm = Apm::new();
        let hroot = apm.seed_var("root");
        apm.transfer(&load("root", "root", "L"));
        apm.transfer(&load("p", "root", "L"));
        apm.transfer(&load("p", "p", "N"));
        apm.transfer(&Stmt::new(StmtKind::PtrCopy {
            dst: "p".into(),
            src: "root".into(),
        }));
        // _hp (old) is gone: p's entries are _hroot.L and fresh _hp2.eps
        let entries = apm.paths_of("p");
        assert_eq!(entries.len(), 2);
        assert_eq!(apm.path_from(&hroot, "p").unwrap().to_string(), "L");
        assert!(entries.iter().any(|(h, p)| *h != hroot && p.is_epsilon()));
    }

    #[test]
    fn common_handles_found() {
        let mut apm = Apm::new();
        let hroot = apm.seed_var("root");
        apm.transfer(&load("p", "root", "L"));
        apm.transfer(&load("q", "root", "R"));
        let common = apm.common_handles("p", "q");
        assert_eq!(common, vec![hroot]);
    }

    #[test]
    fn malloc_gives_fresh_anchor_only() {
        let mut apm = Apm::new();
        apm.seed_var("root");
        apm.transfer(&Stmt::new(StmtKind::PtrNew {
            dst: "q".into(),
            ty: "T".into(),
        }));
        let entries = apm.paths_of("q");
        assert_eq!(entries.len(), 1);
        assert!(entries[0].1.is_epsilon());
        assert!(apm.common_handles("root", "q").is_empty());
    }

    #[test]
    fn structural_store_invalidates_paths_and_bumps_epoch() {
        let mut apm = Apm::new();
        apm.seed_var("root");
        apm.transfer(&load("p", "root", "L"));
        assert_eq!(apm.epoch(), 0);
        apm.transfer(&Stmt::new(StmtKind::PtrStore {
            ptr: "root".into(),
            field: Symbol::intern("L"),
            src: Some("p".into()),
        }));
        assert_eq!(apm.epoch(), 1);
        // Every variable is re-anchored with ε; no cross-variable handles.
        assert!(apm.common_handles("root", "p").is_empty());
        for (_, p) in apm.paths_of("p") {
            assert!(p.is_epsilon());
        }
    }

    #[test]
    fn null_kills_variable() {
        let mut apm = Apm::new();
        apm.seed_var("p");
        apm.transfer(&Stmt::new(StmtKind::PtrNull { dst: "p".into() }));
        assert!(apm.paths_of("p").is_empty());
    }

    #[test]
    fn join_keeps_agreeing_entries() {
        let mut a = Apm::new();
        let h = a.seed_var("root");
        let mut b = a.clone();
        a.transfer(&load("p", "root", "L"));
        b.transfer(&load("p", "root", "L"));
        // The fresh handles for p differ between branches, but the
        // root-anchored entries agree.
        let j = a.join(&b);
        assert_eq!(j.path_from(&h, "p").unwrap().to_string(), "L");
        assert_eq!(j.paths_of("p").len(), 1);
    }

    #[test]
    fn display_matrix_layout() {
        let mut apm = Apm::new();
        apm.seed_var("root");
        apm.transfer(&load("p", "root", "L"));
        let s = apm.to_string();
        assert!(s.contains("_hroot"));
        assert!(s.contains("root"));
    }
}
