//! Access-path collection for the APT dependence test.
//!
//! Part of the reproduction of Hummel, Hendren & Nicolau (PLDI 1994). This
//! crate implements the *memory reference analysis* of the paper's Figure 4:
//! it walks `apt-ir` programs maintaining an **access path matrix**
//! ([`Apm`], §3.3) per program point — rows are handles, columns are
//! pointer variables — and turns labeled statements into the
//! handle-anchored [`apt_core::MemRef`]s that `deptest` consumes.
//!
//! Loops receive the paper's induction-variable treatment: self-relative
//! updates (`r = r->nrowE`) keep their handles, paths widen with the
//! per-iteration growth (`P·Δ*`), and loop-carried queries are phrased
//! relative to the induction variable's value at an arbitrary iteration
//! `i` — reproducing the §5 theorem `hr.ncolE+ <> hr.nrowE+ncolE+` shape
//! automatically. Procedure calls are inlined per call site
//! (McCAT-style), with recursion and unknown callees handled
//! conservatively.
//!
//! Structural modifications follow §3.4 field-sensitively: a store to
//! field `f` invalidates exactly the paths that traverse `f` (per-field
//! version counters), suspends axioms mentioning `f` until the program
//! `reassert`s its invariants, and loop-carried queries refuse deltas
//! over fields the loop body stores.
//!
//! ```
//! use apt_core::Answer;
//! use apt_paths::analyze_proc;
//!
//! let program = apt_ir::parse_program(r"
//!     type List {
//!         ptr link: List;
//!         data f;
//!         axiom A1: forall p <> q, p.link <> q.link;
//!         axiom A2: forall p, p.link+ <> p.eps;
//!     }
//!     proc update(head: List) {
//!         q = head;
//!         loop {
//!         U:  q->f = fun();
//!             q = q->link;
//!         }
//!     }
//! ").unwrap();
//! let analysis = analyze_proc(&program, "update").unwrap();
//! // The loop-carried output dependence U → U of the paper's Figure 1 is
//! // disproven:
//! let outcome = analysis.test_loop_carried("U", None).unwrap();
//! assert_eq!(outcome.answer, Answer::No);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod apm;
mod program;

pub use analysis::{
    analyze_proc, Access, Analysis, BatchOptions, BatchQuery, BatchReport, LoopFrame, QueryError,
    Snapshot,
};
pub use apm::Apm;
pub use program::{
    analyze_program, fnv1a, query_key, DepTable, ProcReport, ProcVerdicts, ProgramAnalysis,
    ProgramReport, ReportRow, RowOutcome, StoredVerdict, REPLAY_PROOF_SAMPLE,
};
