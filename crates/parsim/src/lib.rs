//! A deterministic multiprocessor substitute for the paper's 8-PE Sequent.
//!
//! Figure 7 of the paper reports speedups from hand-parallelized C on a
//! 1988-era shared-memory machine. This crate replaces that testbed with a
//! deterministic model (documented as a substitution in `DESIGN.md`):
//! workloads emit *task traces* — sequences of steps, each a bag of
//! independent tasks with measured operation counts — and a list scheduler
//! assigns the tasks of parallel steps onto `P` processing elements.
//! Speedup is `T(1)/T(P)` where `T(P)` sums per-step makespans.
//!
//! What Fig. 7 actually demonstrates — *which loops the dependence test
//! parallelizes and how much parallelism that exposes* — is preserved:
//! a step is only scheduled in parallel when the analysis (partial or
//! full, see `apt-bench`) has broken its loop-carried dependences;
//! everything else serializes.
//!
//! [`execute_parallel`] additionally runs real closures on real threads
//! (crossbeam scoped), used by the tests to confirm that "independent"
//! task sets are actually race-free on the concrete data structures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One step of a workload: a bag of tasks with operation-count costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Step name (e.g. `"eliminate"`), for reporting.
    pub name: String,
    /// Per-task costs in abstract operations.
    pub tasks: Vec<u64>,
    /// Whether the dependence analysis allows this step's tasks to run
    /// concurrently. Sequential steps execute as a single chain.
    pub parallel: bool,
}

impl Step {
    /// A parallel step.
    pub fn parallel(name: impl Into<String>, tasks: Vec<u64>) -> Step {
        Step {
            name: name.into(),
            tasks,
            parallel: true,
        }
    }

    /// A sequential step.
    pub fn sequential(name: impl Into<String>, tasks: Vec<u64>) -> Step {
        Step {
            name: name.into(),
            tasks,
            parallel: false,
        }
    }

    /// Total work in the step.
    pub fn total_work(&self) -> u64 {
        self.tasks.iter().sum()
    }
}

/// A whole workload trace: steps execute in order (a barrier between
/// steps), tasks within a parallel step run concurrently.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// The steps in execution order.
    pub steps: Vec<Step>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends a step.
    pub fn push(&mut self, step: Step) {
        self.steps.push(step);
    }

    /// Appends every step of another trace.
    pub fn extend_from(&mut self, other: &Trace) {
        self.steps.extend(other.steps.iter().cloned());
    }

    /// Total work across all steps (= `T(1)`).
    pub fn total_work(&self) -> u64 {
        self.steps.iter().map(Step::total_work).sum()
    }

    /// Simulated execution time on `pes` processing elements.
    ///
    /// Parallel steps are list-scheduled (longest-processing-time first,
    /// greedy earliest-finish); sequential steps run as a chain on one PE.
    ///
    /// # Panics
    ///
    /// Panics if `pes == 0`.
    pub fn makespan(&self, pes: usize) -> u64 {
        assert!(pes > 0, "at least one processing element required");
        self.steps
            .iter()
            .map(|s| {
                if s.parallel {
                    list_schedule(&s.tasks, pes)
                } else {
                    s.total_work()
                }
            })
            .sum()
    }

    /// Speedup `T(1)/T(pes)`.
    ///
    /// # Panics
    ///
    /// Panics if `pes == 0`.
    pub fn speedup(&self, pes: usize) -> f64 {
        let t1 = self.total_work() as f64;
        let tp = self.makespan(pes) as f64;
        if tp == 0.0 {
            1.0
        } else {
            t1 / tp
        }
    }

    /// Simulated execution time on an explicit [`MachineModel`]: like
    /// [`Trace::makespan`], but every parallel step additionally pays the
    /// machine's fork/join barrier overhead (sequentially). With more than
    /// one PE the barrier is charged even to sequential steps' boundaries
    /// being crossed is free — only parallel dispatch costs.
    ///
    /// # Panics
    ///
    /// Panics if `machine.pes == 0`.
    pub fn makespan_on(&self, machine: MachineModel) -> u64 {
        assert!(machine.pes > 0, "at least one processing element required");
        self.steps
            .iter()
            .map(|s| {
                if s.parallel && machine.pes > 1 && !s.tasks.is_empty() {
                    list_schedule(&s.tasks, machine.pes) + machine.barrier_overhead
                } else {
                    s.total_work()
                }
            })
            .sum()
    }

    /// Speedup `T(1 PE, no overhead)/T(machine)`.
    ///
    /// # Panics
    ///
    /// Panics if `machine.pes == 0`.
    pub fn speedup_on(&self, machine: MachineModel) -> f64 {
        let t1 = self.total_work() as f64;
        let tp = self.makespan_on(machine) as f64;
        if tp == 0.0 {
            1.0
        } else {
            t1 / tp
        }
    }
}

/// A shared-memory multiprocessor: PE count plus the fork/join barrier
/// cost (in the same abstract operation units as task costs) paid by each
/// parallel step. Models the synchronization overhead of the paper's
/// bus-based Sequent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineModel {
    /// Number of processing elements.
    pub pes: usize,
    /// Fork/join cost charged once per parallel step.
    pub barrier_overhead: u64,
}

impl MachineModel {
    /// An ideal machine with free synchronization.
    pub fn ideal(pes: usize) -> MachineModel {
        MachineModel {
            pes,
            barrier_overhead: 0,
        }
    }
}

/// Longest-processing-time-first list scheduling of independent tasks onto
/// `pes` identical processors; returns the makespan. LPT is the classic
/// 4/3-optimal heuristic and mirrors what a static loop scheduler achieves
/// on independent iterations.
///
/// # Panics
///
/// Panics if `pes == 0`.
pub fn list_schedule(tasks: &[u64], pes: usize) -> u64 {
    assert!(pes > 0, "at least one processing element required");
    if tasks.is_empty() {
        return 0;
    }
    let mut sorted: Vec<u64> = tasks.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    // Min-heap of PE finish times.
    let mut heap: BinaryHeap<Reverse<u64>> = (0..pes).map(|_| Reverse(0)).collect();
    for t in sorted {
        let Reverse(earliest) = heap.pop().expect("heap has pes entries");
        heap.push(Reverse(earliest + t));
    }
    heap.into_iter().map(|Reverse(t)| t).max().unwrap_or(0)
}

/// Runs independent closures on up to `pes` real threads (static chunking),
/// for validating that task sets the analysis declared independent are
/// actually race-free. Results are returned in task order.
///
/// # Panics
///
/// Panics if `pes == 0` or if a task panics.
pub fn execute_parallel<T, F>(tasks: Vec<F>, pes: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    assert!(pes > 0, "at least one processing element required");
    let n = tasks.len();
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(pes).max(1);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut rest: &mut [Option<T>] = &mut results;
        let mut task_iter = tasks.into_iter();
        loop {
            let take = chunk.min(rest.len());
            if take == 0 {
                break;
            }
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let chunk_tasks: Vec<F> = task_iter.by_ref().take(take).collect();
            handles.push(scope.spawn(move |_| {
                for (slot, task) in head.iter_mut().zip(chunk_tasks) {
                    *slot = Some(task());
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
    })
    .expect("scope failed");
    results
        .into_iter()
        .map(|r| r.expect("every task ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_schedule_balances_equal_tasks() {
        assert_eq!(list_schedule(&[1; 8], 4), 2);
        assert_eq!(list_schedule(&[1; 8], 8), 1);
        assert_eq!(list_schedule(&[1; 8], 1), 8);
    }

    #[test]
    fn list_schedule_handles_imbalance() {
        // One giant task dominates.
        assert_eq!(list_schedule(&[100, 1, 1, 1], 4), 100);
        // LPT on two PEs: 5|4, 3→PE2 (7), 3→PE1 (8), 3→PE2 (10). The
        // optimum is 9 (5+4 | 3+3+3); LPT's 10 is within its 4/3 bound.
        assert_eq!(list_schedule(&[5, 4, 3, 3, 3], 2), 10);
    }

    #[test]
    fn empty_tasks_are_free() {
        assert_eq!(list_schedule(&[], 4), 0);
    }

    #[test]
    fn sequential_steps_do_not_scale() {
        let mut trace = Trace::new();
        trace.push(Step::sequential("adjust", vec![10, 10]));
        assert_eq!(trace.makespan(8), 20);
        assert!((trace.speedup(8) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_steps_scale() {
        let mut trace = Trace::new();
        trace.push(Step::parallel("eliminate", vec![5; 8]));
        assert_eq!(trace.makespan(1), 40);
        assert_eq!(trace.makespan(4), 10);
        assert!((trace.speedup(4) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn amdahl_shape() {
        // Half the work sequential → speedup approaches 2.
        let mut trace = Trace::new();
        trace.push(Step::sequential("seq", vec![100]));
        trace.push(Step::parallel("par", vec![1; 100]));
        let s7 = trace.speedup(7);
        assert!(s7 > 1.5 && s7 < 2.0, "Amdahl bound violated: {s7}");
    }

    #[test]
    fn speedup_monotone_in_pes() {
        let mut trace = Trace::new();
        trace.push(Step::parallel("a", (1..50).collect()));
        trace.push(Step::sequential("b", vec![30]));
        trace.push(Step::parallel("c", vec![7; 31]));
        let mut prev = 0.0;
        for p in 1..=8 {
            let s = trace.speedup(p);
            assert!(s + 1e-9 >= prev, "speedup dropped at {p} PEs");
            prev = s;
        }
    }

    #[test]
    fn trace_composition() {
        let mut a = Trace::new();
        a.push(Step::parallel("x", vec![1, 2]));
        let mut b = Trace::new();
        b.push(Step::sequential("y", vec![3]));
        a.extend_from(&b);
        assert_eq!(a.steps.len(), 2);
        assert_eq!(a.total_work(), 6);
    }

    #[test]
    fn execute_parallel_returns_in_order() {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let results = execute_parallel(tasks, 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, i * i);
        }
    }

    #[test]
    fn execute_parallel_single_pe() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..5u32)
            .map(|i| Box::new(move || i + 1) as Box<dyn FnOnce() -> u32 + Send>)
            .collect();
        assert_eq!(execute_parallel(tasks, 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_pes_panics() {
        let _ = list_schedule(&[1], 0);
    }

    #[test]
    fn machine_overhead_reduces_speedup() {
        let mut trace = Trace::new();
        for _ in 0..10 {
            trace.push(Step::parallel("p", vec![10; 8]));
        }
        let ideal = trace.speedup_on(MachineModel::ideal(4));
        let real = trace.speedup_on(MachineModel {
            pes: 4,
            barrier_overhead: 20,
        });
        assert!(real < ideal, "overhead must cost: {real} vs {ideal}");
        // One PE never pays barriers.
        let m1 = MachineModel {
            pes: 1,
            barrier_overhead: 999,
        };
        assert_eq!(trace.makespan_on(m1), trace.total_work());
    }
}
