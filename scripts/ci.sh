#!/usr/bin/env bash
# Local CI gate: build, full test suite, lint, formatting.
# Run from the repository root; fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> batch throughput benchmark (smoke: 1 repetition)"
cargo run -q --release -p apt-bench --bin batch_throughput -- --smoke

echo "==> subset-kernel latency benchmark (smoke: verdict identity)"
# The bin itself exits nonzero on any kernel disagreement; double-check the
# recorded artifact so a silent write failure cannot pass the gate.
cargo run -q --release -p apt-bench --bin subset_latency -- --smoke
if ! grep -q '"verdicts_identical": true' BENCH_subset.json; then
    echo "error: BENCH_subset.json does not record identical verdicts" >&2
    exit 1
fi

echo "==> prover throughput benchmark (smoke: indexed vs linear parity)"
# The bin exits nonzero if the indexed search diverges from the linear
# axiom scan on any verdict; double-check the recorded artifact too.
cargo run -q --release -p apt-bench --bin prover_throughput -- --smoke
if ! grep -q '"verdicts_identical": true' BENCH_prover.json; then
    echo "error: BENCH_prover.json does not record identical verdicts" >&2
    exit 1
fi

echo "==> proof search must go through the compiled dispatch index"
# The CompiledAxioms refactor removed every linear axiom scan (and the
# per-call eq-axiom cloning) from the prover hot path; reintroducing
# either form defeats the index.
linear_scans=$(grep -nE 'self\.axioms\.iter\(\)|of_kind\([^)]*\)\.cloned\(\)' \
    crates/core/src/prover.rs 2>/dev/null || true)
if [[ -n "$linear_scans" ]]; then
    echo "error: linear axiom scan on the prover hot path (use CompiledAxioms):" >&2
    echo "$linear_scans" >&2
    exit 1
fi

echo "==> subset caches in apt-core must key on RegexId, not strings"
# The arena refactor removed Display-formatted regex strings from every
# cache key on the subset hot path; a (String, String) key reintroduces
# the formatting cost and bypasses hash-consed equality.
string_keys=$(grep -rnE '\(String, *String\)' --include='*.rs' crates/core 2>/dev/null || true)
if [[ -n "$string_keys" ]]; then
    echo "error: string-keyed cache in crates/core (use (RegexId, RegexId)):" >&2
    echo "$string_keys" >&2
    exit 1
fi

echo "==> deprecated prover API must not be used inside the workspace"
# The deprecated prove_* shims live in crates/core/src/prover.rs; nothing
# else may call them (or silence the lint to sneak a call through).
deprecated_usage=$(grep -rnE '\.prove_(disjoint|equal)(_governed)?\(|allow\(deprecated\)' \
    --include='*.rs' src crates tests examples 2>/dev/null \
    | grep -v '^crates/core/src/prover.rs:' || true)
if [[ -n "$deprecated_usage" ]]; then
    echo "error: deprecated prover API usage found:" >&2
    echo "$deprecated_usage" >&2
    exit 1
fi

echo "CI gate passed."
