#!/usr/bin/env bash
# Local CI gate: build, full test suite, lint, formatting.
# Run from the repository root; fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "CI gate passed."
