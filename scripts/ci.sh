#!/usr/bin/env bash
# Local CI gate: build, full test suite, lint, formatting.
# Run from the repository root; fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> batch throughput benchmark (smoke: 1 repetition)"
cargo run -q --release -p apt-bench --bin batch_throughput -- --smoke

echo "==> deprecated prover API must not be used inside the workspace"
# The deprecated prove_* shims live in crates/core/src/prover.rs; nothing
# else may call them (or silence the lint to sneak a call through).
deprecated_usage=$(grep -rnE '\.prove_(disjoint|equal)(_governed)?\(|allow\(deprecated\)' \
    --include='*.rs' src crates tests examples 2>/dev/null \
    | grep -v '^crates/core/src/prover.rs:' || true)
if [[ -n "$deprecated_usage" ]]; then
    echo "error: deprecated prover API usage found:" >&2
    echo "$deprecated_usage" >&2
    exit 1
fi

echo "CI gate passed."
