#!/usr/bin/env bash
# Local CI gate: build, full test suite, lint, formatting.
# Run from the repository root; fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> batch throughput benchmark (smoke: 1 repetition)"
cargo run -q --release -p apt-bench --bin batch_throughput -- --smoke

echo "==> subset-kernel latency benchmark (smoke: verdict identity)"
# The bin itself exits nonzero on any kernel disagreement; double-check the
# recorded artifact so a silent write failure cannot pass the gate.
cargo run -q --release -p apt-bench --bin subset_latency -- --smoke
if ! grep -q '"verdicts_identical": true' BENCH_subset.json; then
    echo "error: BENCH_subset.json does not record identical verdicts" >&2
    exit 1
fi

echo "==> prover throughput benchmark (smoke: indexed vs linear parity)"
# The bin exits nonzero if the indexed search diverges from the linear
# axiom scan on any verdict; double-check the recorded artifact too.
cargo run -q --release -p apt-bench --bin prover_throughput -- --smoke
if ! grep -q '"verdicts_identical": true' BENCH_prover.json; then
    echo "error: BENCH_prover.json does not record identical verdicts" >&2
    exit 1
fi

echo "==> the DFA transition table must stay flat (no nested Vec rows)"
# The data-oriented refactor replaced the per-state Vec<Vec<usize>> rows
# with one contiguous row-major Box<[u32]>; a nested table reintroduces a
# pointer chase per state on the product-walk hot path.
nested_rows=$(grep -nE 'Vec<\s*Vec<\s*usize\s*>\s*>' crates/regex/src/dfa.rs 2>/dev/null || true)
if [[ -n "$nested_rows" ]]; then
    echo "error: nested Vec<Vec<usize>> transition rows in dfa.rs (use the flat table):" >&2
    echo "$nested_rows" >&2
    exit 1
fi

echo "==> proof search must go through the compiled dispatch index"
# The CompiledAxioms refactor removed every linear axiom scan (and the
# per-call eq-axiom cloning) from the prover hot path; reintroducing
# either form defeats the index.
linear_scans=$(grep -nE 'self\.axioms\.iter\(\)|of_kind\([^)]*\)\.cloned\(\)' \
    crates/core/src/prover.rs 2>/dev/null || true)
if [[ -n "$linear_scans" ]]; then
    echo "error: linear axiom scan on the prover hot path (use CompiledAxioms):" >&2
    echo "$linear_scans" >&2
    exit 1
fi

echo "==> subset caches in apt-core must key on RegexId, not strings"
# The arena refactor removed Display-formatted regex strings from every
# cache key on the subset hot path; a (String, String) key reintroduces
# the formatting cost and bypasses hash-consed equality.
string_keys=$(grep -rnE '\(String, *String\)' --include='*.rs' crates/core 2>/dev/null || true)
if [[ -n "$string_keys" ]]; then
    echo "error: string-keyed cache in crates/core (use (RegexId, RegexId)):" >&2
    echo "$string_keys" >&2
    exit 1
fi

# (The pre-0.2 deprecated prove_* shim grep is gone: the shims themselves
# were removed from crates/core/src/prover.rs, so the compiler now enforces
# what the grep used to.)

echo "==> the deprecated Analysis::test_batch shims stay deleted"
# run_batch is the one batch entry point; the PR 7 #[deprecated] shims are
# gone from crates/paths entirely. DepTest::test_batch in crates/core is a
# different, non-deprecated API — analysis.rs's grouped call to it (and
# the core crate itself) is the one permitted spelling.
shim_revival=$(grep -rnE 'fn test_batch(_with_stats)?\(|\.test_batch_with_stats\(' \
    --include='*.rs' crates/paths crates/cli crates/serve crates/bench \
    src tests examples 2>/dev/null || true)
if [[ -n "$shim_revival" ]]; then
    echo "error: the deprecated Analysis batch shims are back (use run_batch):" >&2
    echo "$shim_revival" >&2
    exit 1
fi

echo "==> incremental analyze benchmark (smoke: verdict parity)"
# The bin exits nonzero if any incremental verdict diverges from the
# from-scratch run; double-check the recorded artifact too.
cargo run -q --release -p apt-bench --bin analyze_incremental -- --smoke
if ! grep -q '"verdicts_identical": true' BENCH_analyze.json; then
    echo "error: BENCH_analyze.json does not record identical verdicts" >&2
    exit 1
fi

echo "==> portfolio maybe-rate benchmark (smoke: witness + parity gate)"
# The bin exits nonzero if a definite verdict diverges between the
# axiomatic prover and the portfolio, a witness fails re-validation, or
# the portfolio fails to collapse any Maybe; double-check the artifact.
cargo run -q --release -p apt-bench --bin portfolio_maybe_rate -- --smoke
if ! grep -q '"behaved": true' BENCH_portfolio.json; then
    echo "error: BENCH_portfolio.json does not record a well-behaved run" >&2
    exit 1
fi

echo "==> serve throughput benchmark (smoke: warm-session parity + overload)"
# The bin exits nonzero if any warm-session verdict diverges from the
# in-process oracle or admission control misbehaves; double-check the
# recorded artifact too.
cargo run -q --release -p apt-bench --bin serve_throughput -- --smoke
if ! grep -q '"verdicts_identical": true' BENCH_serve.json; then
    echo "error: BENCH_serve.json does not record identical verdicts" >&2
    exit 1
fi
if ! grep -q '"behaved": true' BENCH_serve.json; then
    echo "error: BENCH_serve.json does not record a well-behaved overload probe" >&2
    exit 1
fi
# The restart probe must restore warm, answer identically, and beat a cold
# restart by >=3x (the bin enforces the threshold; "behaved" records it).
if ! grep -Eq '"restart": \{.*"restore": "warm".*"behaved": true' BENCH_serve.json; then
    echo "error: BENCH_serve.json does not record a well-behaved warm restart" >&2
    exit 1
fi
# The concurrency probe must hold its idle crowd with zero thread growth,
# identical verdicts, and recorded latency quantiles.
if ! grep -Eq '"concurrency": \{.*"behaved": true' BENCH_serve.json; then
    echo "error: BENCH_serve.json does not record a well-behaved concurrency probe" >&2
    exit 1
fi
if ! grep -Eq '"concurrency": \{.*"p99_us": [0-9]+' BENCH_serve.json; then
    echo "error: BENCH_serve.json concurrency section lacks latency quantiles" >&2
    exit 1
fi

echo "==> connections must be reactor state, never threads"
# The epoll rewrite removed the accept-loop's two-threads-per-connection
# design. The reactor module must never spawn a thread, and server.rs may
# spawn only its fixed set (pool workers, the snapshot flusher) — a spawn
# count above that means someone put a thread back on a per-connection
# path.
reactor_spawns=$(grep -n 'thread::spawn' crates/serve/src/reactor.rs 2>/dev/null || true)
if [[ -n "$reactor_spawns" ]]; then
    echo "error: thread::spawn in the reactor (connections are state, not threads):" >&2
    echo "$reactor_spawns" >&2
    exit 1
fi
server_spawns=$(grep -c 'thread::spawn' crates/serve/src/server.rs || true)
if [[ "${server_spawns:-0}" -gt 2 ]]; then
    echo "error: server.rs spawns $server_spawns threads (expected <=2:" \
        "pool workers + snapshot flusher); no per-connection threads" >&2
    exit 1
fi

echo "==> connection-scaling smoke: idle conns are state, not threads"
APT=target/release/apt
# Hold a few hundred idle TCP connections (scaled to the fd limit) against
# a live daemon: its thread count must not move, its RSS growth must stay
# bounded, and it must keep answering through the crowd.
NOFILE=$(ulimit -n)
CONNS=500
if [[ "$NOFILE" != "unlimited" && "$NOFILE" -lt 4096 ]]; then
    CONNS=$((NOFILE / 8))
fi
ERRLOG=$(mktemp /tmp/apt-serve-conns.XXXXXX.log)
"$APT" serve --addr 127.0.0.1:0 --workers 2 2>"$ERRLOG" &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true; rm -f "$ERRLOG"' EXIT
PORT=""
for _ in $(seq 1 100); do
    PORT=$(sed -n 's/.*listening on tcp 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$ERRLOG")
    [[ -n "$PORT" ]] && break
    sleep 0.05
done
if [[ -z "$PORT" ]]; then
    echo "error: apt serve never reported its TCP port" >&2
    cat "$ERRLOG" >&2
    exit 1
fi
"$APT" client --addr "127.0.0.1:$PORT" health >/dev/null
THREADS_BEFORE=$(awk '/Threads/{print $2}' "/proc/$SERVE_PID/status")
RSS_BEFORE=$(awk '/VmRSS/{print $2}' "/proc/$SERVE_PID/status")
declare -a CONN_FDS=()
for _ in $(seq 1 "$CONNS"); do
    exec {fd}<>"/dev/tcp/127.0.0.1/$PORT"
    CONN_FDS+=("$fd")
done
sleep 0.3
THREADS_DURING=$(awk '/Threads/{print $2}' "/proc/$SERVE_PID/status")
RSS_DURING=$(awk '/VmRSS/{print $2}' "/proc/$SERVE_PID/status")
if [[ "$THREADS_DURING" -ne "$THREADS_BEFORE" ]]; then
    echo "error: $CONNS idle connections moved the daemon's thread count" \
        "($THREADS_BEFORE -> $THREADS_DURING)" >&2
    exit 1
fi
RSS_CONN_GROWTH=$((RSS_DURING - RSS_BEFORE))
if [[ "$RSS_CONN_GROWTH" -gt 16384 ]]; then
    echo "error: $CONNS idle connections grew RSS by ${RSS_CONN_GROWTH} kB (>16 MiB)" >&2
    exit 1
fi
stats=$("$APT" client --addr "127.0.0.1:$PORT" stats)
active=$(sed -n 's/.*"connections_active":\([0-9]*\).*/\1/p' <<<"$stats")
if [[ -z "$active" || "$active" -lt "$CONNS" ]]; then
    echo "error: daemon reports ${active:-0} active connections, expected >= $CONNS" >&2
    exit 1
fi
echo "    conns: $CONNS idle, threads $THREADS_BEFORE -> $THREADS_DURING," \
    "RSS growth ${RSS_CONN_GROWTH} kB"
for fd in "${CONN_FDS[@]}"; do
    exec {fd}>&-
done
"$APT" client --addr "127.0.0.1:$PORT" shutdown >/dev/null
if ! wait "$SERVE_PID"; then
    echo "error: apt serve exited nonzero after connection-scaling smoke" >&2
    exit 1
fi
trap - EXIT
rm -f "$ERRLOG"

echo "==> serve smoke: daemon on a Unix socket, verdict parity with apt prove"
SOCK="$(mktemp -u /tmp/apt-serve-ci.XXXXXX).sock"
"$APT" serve --socket "$SOCK" --workers 2 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$SOCK"' EXIT
for _ in $(seq 1 100); do
    [[ -S "$SOCK" ]] && break
    sleep 0.05
done
if [[ ! -S "$SOCK" ]]; then
    echo "error: apt serve did not create $SOCK" >&2
    exit 1
fi

# The daemon and the one-shot CLI must agree on every canned query:
# same answer, same exit-code convention (0 definite, 1 Maybe).
check_parity() {
    local axioms="$1" a="$2" b="$3"
    shift 3
    local sess direct_rc=0 served_rc=0
    sess=$("$APT" client --socket "$SOCK" open "$axioms" | sed 's/^session: //')
    "$APT" client --socket "$SOCK" prove "$sess" "$a" "$b" "$@" >/dev/null \
        || served_rc=$?
    "$APT" prove "$axioms" "$a" "$b" "$@" >/dev/null || direct_rc=$?
    if [[ "$served_rc" -ne "$direct_rc" ]]; then
        echo "error: verdict mismatch for $a <> $b ($axioms $*):" \
            "daemon exit $served_rc, apt prove exit $direct_rc" >&2
        exit 1
    fi
}
# Figure 3 leaf-linked tree: a provable pair and an unprovable one.
check_parity examples/programs/llt.adds L.L.N L.R.N
check_parity examples/programs/llt.adds L.N R.N
# §5 sparse matrix: a Theorem T instance and a distinct-origin probe.
check_parity examples/programs/sparse.axioms ncolE "nrowE.ncolE+"
check_parity examples/programs/sparse.axioms ncolE nrowE --distinct

# Structural dedupe: reopening the same set must return the same session.
s1=$("$APT" client --socket "$SOCK" open examples/programs/llt.adds)
s2=$("$APT" client --socket "$SOCK" open examples/programs/llt.adds)
if [[ "$s1" != "$s2" ]]; then
    echo "error: reopening an identical axiom set did not dedupe: $s1 vs $s2" >&2
    exit 1
fi

# Live metrics respond, then a clean shutdown: exit 0 and socket removed.
"$APT" client --socket "$SOCK" stats | grep -q '"ok":true'
"$APT" client --socket "$SOCK" shutdown >/dev/null
if ! wait "$SERVE_PID"; then
    echo "error: apt serve exited nonzero after shutdown" >&2
    exit 1
fi
trap - EXIT
if [[ -S "$SOCK" ]]; then
    echo "error: apt serve left its socket file behind" >&2
    exit 1
fi

echo "==> crash recovery smoke: SIGKILL a warm daemon, restart, answer warm"
SNAPDIR=$(mktemp -d /tmp/apt-serve-snap.XXXXXX)
SOCK="$(mktemp -u /tmp/apt-serve-crash.XXXXXX).sock"
"$APT" serve --socket "$SOCK" --workers 2 \
    --snapshot-dir "$SNAPDIR" --snapshot-interval-ms 100 &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true; rm -rf "$SNAPDIR" "$SOCK"' EXIT
for _ in $(seq 1 100); do
    [[ -S "$SOCK" ]] && break
    sleep 0.05
done
sess=$("$APT" client --socket "$SOCK" open examples/programs/llt.adds | sed 's/^session: //')
"$APT" client --socket "$SOCK" prove "$sess" L.L.N L.R.N >/dev/null || true
"$APT" client --socket "$SOCK" prove "$sess" L.N R.N >/dev/null || true
# Wait for a background flush that started strictly after the proves
# returned (a flush from before them would persist a not-yet-warm
# engine), then pull the plug: no drain, no graceful shutdown snapshot.
snap_writes() {
    "$APT" client --socket "$SOCK" stats \
        | sed -n 's/.*"writes_total":\([0-9]*\).*/\1/p'
}
w0=$(snap_writes)
for _ in $(seq 1 100); do
    w=$(snap_writes)
    [[ -n "$w" && "$w" -gt "${w0:-0}" ]] && break
    sleep 0.05
done
if [[ -z "$w" || "$w" -le "${w0:-0}" || ! -f "$SNAPDIR/apt-serve.snap" ]]; then
    echo "error: flusher never persisted the warm state to $SNAPDIR" >&2
    exit 1
fi
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
rm -f "$SOCK" # SIGKILL leaves the socket file behind; the operator sweeps it

"$APT" serve --socket "$SOCK" --workers 2 --snapshot-dir "$SNAPDIR" &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true; rm -rf "$SNAPDIR" "$SOCK"' EXIT
for _ in $(seq 1 100); do
    [[ -S "$SOCK" ]] && break
    sleep 0.05
done
# The restarted daemon must report a warm restore with real cache mass...
stats=$("$APT" client --socket "$SOCK" stats)
if ! grep -q '"last_restore":"warm"' <<<"$stats"; then
    echo "error: daemon did not restore warm after SIGKILL: $stats" >&2
    exit 1
fi
goals=$(sed -n 's/.*"restored_goals":\([0-9]*\).*/\1/p' <<<"$stats")
if [[ -z "$goals" || "$goals" -eq 0 ]]; then
    echo "error: warm restore restored no goal entries: $stats" >&2
    exit 1
fi
# ...and its answers must still match the one-shot CLI exactly.
check_parity examples/programs/llt.adds L.L.N L.R.N
check_parity examples/programs/llt.adds L.N R.N
"$APT" client --socket "$SOCK" shutdown >/dev/null
if ! wait "$SERVE_PID"; then
    echo "error: apt serve exited nonzero after crash-recovery shutdown" >&2
    exit 1
fi

echo "==> snapshot soak: rapid flush cycles with bounded RSS growth"
SOCK="$(mktemp -u /tmp/apt-serve-soak.XXXXXX).sock"
"$APT" serve --socket "$SOCK" --workers 2 \
    --snapshot-dir "$SNAPDIR" --snapshot-interval-ms 25 &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true; rm -rf "$SNAPDIR" "$SOCK"' EXIT
for _ in $(seq 1 100); do
    [[ -S "$SOCK" ]] && break
    sleep 0.05
done
sess=$("$APT" client --socket "$SOCK" open examples/programs/sparse.axioms | sed 's/^session: //')
"$APT" client --socket "$SOCK" prove "$sess" ncolE "nrowE.ncolE+" >/dev/null || true
sleep 0.5
RSS_START=$(awk '/VmRSS/{print $2}' "/proc/$SERVE_PID/status" 2>/dev/null || echo 0)
sleep 2.5
RSS_END=$(awk '/VmRSS/{print $2}' "/proc/$SERVE_PID/status" 2>/dev/null || echo 0)
stats=$("$APT" client --socket "$SOCK" stats)
writes=$(sed -n 's/.*"writes_total":\([0-9]*\).*/\1/p' <<<"$stats")
if [[ -z "$writes" || "$writes" -lt 20 ]]; then
    echo "error: soak expected >=20 snapshot writes, saw '${writes:-none}'" >&2
    exit 1
fi
if [[ "$RSS_START" -gt 0 && "$RSS_END" -gt 0 ]]; then
    RSS_GROWTH=$((RSS_END - RSS_START))
    if [[ "$RSS_GROWTH" -gt 32768 ]]; then
        echo "error: snapshot soak grew RSS by ${RSS_GROWTH} kB (>32 MiB)" >&2
        exit 1
    fi
    echo "    soak: $writes snapshot writes, RSS growth ${RSS_GROWTH} kB"
fi
"$APT" client --socket "$SOCK" shutdown >/dev/null
if ! wait "$SERVE_PID"; then
    echo "error: apt serve exited nonzero after soak shutdown" >&2
    exit 1
fi
trap - EXIT
rm -rf "$SNAPDIR"

echo "==> session-churn soak: LRU eviction compacts the arena, RSS bounded"
# Churn 40 distinct axiom sets through a 2-slot registry: each open past
# the cap evicts an engine, which closes its arena scope and compacts the
# evicted session's regex entries. The gate checks both signals — the
# stats memory block must report compaction work (arena_freed_total), and
# resident memory must plateau instead of growing with sets-ever-opened.
CHURNDIR=$(mktemp -d /tmp/apt-serve-churn.XXXXXX)
SOCK="$(mktemp -u /tmp/apt-serve-churn.XXXXXX).sock"
"$APT" serve --socket "$SOCK" --workers 2 --max-sessions 2 &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true; rm -rf "$CHURNDIR" "$SOCK"' EXIT
for _ in $(seq 1 100); do
    [[ -S "$SOCK" ]] && break
    sleep 0.05
done
for i in $(seq 1 40); do
    cat > "$CHURNDIR/set$i.axioms" <<EOF
A1: forall p <> q, p.churnF$i <> q.churnF$i
A2: forall p, p.churnG$i+ <> p.churnH$i.churnG$i*
EOF
done
# Warm-up opens fill the registry; record the baseline after they settle.
for i in 1 2; do
    "$APT" client --socket "$SOCK" open "$CHURNDIR/set$i.axioms" >/dev/null
done
CHURN_RSS_START=$(awk '/VmRSS/{print $2}' "/proc/$SERVE_PID/status" 2>/dev/null || echo 0)
for i in $(seq 3 40); do
    sess=$("$APT" client --socket "$SOCK" open "$CHURNDIR/set$i.axioms" | sed 's/^session: //')
    "$APT" client --socket "$SOCK" prove "$sess" "churnF$i" "churnF$i" --distinct \
        >/dev/null || true
done
CHURN_RSS_END=$(awk '/VmRSS/{print $2}' "/proc/$SERVE_PID/status" 2>/dev/null || echo 0)
stats=$("$APT" client --socket "$SOCK" stats)
freed=$(sed -n 's/.*"arena_freed_total":\([0-9]*\).*/\1/p' <<<"$stats")
scopes=$(sed -n 's/.*"arena_scopes":\([0-9]*\).*/\1/p' <<<"$stats")
if [[ -z "$freed" || "$freed" -eq 0 ]]; then
    echo "error: churn soak never compacted the arena (arena_freed_total=${freed:-missing})" >&2
    echo "$stats" >&2
    exit 1
fi
if [[ -z "$scopes" || "$scopes" -gt 2 ]]; then
    echo "error: churn soak left ${scopes:-?} arena scopes open (cap is 2 sessions)" >&2
    exit 1
fi
if [[ "$CHURN_RSS_START" -gt 0 && "$CHURN_RSS_END" -gt 0 ]]; then
    CHURN_GROWTH=$((CHURN_RSS_END - CHURN_RSS_START))
    if [[ "$CHURN_GROWTH" -gt 16384 ]]; then
        echo "error: churning 38 evicted sessions grew RSS by ${CHURN_GROWTH} kB (>16 MiB)" >&2
        exit 1
    fi
    echo "    churn: arena_freed_total=$freed, RSS growth ${CHURN_GROWTH} kB over 38 evictions"
fi
"$APT" client --socket "$SOCK" shutdown >/dev/null
if ! wait "$SERVE_PID"; then
    echo "error: apt serve exited nonzero after churn soak shutdown" >&2
    exit 1
fi
trap - EXIT
rm -rf "$CHURNDIR"

echo "==> analyze smoke: one-procedure edit, incremental vs cold parity"
ANDIR=$(mktemp -d /tmp/apt-analyze-ci.XXXXXX)
trap 'rm -rf "$ANDIR"' EXIT
BASE="$ANDIR/base.snap"
# Cold run over the two-procedure example builds the baseline table.
cold0_rc=0
"$APT" analyze examples/programs/twoproc.apt --baseline "$BASE" >/dev/null \
    || cold0_rc=$?
if [[ ! -f "$BASE" ]]; then
    echo "error: apt analyze did not persist the baseline table" >&2
    exit 1
fi
# Touch exactly one procedure, then compare a cold run of the edited
# program against the incremental --changed-only run: the exit-code
# convention (0 definite, 1 any-Maybe) must agree, and only the edited
# procedure may re-prove.
sed 's/h->f = 9;/h->f = 7;/' examples/programs/twoproc.apt > "$ANDIR/edited.apt"
cold_rc=0
"$APT" analyze "$ANDIR/edited.apt" >/dev/null || cold_rc=$?
warm_rc=0
warm_out=$("$APT" analyze "$ANDIR/edited.apt" --baseline "$BASE" --changed-only) \
    || warm_rc=$?
if [[ "$warm_rc" -ne "$cold_rc" ]]; then
    echo "error: incremental analyze exit $warm_rc, cold exit $cold_rc" >&2
    exit 1
fi
if ! grep -q '1/2 procedures reused' <<<"$warm_out"; then
    echo "error: expected exactly the unedited procedure to replay:" >&2
    echo "$warm_out" >&2
    exit 1
fi
if grep -q 'procedure update' <<<"$warm_out"; then
    echo "error: --changed-only printed the untouched procedure:" >&2
    echo "$warm_out" >&2
    exit 1
fi

# The same analysis through an apt-serve session: cold then warm against
# one named table, same exit-code convention as the one-shot CLI.
SOCK="$(mktemp -u /tmp/apt-analyze-ci.XXXXXX).sock"
"$APT" serve --socket "$SOCK" --workers 2 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$ANDIR" "$SOCK"' EXIT
for _ in $(seq 1 100); do
    [[ -S "$SOCK" ]] && break
    sleep 0.05
done
served_cold_rc=0
"$APT" client --socket "$SOCK" analyze "$ANDIR/edited.apt" --name ci >/dev/null \
    || served_cold_rc=$?
served_warm_rc=0
served_out=$("$APT" client --socket "$SOCK" analyze "$ANDIR/edited.apt" --name ci) \
    || served_warm_rc=$?
if [[ "$served_cold_rc" -ne "$cold_rc" || "$served_warm_rc" -ne "$cold_rc" ]]; then
    echo "error: served analyze exits ($served_cold_rc cold, $served_warm_rc warm)" \
        "disagree with apt analyze exit $cold_rc" >&2
    exit 1
fi
if ! grep -q '"procs_reused":2' <<<"$served_out"; then
    echo "error: served warm analyze did not replay both procedures:" >&2
    echo "$served_out" >&2
    exit 1
fi
"$APT" client --socket "$SOCK" shutdown >/dev/null
wait "$SERVE_PID" || {
    echo "error: apt serve exited nonzero after analyze smoke" >&2
    exit 1
}
trap - EXIT
rm -rf "$ANDIR"

echo "==> portfolio smoke: --engines all parity + refuter resolves a Maybe"
# Racing the engines must not change a definite answer: the provable
# Figure 3 pair stays No (exit 0) under --engines all.
solo_rc=0; raced_rc=0
"$APT" prove examples/programs/llt.adds L.L.N L.R.N >/dev/null || solo_rc=$?
"$APT" prove examples/programs/llt.adds L.L.N L.R.N --engines all >/dev/null \
    || raced_rc=$?
if [[ "$solo_rc" -ne 0 || "$raced_rc" -ne 0 ]]; then
    echo "error: --engines all changed a definite verdict" \
        "(solo exit $solo_rc, raced exit $raced_rc)" >&2
    exit 1
fi
# A known axiomatic Maybe (identical overlapping paths) must exit 1
# solo, and the refuter must settle it definitely (exit 0) with a
# re-validated witness heap.
maybe_rc=0
"$APT" prove examples/programs/llt.adds L.L.N L.L.N >/dev/null || maybe_rc=$?
if [[ "$maybe_rc" -ne 1 ]]; then
    echo "error: expected the axiomatic prover to answer Maybe (exit 1)," \
        "got exit $maybe_rc" >&2
    exit 1
fi
raced_out=$("$APT" prove examples/programs/llt.adds L.L.N L.L.N --engines all)
if ! grep -q 'engine: refuter' <<<"$raced_out" \
    || ! grep -q 're-validated' <<<"$raced_out"; then
    echo "error: the refuter did not resolve the known Maybe with a" \
        "validated witness:" >&2
    echo "$raced_out" >&2
    exit 1
fi

echo "CI gate passed."
