//! The §5 scenario end-to-end: Gaussian elimination on an orthogonal-list
//! sparse matrix, with APT deciding which factorization loops may run in
//! parallel (Theorem T), the kernels validated numerically, and the
//! speedups of Figure 7 simulated at a small scale.
//!
//! ```text
//! cargo run --release --example sparse_matrix
//! ```

use apt::axioms::{adds, check::check_set};
use apt::core::{DepQuery, Origin, Prover};
use apt::heaps::dense::{matvec, solve_dense};
use apt::heaps::gen::random_sparse_matrix;
use apt::heaps::numeric::{factor, solve, LoopClassification};
use apt::parsim::MachineModel;
use apt::regex::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Theorem T — the paper's flagship proof: iterating the submatrix
    //    row-by-row, iterations i < j never touch a common element.
    let axioms = adds::sparse_matrix_minimal_axioms();
    println!("axioms (§5):\n{axioms}");
    let mut prover = Prover::new(&axioms);
    let a = Path::parse("ncolE+")?;
    let b = Path::parse("nrowE+.ncolE+")?;
    let proof = DepQuery::disjoint(&a, &b)
        .origin(Origin::Same)
        .run_with(&mut prover)
        .proof
        .expect("Theorem T is provable");
    println!("Theorem T: forall hr, hr.{a} <> hr.{b} — PROVEN");
    println!("\n{proof}");

    // …and it also follows from the full twelve Appendix A axioms.
    let full = adds::sparse_matrix_axioms();
    let mut prover = Prover::new(&full);
    assert!(DepQuery::disjoint(&a, &b)
        .origin(Origin::Same)
        .run_with(&mut prover)
        .proof
        .is_some());
    println!("(also provable from the full Appendix A axiom set)");

    // 2. Build a circuit-style matrix and check it really satisfies the
    //    Appendix A axioms (model checking on the heap graph).
    let n = 150;
    let m0 = random_sparse_matrix(n, 6 * n, 7);
    let (graph, _root) = m0.heap_graph();
    check_set(&graph, &full).expect("instance satisfies Appendix A");
    println!(
        "\n{n}x{n} instance with {} nonzeros model-checks against Appendix A",
        m0.nnz()
    );

    // 3. Factor and solve; validate against the dense reference.
    let bvec: Vec<f64> = (0..n).map(|i| (i % 5) as f64 + 1.0).collect();
    let dense = m0.to_dense();
    let expect = solve_dense(&dense, &bvec).expect("system is regular");

    let mut m = m0.clone();
    let fr = factor(&mut m, LoopClassification::full());
    let (x, solve_trace) = solve(&m, &fr.pivots, &bvec, LoopClassification::full());
    let max_err = x
        .iter()
        .zip(&expect)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "factor: {} pivots, {} fillins; solve max |x - x_dense| = {max_err:.2e}",
        fr.pivots.len(),
        fr.fillins
    );
    assert!(max_err < 1e-6);
    let residual = matvec(&dense, &x)
        .iter()
        .zip(&bvec)
        .map(|(ax, b)| (ax - b).abs())
        .fold(0.0f64, f64::max);
    println!("residual max |Ax - b| = {residual:.2e}");

    // 4. Simulated speedups (Figure 7 in miniature): the same numerical
    //    work, scheduled under what each analysis proved.
    println!("\nsimulated speedups (barrier overhead 16 ops):");
    println!(
        "{:<10} {:>8} {:>8} {:>8}",
        "analysis", "2 PEs", "4 PEs", "7 PEs"
    );
    for (label, cls) in [
        ("partial", LoopClassification::partial()),
        ("full", LoopClassification::full()),
    ] {
        let mut m = m0.clone();
        let fr = factor(&mut m, cls);
        let (_, st) = solve(&m, &fr.pivots, &bvec, cls);
        let mut trace = fr.trace;
        trace.extend_from(&st);
        let row: Vec<String> = [2usize, 4, 7]
            .iter()
            .map(|&p| {
                format!(
                    "{:>8.2}",
                    trace.speedup_on(MachineModel {
                        pes: p,
                        barrier_overhead: 16
                    })
                )
            })
            .collect();
        println!("{:<10} {}", label, row.join(" "));
    }
    println!("\n(run `cargo run --release -p apt-bench --bin table_speedup` for the full 1000x1000 Figure 7)");
    let _ = solve_trace;
    Ok(())
}
