//! Quickstart: prove that two pointer references can never collide.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The scenario is the paper's §3.3: on a leaf-linked binary tree,
//! statement `S: p->d = 100` (where `p = root.L.L.N`) and statement
//! `T: … = q->d` (where `q = root.L.R.N`) look similar enough that every
//! pre-APT dependence test gives up — yet they can provably never touch
//! the same node.

use apt::core::{AccessPath, Answer, DepTest, Handle, HandleRelation, MemRef};
use apt::regex::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the data structure with aliasing axioms (Figure 3).
    //    `StructureSpec` offers the same thing as a builder.
    let axioms = apt::axioms::AxiomSet::parse(
        "A1: forall p, p.L <> p.R
         A2: forall p <> q, p.(L|R) <> q.(L|R)
         A3: forall p <> q, p.N <> q.N
         A4: forall p, p.(L|R|N)+ <> p.eps",
    )?;
    println!("axioms:\n{axioms}");

    // 2. Phrase the two memory references as handle-anchored access paths.
    let hroot = Handle::for_variable("root");
    let s = MemRef::new(AccessPath::new(hroot.clone(), Path::parse("L.L.N")?), "d");
    let t = MemRef::new(AccessPath::new(hroot, Path::parse("L.R.N")?), "d");
    println!("S writes {s}");
    println!("T reads  {t}");

    // 3. Ask the dependence tester.
    let tester = DepTest::new(&axioms);
    let outcome = tester.test(&s, &t, HandleRelation::Same);
    println!("\ndeptest answer: {}", outcome.answer);
    assert_eq!(outcome.answer, Answer::No);

    // 4. The No comes with a machine-checkable derivation, in the paper's
    //    paraphrased style.
    for proof in &outcome.proofs {
        println!("\n{proof}");
    }
    println!(
        "(proof uses axioms {:?}, {} nodes, {} subset checks)",
        outcome.proofs[0].axioms_used(),
        outcome.proofs[0].node_count(),
        outcome.stats.subset_checks,
    );
    Ok(())
}
