//! A compiler-style auto-parallelization pass: feed the §5 factorization
//! sweep (and a scale kernel) through the full pipeline — parse, collect
//! access-path matrices, run APT on every labeled loop access — and print
//! which loops are safe to transform. This is the automation of the step
//! the paper performed by hand ("we manually applied loop-level
//! transformations", §5).
//!
//! ```text
//! cargo run --example auto_parallelize
//! ```

use apt::core::Answer;
use apt::paths::analyze_proc;

const PROGRAM: &str = r"
    type MElem {
        ptr nrowE: MElem;
        ptr ncolE: MElem;
        data val;
        axiom A1: forall p <> q, p.ncolE <> q.ncolE;
        axiom A1b: forall p <> q, p.nrowE <> q.nrowE;
        axiom A2: forall p, p.ncolE+ <> p.nrowE+;
        axiom A3: forall p, p.(ncolE|nrowE)+ <> p.eps;
    }
    type MRowH {
        ptr nrowH: MRowH;
        ptr relem: MElem;
        axiom H1: forall p <> q, p.nrowH <> q.nrowH;
        axiom H2: forall p <> q, p.relem.ncolE* <> q.relem.ncolE*;
        axiom H3: forall p, p.(nrowH|relem|ncolE)+ <> p.eps;
    }

    // The elimination sweep over the active submatrix (§5): outer loop
    // walks rows by nrowE, inner loop walks a row by ncolE.
    proc eliminate(sub: MElem) {
        r = sub;
    L1: loop {
            e = r->ncolE;
        L2: loop {
            S:  e->val = fun();
                e = e->ncolE;
            }
            r = r->nrowE;
        }
    }

    // Scaling: every row via the header list, helper does the row.
    proc scale_row(first: MElem) {
        e = first;
        loop {
        W:  e->val = fun();
            e = e->ncolE;
        }
    }
    proc scale(m: MRowH) {
        h = m;
    LH: loop {
            e = h->relem;
            call scale_row(e);
            h = h->nrowH;
        }
    }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = apt::ir::parse_program(PROGRAM)?;
    println!("== automatic loop classification (the §5 step, no hands) ==\n");
    for proc in &program.procs {
        let analysis = analyze_proc(&program, &proc.name)?;
        println!("procedure {}:", proc.name);
        let mut any = false;
        for snap in analysis.snapshots() {
            any = true;
            if snap.loops.is_empty() {
                println!("  {}: not in a loop", snap.label);
                continue;
            }
            // Test every enclosing loop level, innermost to outermost.
            for frame in snap.loops.iter().rev() {
                let level = frame
                    .label
                    .clone()
                    .unwrap_or_else(|| "<unlabeled>".to_owned());
                let outcome = analysis
                    .test_loop_carried(&snap.label, frame.label.as_deref())
                    .map(|o| o.answer)
                    .unwrap_or(Answer::Maybe);
                let verdict = match outcome {
                    Answer::No => "PARALLELIZABLE",
                    _ => "keep sequential",
                };
                println!(
                    "  {} at loop {level}: loop-carried dependence {outcome} -> {verdict}",
                    snap.label
                );
            }
        }
        if !any {
            println!("  (no labeled accesses)");
        }
        println!();
    }
    Ok(())
}
