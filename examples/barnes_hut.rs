//! Barnes–Hut N-body simulation on an octree — the paper's §1 motivating
//! application. The octree's aliasing axioms are the Figure 3 tree pattern
//! at arity eight; APT proves the per-subtree and per-body independence,
//! and the force sweep then runs on real threads.
//!
//! ```text
//! cargo run --release --example barnes_hut
//! ```

use apt::axioms::check::check_set;
use apt::core::{DepQuery, Origin, Prover};
use apt::heaps::octree::{octree_axioms, Body, Octree};
use apt::parsim::execute_parallel;
use apt::regex::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deterministic 3-D body cloud.
    let bodies: Vec<Body> = (0..256usize)
        .map(|i| Body {
            // A jittered 16x16 lattice: (i % 16, i / 16) is unique per
            // body, so no two bodies coincide.
            pos: [
                (i % 16) as f64 * 14.0 - 105.0,
                (i / 16) as f64 * 14.0 - 105.0,
                ((i * 7) % 16) as f64 * 14.0 - 105.0,
            ],
            mass: 1.0 + (i % 7) as f64,
        })
        .collect();
    let tree = Octree::build(&bodies, [0.0; 3], 128.0);
    println!(
        "octree over {} bodies: {} nodes, total mass {:.1}",
        bodies.len(),
        tree.len(),
        tree.node(tree.root().unwrap()).mass
    );

    // The instance satisfies the arity-8 tree axioms.
    let axioms = octree_axioms();
    let (graph, _) = tree.heap_graph();
    check_set(&graph, &axioms).expect("axioms hold");
    println!(
        "instance model-checks against {} octree axioms",
        axioms.len()
    );

    // APT: sibling subtrees never share a node — the independence that
    // lets different workers own different octants.
    let all = "(c0|c1|c2|c3|c4|c5|c6|c7)";
    let mut prover = Prover::new(&axioms);
    let a = Path::parse(&format!("c0.{all}*"))?;
    let b = Path::parse(&format!("c5.{all}*"))?;
    let proof = DepQuery::disjoint(&a, &b)
        .origin(Origin::Same)
        .run_with(&mut prover)
        .proof
        .expect("sibling octants are disjoint");
    apt::core::check_proof(&axioms, &proof)?;
    println!(
        "\nforall x, x.{a} <> x.{b} — PROVEN ({} nodes, checked)",
        proof.node_count()
    );

    // Forces: Barnes–Hut vs direct summation, sequential vs parallel.
    let theta = 0.5;
    let seq: Vec<[f64; 3]> = bodies.iter().map(|b| tree.force_on(b, theta)).collect();

    let tasks: Vec<_> = bodies
        .iter()
        .map(|b| {
            let tree = &tree;
            move || tree.force_on(b, theta)
        })
        .collect();
    let par = execute_parallel(tasks, 7);
    assert_eq!(seq, par);
    println!("parallel force sweep on 7 threads matches the sequential sweep ✓");

    // Accuracy vs the O(N²) oracle.
    let mut max_rel = 0.0f64;
    for (b, bh) in bodies.iter().zip(&seq) {
        let direct = Octree::direct_force(&bodies, b);
        let mag = direct.iter().map(|x| x * x).sum::<f64>().sqrt();
        let err = bh
            .iter()
            .zip(&direct)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        if mag > 1e-9 {
            max_rel = max_rel.max(err / mag);
        }
    }
    println!("Barnes–Hut (theta = {theta}) max relative force error: {max_rel:.3}");
    // Lattice clouds produce near-cancelling forces, so relative error
    // on the smallest forces runs higher than on realistic clusters.
    assert!(max_rel < 0.5);
    Ok(())
}
