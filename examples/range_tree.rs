//! Two-dimensional range trees (§3.1's "leaf-linked tree of leaf-linked
//! trees"): build one over a point set, model-check its axioms, answer
//! geometric queries, and use APT to prove that traversals of different
//! y-subtrees never interfere.
//!
//! ```text
//! cargo run --example range_tree
//! ```

use apt::axioms::check::check_set;
use apt::core::{DepQuery, Origin, Prover};
use apt::heaps::rangetree::{range_tree_axioms, RangeTree2D};
use apt::regex::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deterministic point cloud.
    let points: Vec<(f64, f64)> = (0..64)
        .map(|i| (((i * 37) % 64) as f64, ((i * 23) % 64) as f64))
        .collect();
    let tree = RangeTree2D::build(&points, 3);
    println!(
        "built a 2-D range tree: {} x-leaves, {} points",
        tree.leaf_count(),
        points.len()
    );

    // The structure satisfies its declared axioms.
    let axioms = range_tree_axioms();
    check_set(&tree.heap_graph(), &axioms).expect("axioms hold on the instance");
    println!("instance model-checks against the range-tree axioms:");
    println!("{axioms}");

    // Geometric queries agree with the naive oracle.
    for (x0, x1, y0, y1) in [
        (0.0, 63.0, 0.0, 63.0),
        (10.0, 30.0, 5.0, 45.0),
        (50.0, 20.0, 0.0, 1.0),
    ] {
        let fast = tree.count_in_box(x0, x1, y0, y1);
        let slow = RangeTree2D::count_naive(&points, x0, x1, y0, y1);
        println!("box x∈[{x0},{x1}] y∈[{y0},{y1}]: {fast} points (oracle {slow})");
        assert_eq!(fast, slow);
    }

    // The parallelization argument: processing the y-trees of two
    // *different* x-leaves touches disjoint memory. APT proves it from
    // the axioms — including the full y-subtree closure.
    let mut prover = Prover::new(&axioms);
    let a = Path::parse("sub.(Ly|Ry|Ny)*")?;
    let proof = DepQuery::disjoint(&a, &a)
        .origin(Origin::Distinct)
        .run_with(&mut prover)
        .proof
        .expect("distinct x-leaves own disjoint y-trees");
    println!("\nforall x <> y (x-leaves): x.{a} <> y.{a} — PROVEN");
    println!("\n{proof}");

    // And within ONE x-leaf, the two y-children's subtrees are disjoint.
    let left = Path::parse("sub.Ly.(Ly|Ry)*")?;
    let right = Path::parse("sub.Ry.(Ly|Ry)*")?;
    let proof = DepQuery::disjoint(&left, &right)
        .origin(Origin::Same)
        .run_with(&mut prover)
        .proof
        .expect("sibling y-subtrees are disjoint");
    println!(
        "forall v, v.{left} <> v.{right} — PROVEN ({} nodes)",
        proof.node_count()
    );
    Ok(())
}
