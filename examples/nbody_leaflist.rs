//! An N-body-flavored scenario (the paper cites Barnes–Hut \[BH86\] as the
//! home of leaf-linked trees): bodies live at the leaves of a leaf-linked
//! tree; the force-accumulation sweep updates every leaf through the `N`
//! chain. APT proves the per-leaf updates independent, and the program
//! then *actually runs them on real threads*, validating the verdict.
//!
//! ```text
//! cargo run --example nbody_leaflist
//! ```

use apt::core::Answer;
use apt::heaps::llt::LeafLinkedTree;
use apt::parsim::execute_parallel;
use apt::paths::analyze_proc;

/// The sweep as the compiler sees it: a loop walking the leaf chain and
/// writing each body's accumulator.
const SWEEP: &str = r"
    type Body {
        ptr N: Body;
        data force;
        axiom A1: forall p <> q, p.N <> q.N;
        axiom A2: forall p, p.N+ <> p.eps;
    }
    proc sweep(first: Body) {
        b = first;
        loop {
        U:  b->force = fun();
            b = b->N;
        }
    }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The dependence question: can iteration j's write to b->force hit
    //    iteration i's? (The Figure 1 motivating loop, with real axioms.)
    let program = apt::ir::parse_program(SWEEP)?;
    let analysis = analyze_proc(&program, "sweep")?;
    let (ri, rj) = analysis.loop_carried_pair("U", None)?;
    println!("loop-carried query: {ri}  vs  {rj}");
    let outcome = analysis.test_loop_carried("U", None)?;
    println!("APT: {}", outcome.answer);
    assert_eq!(outcome.answer, Answer::No);
    for p in &outcome.proofs {
        println!("\n{p}");
    }

    // 2. Since the iterations are independent, run them on real threads.
    let mut tree = LeafLinkedTree::complete(8); // 256 bodies
    let leaves = tree.leaves();
    let masses: Vec<f64> = leaves
        .iter()
        .enumerate()
        .map(|(i, _)| 1.0 + (i % 9) as f64)
        .collect();

    // Sequential reference sweep.
    let seq_forces: Vec<f64> = masses.iter().map(|m| fake_force(*m)).collect();

    // Parallel sweep over the independent leaf updates.
    let tasks: Vec<_> = masses.iter().map(|&m| move || fake_force(m)).collect();
    let par_forces = execute_parallel(tasks, 7);
    assert_eq!(par_forces, seq_forces);
    for (leaf, f) in leaves.iter().zip(&par_forces) {
        *tree.data_mut(*leaf) = *f;
    }
    println!(
        "\nparallel sweep over {} bodies on 7 threads matches the sequential sweep ✓",
        leaves.len()
    );
    println!(
        "total force (checksum): {:.3}",
        leaves.iter().map(|l| tree.node(*l).data).sum::<f64>()
    );
    Ok(())
}

/// A stand-in for the force kernel (deterministic, per-body).
fn fake_force(mass: f64) -> f64 {
    let mut acc = 0.0;
    for k in 1..64 {
        acc += mass / (k as f64 * k as f64);
    }
    acc
}
