//! Circular doubly-linked lists: the third axiom form in action
//! (`∀p, p.RE1 = p.RE2`, "useful for describing cycles", §3.1).
//!
//! The example proves equalities (`head.next.prev.next` **is**
//! `head.next` — a definite `Yes` from `deptest`), disproves
//! back-and-forth aliasing via rewriting, performs a real node removal
//! (a structural modification), and model-checks that the removal
//! restores every invariant — the ground truth that justifies a
//! `reassert` in the §3.4 sense.
//!
//! ```text
//! cargo run --example circular_dll
//! ```

use apt::axioms::{check::check_set, AxiomSet};
use apt::core::{
    AccessPath, Answer, DepQuery, DepTest, Handle, HandleRelation, MemRef, Origin, Prover,
};
use apt::regex::Path;

fn ring_axioms() -> AxiomSet {
    AxiomSet::parse(
        "C1: forall p, p.next.prev = p.eps
         C2: forall p, p.prev.next = p.eps
         L1: forall p <> q, p.next <> q.next
         L2: forall p <> q, p.prev <> q.prev
         S1: forall p, p.next <> p.eps
         S2: forall p, p.prev <> p.eps",
    )
    .expect("axioms parse")
}

/// A tiny concrete ring in arena style: `next[i]`/`prev[i]`.
struct Ring {
    next: Vec<usize>,
    prev: Vec<usize>,
    alive: Vec<bool>,
}

impl Ring {
    fn new(n: usize) -> Ring {
        Ring {
            next: (0..n).map(|i| (i + 1) % n).collect(),
            prev: (0..n).map(|i| (i + n - 1) % n).collect(),
            alive: vec![true; n],
        }
    }

    /// Unlinks cell `i` (the classic splice — a structural modification).
    fn remove(&mut self, i: usize) {
        let (p, n) = (self.prev[i], self.next[i]);
        self.next[p] = n;
        self.prev[n] = p;
        self.alive[i] = false;
    }

    fn heap_graph(&self) -> apt::axioms::graph::HeapGraph {
        // Only live cells become vertices (a freed cell is no longer part
        // of the structure).
        let mut g = apt::axioms::graph::HeapGraph::new();
        let mut ids = vec![None; self.next.len()];
        for (i, id) in ids.iter_mut().enumerate() {
            if self.alive[i] {
                *id = Some(g.add_node());
            }
        }
        for i in 0..self.next.len() {
            if let Some(from) = ids[i] {
                g.set_edge(from, "next", ids[self.next[i]].expect("live ring"));
                g.set_edge(from, "prev", ids[self.prev[i]].expect("live ring"));
            }
        }
        g
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let axioms = ring_axioms();
    println!("circular doubly-linked list axioms:\n{axioms}");

    // 1. Definite dependence through the cycle laws: head.next.prev.next
    //    must be head.next — deptest says Yes without any heap in sight.
    let tester = DepTest::new(&axioms);
    let head = Handle::for_variable("head");
    let a = MemRef::new(
        AccessPath::new(head.clone(), Path::parse("next.prev.next")?),
        "d",
    );
    let b = MemRef::new(AccessPath::new(head.clone(), Path::parse("next")?), "d");
    let outcome = tester.test(&a, &b, HandleRelation::Same);
    println!(
        "head.next.prev.next vs head.next: {} (equality axioms)",
        outcome.answer
    );
    assert_eq!(outcome.answer, Answer::Yes);

    // 2. Disjointness through rewriting: the round trip lands on
    //    head.next, which is never head itself (no self-loop).
    let mut prover = Prover::new(&axioms);
    let proof = DepQuery::disjoint(&Path::parse("next.prev.next")?, &Path::epsilon())
        .origin(Origin::Same)
        .run_with(&mut prover)
        .proof
        .expect("provable via C1 + S1");
    apt::core::check_proof(&axioms, &proof)?;
    println!("\nhead.next.prev.next <> head — PROVEN:\n{proof}");

    // 3. Ground truth: rings of every size ≥ 2 satisfy the axioms…
    for n in 2..7 {
        let ring = Ring::new(n);
        check_set(&ring.heap_graph(), &axioms).unwrap_or_else(|v| panic!("ring of {n}: {v}"));
    }
    println!("rings of size 2..6 model-check against the axioms");

    // 4. …and a removal (structural modification!) restores them, which is
    //    exactly what licenses a §3.4 `reassert` after the splice.
    let mut ring = Ring::new(6);
    ring.remove(3);
    check_set(&ring.heap_graph(), &axioms).expect("invariants restored after removal");
    println!("after removing a cell, the invariants hold again (reassert justified)");

    // 5. The one-element ring genuinely violates the no-self-loop axiom —
    //    the model checker catches it.
    let singleton = Ring::new(1);
    let violation = check_set(&singleton.heap_graph(), &axioms).unwrap_err();
    println!("1-cell ring violates: {violation}");
    Ok(())
}
