//! The complete §3.3 walkthrough: the paper's `subr` is parsed in the mini
//! language, the access-path matrices are printed at each labeled point,
//! the dependence S → T is tested, and the verdict is validated against a
//! concrete leaf-linked tree.
//!
//! ```text
//! cargo run --example leaf_linked_tree
//! ```

use apt::core::Answer;
use apt::heaps::llt::LeafLinkedTree;
use apt::paths::analyze_proc;

const SUBR: &str = r"
    type LLBinaryTree {
        ptr L: LLBinaryTree;
        ptr R: LLBinaryTree;
        ptr N: LLBinaryTree;
        data d;
        axiom A1: forall p, p.L <> p.R;
        axiom A2: forall p <> q, p.(L|R) <> q.(L|R);
        axiom A3: forall p <> q, p.N <> q.N;
        axiom A4: forall p, p.(L|R|N)+ <> p.eps;
    }
    proc subr(root: LLBinaryTree) {
        root = root->L;
        p = root->L;
        p = p->N;
    S:  p->d = 100;
        p = root;
        q = root->R;
        q = q->N;
    T:  t = q->d;
    }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = apt::ir::parse_program(SUBR)?;
    println!("== the paper's subr, normalized ==\n{program}");

    let analysis = analyze_proc(&program, "subr")?;

    // The APMs the paper shows at statements S and T.
    let s = analysis.snapshot("S").expect("S is a memory access");
    println!("== APM at S (paper: p has paths L.L.N from _hroot, N from _hp) ==");
    println!("{}", s.apm);
    let t = analysis.snapshot("T").expect("T is a memory access");
    println!("== APM at T (paper: q has L.R.N from _hroot, N from _hq) ==");
    println!("{}", t.apm);

    // The dependence question of the paper.
    let outcome = analysis.test_sequential("S", "T")?;
    println!("== is T dependent on S? ==");
    println!("deptest: {}", outcome.answer);
    assert_eq!(outcome.answer, Answer::No);
    for proof in &outcome.proofs {
        println!("\n{proof}");
    }

    // Ground truth on real trees: the theorem is ∀hroot, hroot.LLN <>
    // hroot.LRN — so check EVERY vertex of every complete tree where both
    // walks are defined.
    println!("== concrete validation ==");
    for depth in 2..7 {
        let tree = LeafLinkedTree::complete(depth);
        let mut checked = 0;
        for i in 0..tree.len() {
            let v = apt::heaps::llt::NodeId(i);
            if let (Some(sw), Some(tr)) = (tree.walk(v, "LLN"), tree.walk(v, "LRN")) {
                assert_ne!(sw, tr, "APT said No; the heap must agree at {v:?}");
                checked += 1;
            }
        }
        println!("depth {depth}: LLN <> LRN verified from {checked} anchor vertices");
        assert!(checked > 0);
    }
    println!("the prover's No is confirmed on every concrete instance.");
    Ok(())
}
