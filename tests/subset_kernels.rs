//! Cross-validation of the three independent subset-test kernels:
//!
//! 1. the early-exit lazy product walk ([`ops::try_is_subset`], the
//!    production kernel — walks `DFA(a) × DFA(b)` on the fly),
//! 2. the materializing reference kernel
//!    ([`ops::try_is_subset_materializing`] — builds the complement and the
//!    full product, then asks emptiness, per \[HU79\]), and
//! 3. the automata-free Brzozowski-derivative search
//!    ([`derivative::is_subset_bounded`]).
//!
//! All three must agree on every decided pair, the interned-id entry point
//! must agree with the tree entry points (cached and uncached), and under a
//! tight state budget the lazy kernel may only *improve* on the
//! materializing one: a limit trip in the new kernel implies the identical
//! trip in the old one, never the other way around.

use apt_regex::{derivative, ops, DfaCache, LimitExceeded, Limits, Regex, RegexId};
use proptest::prelude::*;

/// Strategy: a random regex over a tiny alphabet, depth-bounded.
fn regex_strategy() -> BoxedStrategy<Regex> {
    let leaf = prop_oneof![
        3 => prop::sample::select(vec!["a", "b", "c"]).prop_map(Regex::field),
        1 => Just(Regex::epsilon()),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Regex::concat(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Regex::alt(x, y)),
            inner.clone().prop_map(Regex::star),
            inner.prop_map(Regex::plus),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Lazy and materializing kernels decide identically when unbounded.
    #[test]
    fn lazy_agrees_with_materializing(a in regex_strategy(), b in regex_strategy()) {
        let lazy = ops::try_is_subset(&a, &b, &Limits::none());
        let full = ops::try_is_subset_materializing(&a, &b, &Limits::none());
        prop_assert_eq!(lazy, full, "{} ⊆ {}", a, b);
    }

    /// The derivative engine, when it decides at all, agrees with the
    /// automata answer.
    #[test]
    fn derivatives_agree_when_decided(a in regex_strategy(), b in regex_strategy()) {
        if let Some(by_derivatives) = derivative::is_subset_bounded(&a, &b, 20_000) {
            let by_automata = ops::is_subset(&a, &b);
            prop_assert_eq!(by_derivatives, by_automata, "{} ⊆ {}", a, b);
        }
    }

    /// The interned-id entry point agrees with the tree entry point, with
    /// and without a DFA cache, hit or miss.
    #[test]
    fn interned_ids_agree_with_trees(a in regex_strategy(), b in regex_strategy()) {
        let truth = ops::is_subset(&a, &b);
        let (ia, ib) = (RegexId::intern(&a), RegexId::intern(&b));
        prop_assert_eq!(ops::try_is_subset_ids(ia, ib, &Limits::none(), None), Ok(truth));
        let cache = DfaCache::new();
        // Twice: once to populate, once to hit.
        for _ in 0..2 {
            prop_assert_eq!(
                ops::try_is_subset_ids(ia, ib, &Limits::none(), Some(&cache)),
                Ok(truth),
                "{} ⊆ {}", a, b
            );
        }
    }

    /// Degradation parity under a tight state budget. The lazy kernel
    /// meters pair-states in the same discovery order the materializing
    /// kernel explores its product, so:
    ///
    /// * a definite `true` from either side means both sides say `true`;
    /// * a limit trip in the lazy kernel is the *same* trip in the
    ///   materializing one (the lazy walk never degrades first);
    /// * `false` may come early from the lazy walk while the materializing
    ///   kernel still trips its budget — a strict improvement — but a
    ///   decided answer must match the unbounded truth.
    #[test]
    fn tight_budgets_degrade_identically(
        a in regex_strategy(),
        b in regex_strategy(),
        max_states in 1usize..40,
    ) {
        let tight = Limits::none().with_max_states(max_states);
        let lazy = ops::try_is_subset(&a, &b, &tight);
        let full = ops::try_is_subset_materializing(&a, &b, &tight);
        let truth = ops::is_subset(&a, &b);
        match (lazy, full) {
            (Ok(lv), Ok(fv)) => {
                prop_assert_eq!(lv, fv, "{} ⊆ {}", a, b);
                prop_assert_eq!(lv, truth, "{} ⊆ {}", a, b);
            }
            (Ok(lv), Err(LimitExceeded::States { .. })) => {
                // Early exit decided before the budget ran out; only the
                // counterexample direction can finish first.
                prop_assert_eq!(lv, truth, "{} ⊆ {}", a, b);
                prop_assert!(!lv, "early exit can only decide 'false' sooner");
            }
            (Err(le), fe) => {
                prop_assert_eq!(Err(le), fe, "lazy degraded but materializing did not");
            }
            (Ok(_), Err(other)) => {
                prop_assert!(false, "unexpected non-state trip: {:?}", other);
            }
        }
    }
}
