//! Property suite for whole-program incremental analysis: random edit
//! sequences over randomly generated multi-procedure programs.
//!
//! Three properties, per the incremental contract:
//!
//! 1. **Parity** — after every edit, an incremental run replaying the
//!    previous run's table produces exactly the verdicts a from-scratch
//!    run produces.
//! 2. **Locality** — the edited procedure re-proves everything; an
//!    untouched procedure re-proves only what the table can never
//!    cover (Maybe verdicts, which are not persisted, and proof-less
//!    Nos, which are never replayed).
//! 3. **Corruption safety** — a table that went through the snapshot
//!    codec and was bit-flipped or truncated either fails to decode
//!    (run falls back cold) or decodes to entries that are re-validated
//!    away; either way the verdicts still equal the cold run's.
//!
//! Randomness is a seeded xorshift so every failure reproduces.

use apt::prelude::{analyze_program, parse_program, Answer, BatchOptions, RowOutcome};
use apt::serve::snapshot;
use apt::serve::{AnalyzeSection, SectionOutcome, Snapshot};
use apt_paths::{DepTable, ProgramReport};

/// Deterministic xorshift64* PRNG — no clock, no global state.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// One procedure of a generated program: a shape plus the constant an
/// "edit" changes. The constant appears in the body text, so editing it
/// changes the procedure's content hash and nothing else's.
#[derive(Clone)]
struct ProcSpec {
    shape: usize,
    constant: u64,
}

fn render(specs: &[ProcSpec]) -> String {
    let mut s = String::from(
        "type List {\n    ptr link: List;\n    data f;\n    \
         axiom A1: forall p <> q, p.link <> q.link;\n    \
         axiom A2: forall p, p.link+ <> p.eps;\n}\n",
    );
    for (i, spec) in specs.iter().enumerate() {
        let c = spec.constant;
        s.push_str(&match spec.shape % 3 {
            // A list walk (carried No) plus a trailing store whose
            // conflict with the loop is not definite.
            0 => format!(
                "proc p{i}(h: List) {{\n    q = h;\n    loop {{\n    \
                 A{i}:  q->f = fun();\n        q = q->link;\n    }}\n\
                 B{i}:  h->f = {c};\n}}\n"
            ),
            // Straight-line store/load of the same cell: a definite Yes.
            1 => format!("proc p{i}(h: List) {{\nW{i}:  h->f = {c};\nX{i}:  v = h->f;\n}}\n"),
            // A stride-2 walk with two labeled stores: two carried Nos
            // and a same-iteration Yes, all definite.
            _ => format!(
                "proc p{i}(h: List) {{\n    q = h;\n    loop {{\n    \
                 C{i}:  q->f = fun();\n    D{i}:  q->f = {c};\n        \
                 q = q->link->link;\n    }}\n}}\n"
            ),
        });
    }
    s
}

fn run_specs(specs: &[ProcSpec], baseline: Option<&DepTable>) -> ProgramReport {
    let program = parse_program(&render(specs)).expect("generated program parses");
    analyze_program(&program).run(baseline, &BatchOptions::new())
}

fn answers(report: &ProgramReport) -> Vec<(String, String, Answer)> {
    report
        .procs
        .iter()
        .flat_map(|p| {
            p.rows
                .iter()
                .map(|r| (p.name.clone(), r.key.clone(), r.outcome.answer()))
        })
        .collect()
}

/// Queries of a procedure the table can never answer: Maybes (not
/// persisted) and proof-less Nos (persisted but never replayed).
fn never_replayable(report: &ProgramReport, proc_name: &str) -> usize {
    let proc = report
        .procs
        .iter()
        .find(|p| p.name == proc_name)
        .expect("procedure in report");
    proc.rows
        .iter()
        .filter(|r| match &r.outcome {
            RowOutcome::Fresh(o) => {
                o.answer == Answer::Maybe || o.proofs.is_empty() && o.answer == Answer::No
            }
            RowOutcome::Error(_) => true,
            RowOutcome::Replayed(_) => false,
        })
        .count()
}

fn random_specs(rng: &mut Rng) -> Vec<ProcSpec> {
    let n = 3 + rng.below(3);
    (0..n)
        .map(|_| ProcSpec {
            shape: rng.below(3),
            constant: rng.next() % 1000,
        })
        .collect()
}

#[test]
fn random_edit_sequences_preserve_parity_and_locality() {
    for seed in 1..=6u64 {
        let mut rng = Rng::new(seed * 0x9e37_79b9);
        let mut specs = random_specs(&mut rng);
        let mut table = run_specs(&specs, None).table;

        for _step in 0..4 {
            // Edit one procedure: change its constant (and sometimes its
            // whole shape) — every other procedure's text is unchanged.
            let edited = rng.below(specs.len());
            specs[edited].constant = specs[edited].constant.wrapping_add(1 + rng.next() % 500);
            if rng.below(4) == 0 {
                specs[edited].shape = rng.below(3);
            }

            let incremental = run_specs(&specs, Some(&table));
            let from_scratch = run_specs(&specs, None);

            // (1) Parity: replay never changes a verdict.
            assert_eq!(
                answers(&incremental),
                answers(&from_scratch),
                "seed {seed}: incremental diverged from from-scratch"
            );

            // (2) Locality: the edited procedure re-proves everything;
            // untouched procedures re-prove only never-replayable rows.
            for (i, proc) in incremental.procs.iter().enumerate() {
                if i == edited {
                    assert!(!proc.reused, "seed {seed}: edited proc replayed");
                    assert_eq!(proc.replayed, 0);
                    assert_eq!(proc.reproved, proc.rows.len());
                } else {
                    assert!(
                        proc.reused,
                        "seed {seed}: untouched {} re-proved",
                        proc.name
                    );
                    assert_eq!(
                        proc.reproved,
                        never_replayable(&from_scratch, &proc.name),
                        "seed {seed}: untouched {} re-proved a replayable verdict",
                        proc.name
                    );
                }
            }

            table = incremental.table;
        }
    }
}

#[test]
fn corrupted_snapshot_tables_fall_back_cold_never_wrong() {
    let mut rng = Rng::new(0xdead_beef);
    let specs = random_specs(&mut rng);
    let cold = run_specs(&specs, None);
    let want = answers(&cold);

    let snap = Snapshot {
        created_unix_ms: 1,
        sections: Vec::new(),
        analyses: vec![AnalyzeSection {
            name: "default".into(),
            table: cold.table.clone(),
        }],
    };
    let clean = snapshot::encode(&snap);

    // Sanity: the clean bytes round-trip to a fully-replaying baseline.
    let (_, outcomes) = snapshot::decode(&clean).expect("clean snapshot decodes");
    let restored = outcomes
        .into_iter()
        .find_map(|o| match o {
            SectionOutcome::Analysis(a) => Some(a.table),
            _ => None,
        })
        .expect("analyze section restored");
    let warm = run_specs(&specs, Some(&restored));
    assert_eq!(answers(&warm), want);
    assert_eq!(warm.procs_reused(), specs.len());

    // Bit flips and truncations anywhere in the byte stream: whatever
    // survives decoding is used as the baseline; verdicts must still
    // equal the cold run's (the damage may only cost warmth).
    for trial in 0..40 {
        let mut bytes = clean.clone();
        if trial % 4 == 3 {
            bytes.truncate(rng.below(bytes.len()));
        } else {
            let i = rng.below(bytes.len());
            bytes[i] ^= 1 << rng.below(8);
        }

        let baseline = match snapshot::decode(&bytes) {
            Err(_) => None,
            Ok((_, outcomes)) => outcomes.into_iter().find_map(|o| match o {
                SectionOutcome::Analysis(a) => Some(a.table),
                _ => None,
            }),
        };
        let report = run_specs(&specs, baseline.as_ref());
        assert_eq!(
            answers(&report),
            want,
            "trial {trial}: corrupted table changed a verdict"
        );
    }
}
