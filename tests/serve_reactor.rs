//! Edge-case tests for the epoll reactor in `apt-serve`.
//!
//! The readiness loop replaces two threads per connection with per-fd
//! state machines, and every subtle behaviour of that machinery gets a
//! test here: frames split across arbitrarily small writes, pipelined
//! requests answered strictly in order, write backpressure against a
//! reader that never drains its socket, incremental enforcement of the
//! request-line cap, the timer wheel renewing deadlines under traffic
//! while still killing truly idle peers, the connection cap refusing
//! with a frame instead of `EMFILE`, and a few hundred idle
//! connections costing zero additional threads.

use apt::serve::json::{obj, parse, Json};
use apt::serve::{ServeConfig, Server, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn start_server(config: ServeConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let mut server = Server::new(config);
    let addr = server.bind_tcp("127.0.0.1:0").expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, handle, join)
}

/// Threads of *this* process (the server runs in-process), straight
/// from /proc — the property under test is that connections are state,
/// not threads.
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("/proc/self/status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

fn read_frame(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read frame");
    assert!(n > 0, "connection closed while expecting a frame");
    parse(line.trim()).expect("frame parses")
}

const AXIOMS: &str = "structure T { tree L, R; list N; acyclic L, R, N; }";

#[test]
fn frames_split_across_tiny_writes_are_reassembled() {
    let (addr, handle, join) = start_server(ServeConfig::new());
    let mut stream = TcpStream::connect(addr).expect("connect");

    // An open_session followed by a prove, dribbled a few bytes at a
    // time — including across the newline between the two frames.
    let open = obj(vec![
        ("verb", "open_session".into()),
        ("axioms", AXIOMS.into()),
    ]);
    let mut bytes = open.render().into_bytes();
    bytes.push(b'\n');
    for chunk in bytes.chunks(3) {
        stream.write_all(chunk).expect("dribble");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let frame = read_frame(&mut reader);
    assert_eq!(frame.get("ok"), Some(&Json::Bool(true)), "open: {frame:?}");
    let session = frame
        .get("session")
        .and_then(Json::as_str)
        .expect("session id")
        .to_owned();

    let prove = obj(vec![
        ("verb", "prove".into()),
        ("session", session.as_str().into()),
        ("a", "L.L.N".into()),
        ("b", "L.R.N".into()),
    ]);
    let mut bytes = prove.render().into_bytes();
    bytes.push(b'\n');
    // Split exactly at the closing brace so the newline travels alone.
    let (head, tail) = bytes.split_at(bytes.len() - 1);
    stream.write_all(head).expect("head");
    stream.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(20));
    stream.write_all(tail).expect("tail newline");
    stream.flush().expect("flush");
    let frame = read_frame(&mut reader);
    assert_eq!(
        frame
            .get("result")
            .and_then(|r| r.get("answer"))
            .and_then(Json::as_str),
        Some("No"),
        "prove over split frames: {frame:?}"
    );

    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn pipelined_requests_on_one_connection_answer_in_order() {
    let (addr, handle, join) = start_server(ServeConfig::new());
    let mut stream = TcpStream::connect(addr).expect("connect");

    // Open a session first (its reply keeps the id sequence honest too).
    let mut batch = String::new();
    let open = obj(vec![
        ("verb", "open_session".into()),
        ("axioms", AXIOMS.into()),
        ("id", 0u64.into()),
    ]);
    batch.push_str(&open.render());
    batch.push('\n');
    stream.write_all(batch.as_bytes()).expect("open");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let frame = read_frame(&mut reader);
    assert_eq!(frame.get("id").and_then(Json::as_u64), Some(0));
    let session = frame
        .get("session")
        .and_then(Json::as_str)
        .expect("session")
        .to_owned();

    // 30 frames in one write: pooled proves interleaved with inline
    // control verbs. Responses must come back 1..=30 in exact order —
    // the reactor keeps one pooled job in flight per connection and
    // never lets an inline reply overtake a queued prove.
    let mut batch = String::new();
    for id in 1..=30u64 {
        let frame = if id % 3 == 0 {
            obj(vec![("verb", "health".into()), ("id", id.into())])
        } else {
            obj(vec![
                ("verb", "prove".into()),
                ("session", session.as_str().into()),
                ("a", "L.L.N".into()),
                ("b", "L.R.N".into()),
                ("id", id.into()),
            ])
        };
        batch.push_str(&frame.render());
        batch.push('\n');
    }
    stream.write_all(batch.as_bytes()).expect("pipeline");
    stream.flush().expect("flush");
    for want in 1..=30u64 {
        let frame = read_frame(&mut reader);
        assert_eq!(
            frame.get("id").and_then(Json::as_u64),
            Some(want),
            "responses out of order: {frame:?}"
        );
        assert_eq!(frame.get("ok"), Some(&Json::Bool(true)), "{frame:?}");
    }

    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn write_backpressure_from_a_slow_reader_does_not_stall_others() {
    let (addr, handle, join) = start_server(ServeConfig::new());

    // Connection A stuffs ~2 MiB of requests down the pipe and reads
    // nothing. Each unsupported-verb error frame echoes its ~2 KiB verb
    // back, so the server's reply stream quickly overruns both the
    // socket buffer and the reactor's write high-water mark; the
    // reactor must park A (stop reading it) instead of blocking.
    const SLOW_FRAMES: usize = 1000;
    let fat_verb = "x".repeat(2048);
    let slow = TcpStream::connect(addr).expect("connect slow");
    let mut slow_writer = slow.try_clone().expect("clone");
    let frame = obj(vec![("verb", fat_verb.as_str().into())]);
    let line = {
        let mut l = frame.render();
        l.push('\n');
        l
    };
    let writer = std::thread::spawn(move || {
        for _ in 0..SLOW_FRAMES {
            // The kernel buffer fills once the reactor parks the
            // connection; this write then blocks until we drain below.
            if slow_writer.write_all(line.as_bytes()).is_err() {
                panic!("server closed the slow connection under backpressure");
            }
        }
        slow_writer.flush().expect("flush");
    });

    // Meanwhile connection B must see normal service.
    std::thread::sleep(Duration::from_millis(100));
    let mut live = TcpStream::connect(addr).expect("connect live");
    let mut live_reader = BufReader::new(live.try_clone().expect("clone"));
    let started = Instant::now();
    for id in 0..20u64 {
        let frame = obj(vec![("verb", "health".into()), ("id", id.into())]);
        let mut line = frame.render();
        line.push('\n');
        live.write_all(line.as_bytes()).expect("live write");
        let reply = read_frame(&mut live_reader);
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(id));
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "healthy connection starved behind a slow reader: {:?}",
        started.elapsed()
    );

    // Now drain A: every one of the 1000 responses must arrive, each
    // echoing the fat verb — backpressure deferred them, lost nothing.
    let mut slow_reader = BufReader::new(slow);
    for i in 0..SLOW_FRAMES {
        let mut line = String::new();
        let n = slow_reader.read_line(&mut line).expect("drain slow");
        assert!(n > 0, "slow connection closed early at response {i}");
        let frame = parse(line.trim()).expect("frame parses");
        assert_eq!(
            frame.get("verb").and_then(Json::as_str),
            Some(fat_verb.as_str()),
            "response {i} mangled under backpressure"
        );
    }
    writer.join().expect("writer thread");

    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn oversize_request_line_is_rejected_incrementally() {
    let (addr, handle, join) = start_server(ServeConfig::new());
    let mut stream = TcpStream::connect(addr).expect("connect");

    // 9 MiB with no newline. The 8 MiB cap must fire while the line is
    // still partial — the server responds and closes without ever
    // seeing a frame terminator. Late writes may hit a closed socket;
    // that is the cap working, not a failure.
    let chunk = vec![b'x'; 64 * 1024];
    let mut sent = 0usize;
    while sent < 9 * 1024 * 1024 {
        match stream.write(&chunk) {
            Ok(n) => sent += n,
            Err(_) => break,
        }
    }
    let _ = stream.flush();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read rejection");
    assert!(n > 0, "no rejection frame before close");
    let frame = parse(line.trim()).expect("frame parses");
    assert_eq!(
        frame.get("error").and_then(Json::as_str),
        Some("bad_request"),
        "oversize line: {frame:?}"
    );
    // Then the connection dies: clean EOF, or RST if the kernel still
    // held unread bytes from our aborted upload when the server closed.
    line.clear();
    match reader.read_line(&mut line) {
        Ok(n) => assert_eq!(n, 0, "connection stayed open after oversize line"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
    }

    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn timer_wheel_renews_active_connections_and_times_out_idle_ones() {
    let mut config = ServeConfig::new();
    config.idle_timeout = Some(Duration::from_millis(300));
    let (addr, handle, join) = start_server(config);

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Traffic every 100ms for ~1.2s: each completed frame renews the
    // 300ms deadline, so the connection must survive four times its
    // idle budget while active.
    for id in 0..12u64 {
        let frame = obj(vec![("verb", "health".into()), ("id", id.into())]);
        let mut line = frame.render();
        line.push('\n');
        stream.write_all(line.as_bytes()).expect("write");
        let reply = read_frame(&mut reader);
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(id));
        std::thread::sleep(Duration::from_millis(100));
    }

    // Then silence: the wheel must fire with a machine-readable frame,
    // then close.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read timeout frame");
    assert!(n > 0, "no timeout frame before close");
    let frame = parse(line.trim()).expect("frame parses");
    assert_eq!(
        frame.get("error").and_then(Json::as_str),
        Some("timeout"),
        "idle connection: {frame:?}"
    );
    line.clear();
    let n = reader.read_line(&mut line).expect("read eof");
    assert_eq!(n, 0, "connection stayed open after idle timeout");

    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn connection_cap_refuses_with_a_frame_not_emfile() {
    let mut config = ServeConfig::new();
    config.max_connections = 2;
    let (addr, handle, join) = start_server(config);

    // Two admitted connections; the first doubles as our stats client.
    let mut c1 = TcpStream::connect(addr).expect("connect 1");
    let mut c1_reader = BufReader::new(c1.try_clone().expect("clone"));
    let _c2 = TcpStream::connect(addr).expect("connect 2");
    std::thread::sleep(Duration::from_millis(100));

    // The third gets an overloaded frame and EOF, not a hang.
    let c3 = TcpStream::connect(addr).expect("connect 3");
    c3.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut c3_reader = BufReader::new(c3);
    let mut line = String::new();
    let n = c3_reader.read_line(&mut line).expect("read refusal");
    assert!(n > 0, "refused connection closed without a frame");
    let frame = parse(line.trim()).expect("frame parses");
    assert_eq!(
        frame.get("error").and_then(Json::as_str),
        Some("overloaded"),
        "refusal frame: {frame:?}"
    );
    line.clear();
    assert_eq!(c3_reader.read_line(&mut line).expect("eof"), 0);

    // The admitted connections still work, and the refusal is counted.
    let mut req = obj(vec![("verb", "stats".into())]).render();
    req.push('\n');
    c1.write_all(req.as_bytes()).expect("stats");
    let stats = read_frame(&mut c1_reader);
    let server = stats.get("server").expect("server block");
    assert_eq!(
        server.get("connection_refusals").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        server.get("connections_active").and_then(Json::as_u64),
        Some(2)
    );

    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn hundreds_of_idle_connections_cost_no_extra_threads() {
    let (addr, handle, join) = start_server(ServeConfig::new());

    // Let the server reach steady state (reactor + pool + flusherless),
    // with one active client connected.
    let mut client = TcpStream::connect(addr).expect("connect client");
    let mut reader = BufReader::new(client.try_clone().expect("clone"));
    let mut req = obj(vec![("verb", "health".into())]).render();
    req.push('\n');
    client.write_all(req.as_bytes()).expect("warmup");
    let _ = read_frame(&mut reader);
    let baseline = thread_count();

    // 300 idle connections. Under the old thread-per-connection design
    // this was 600 threads; under the reactor it must be zero.
    let idle: Vec<TcpStream> = (0..300)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle connect {i}: {e}")))
        .collect();
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(thread_count(), baseline, "idle connections spawned threads");

    // The server still answers promptly through the crowd, and all the
    // idle connections are registered, not silently dropped.
    let mut req = obj(vec![("verb", "stats".into())]).render();
    req.push('\n');
    let started = Instant::now();
    client.write_all(req.as_bytes()).expect("stats");
    let stats = read_frame(&mut reader);
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "stats crawled behind idle connections: {:?}",
        started.elapsed()
    );
    let active = stats
        .get("server")
        .and_then(|s| s.get("connections_active"))
        .and_then(Json::as_u64)
        .expect("connections_active");
    assert_eq!(active, 301, "idle connections not all registered");

    drop(idle);
    handle.stop();
    join.join().expect("server thread");
}
