//! Engine-vs-single-prover equivalence: batched, multi-worker execution
//! through a [`DepEngine`] is an optimization, never a semantics change.
//! Any worker count must reproduce the sequential prover's verdicts
//! exactly, and a warmed shared cache must not flip later batches.

use apt_core::{Answer, DepEngine, DepQuery, MaybeReason, Origin, Prover, ProverConfig};
use apt_regex::Path;
use proptest::prelude::*;

/// The verdict fingerprint compared across execution strategies.
type Key = (Answer, Option<MaybeReason>, bool);

fn fingerprint(outcome: &apt_core::Outcome) -> Key {
    (
        outcome.verdict.answer,
        outcome.maybe_reason,
        outcome.proof.is_some(),
    )
}

/// Strategy: a random access path over the leaf-linked-tree alphabet,
/// mixing concrete steps with `+`/`*` closures.
fn path_strategy() -> BoxedStrategy<Path> {
    let component = prop_oneof![
        4 => prop::sample::select(vec!["L", "R", "N"]).prop_map(str::to_owned),
        2 => prop::sample::select(vec!["L+", "R+", "N+", "(L|R)+", "(L|R|N)+"])
            .prop_map(str::to_owned),
        1 => prop::sample::select(vec!["L*", "N*", "(L|R)*"]).prop_map(str::to_owned),
    ];
    prop::collection::vec(component, 1..4)
        .prop_map(|parts| Path::parse(&parts.join(".")).expect("generated path parses"))
        .boxed()
}

/// Strategy: one dependence query — disjointness under either origin, or
/// path equality.
fn query_strategy() -> BoxedStrategy<DepQuery> {
    (path_strategy(), path_strategy(), 0..3u8)
        .prop_map(|(a, b, kind)| match kind {
            0 => DepQuery::disjoint(&a, &b).origin(Origin::Same),
            1 => DepQuery::disjoint(&a, &b).origin(Origin::Distinct),
            _ => DepQuery::equal(&a, &b),
        })
        .boxed()
}

fn sequential_verdicts(queries: &[DepQuery]) -> Vec<Key> {
    let axioms = apt_axioms::adds::leaf_linked_tree_axioms();
    queries
        .iter()
        .map(|q| {
            // The baseline the engine must reproduce: a fresh standalone
            // prover per query, no state shared with anything.
            let mut prover = Prover::with_config(&axioms, ProverConfig::default());
            fingerprint(&q.clone().run_with(&mut prover))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every worker count from 1 to 8 produces verdicts identical to the
    /// sequential prover, query for query.
    #[test]
    fn any_worker_count_matches_sequential_prover(
        queries in prop::collection::vec(query_strategy(), 1..8),
    ) {
        let expected = sequential_verdicts(&queries);
        for jobs in 1..=8usize {
            let engine = DepEngine::new(apt_axioms::adds::leaf_linked_tree_axioms());
            let outcomes = engine.run_batch(&queries, jobs);
            let got: Vec<Key> = outcomes.iter().map(fingerprint).collect();
            prop_assert_eq!(&got, &expected, "jobs={}", jobs);
        }
    }

    /// A cache warmed by a first batch must not change a second batch's
    /// verdicts: re-running batch 2 on the warmed engine equals running it
    /// on a fresh engine (and the sequential prover).
    #[test]
    fn warmed_cache_does_not_flip_verdicts(
        batch1 in prop::collection::vec(query_strategy(), 1..6),
        batch2 in prop::collection::vec(query_strategy(), 1..6),
    ) {
        let expected = sequential_verdicts(&batch2);
        let warmed = DepEngine::new(apt_axioms::adds::leaf_linked_tree_axioms());
        let _ = warmed.run_batch(&batch1, 2);
        let got: Vec<Key> = warmed
            .run_batch(&batch2, 2)
            .iter()
            .map(fingerprint)
            .collect();
        prop_assert_eq!(&got, &expected);
        // And the warm cache really is in play (not bypassed): stats must
        // show entries once any definite answer exists.
        let stats = warmed.cache_stats();
        let any_definite = expected.iter().any(|(a, _, _)| *a != Answer::Maybe);
        if any_definite {
            prop_assert!(
                stats.proved_goals + stats.failed_goals + stats.subset_results > 0,
                "shared cache unexpectedly empty: {:?}", stats
            );
        }
    }
}
