//! §5 and Appendix A as integration tests: Theorem T under both axiom
//! sets, the Appendix A axioms against real orthogonal-list matrices
//! (before and after factorization), and the §5 access-path derivation
//! through the full IR pipeline.

use apt_axioms::{adds, check::check_set};
use apt_core::{Answer, DepQuery, Origin, Prover};
use apt_heaps::gen::random_sparse_matrix;
use apt_heaps::numeric::{factor, LoopClassification};
use apt_paths::analyze_proc;
use apt_regex::Path;

fn theorem_t_paths() -> (Path, Path) {
    (
        Path::parse("ncolE+").expect("path"),
        Path::parse("nrowE+.ncolE+").expect("path"),
    )
}

#[test]
fn theorem_t_from_minimal_axioms() {
    let axioms = adds::sparse_matrix_minimal_axioms();
    let mut prover = Prover::new(&axioms);
    let (a, b) = theorem_t_paths();
    let proof = DepQuery::disjoint(&a, &b)
        .origin(Origin::Same)
        .run_with(&mut prover)
        .proof
        .expect("Theorem T");
    // The paper: "there are four initial cases since each access path ends
    // in '+', and many of these contain multiple sub-cases" — the proof is
    // certainly not a one-liner.
    assert!(proof.node_count() >= 4, "suspiciously small: {proof}");
    // All three §5 axioms participate.
    let used = proof.axioms_used();
    assert_eq!(used.len(), 3, "uses {used:?}");
}

#[test]
fn theorem_t_from_appendix_a() {
    let axioms = adds::sparse_matrix_axioms();
    let mut prover = Prover::new(&axioms);
    let (a, b) = theorem_t_paths();
    assert!(DepQuery::disjoint(&a, &b)
        .origin(Origin::Same)
        .run_with(&mut prover)
        .proof
        .is_some());
}

#[test]
fn theorem_t_fails_without_each_key_axiom() {
    // Drop each of the three §5 axioms in turn: the proof must disappear
    // (each is load-bearing).
    let all = [
        "A1: forall p <> q, p.ncolE <> q.ncolE",
        "A2: forall p, p.ncolE+ <> p.nrowE+",
        "A3: forall p, p.(ncolE|nrowE)+ <> p.eps",
    ];
    let (a, b) = theorem_t_paths();
    for drop in 0..3 {
        let text: Vec<&str> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, s)| *s)
            .collect();
        let axioms = apt_axioms::AxiomSet::parse(&text.join("\n")).expect("parses");
        let mut prover = Prover::new(&axioms);
        assert!(
            DepQuery::disjoint(&a, &b)
                .origin(Origin::Same)
                .run_with(&mut prover)
                .proof
                .is_none(),
            "dropping axiom {} should break the proof",
            drop + 1
        );
    }
}

#[test]
fn single_theorem_axiom_also_suffices() {
    // "note that a single axiom along the lines of Theorem T will also
    // suffice" (§5).
    let axioms =
        apt_axioms::AxiomSet::parse("T: forall p, p.ncolE+ <> p.nrowE+.ncolE+").expect("parses");
    let mut prover = Prover::new(&axioms);
    let (a, b) = theorem_t_paths();
    let proof = DepQuery::disjoint(&a, &b)
        .origin(Origin::Same)
        .run_with(&mut prover)
        .proof
        .expect("direct");
    assert_eq!(proof.axioms_used(), vec!["T".to_owned()]);
}

#[test]
fn appendix_a_axioms_hold_on_matrices_of_many_shapes() {
    let axioms = adds::sparse_matrix_axioms();
    for (n, extra, seed) in [(2, 0, 0), (4, 3, 1), (6, 10, 2), (8, 20, 3), (10, 35, 4)] {
        let m = random_sparse_matrix(n, extra, seed);
        let (g, _) = m.heap_graph();
        assert_eq!(check_set(&g, &axioms), Ok(()), "n={n} extra={extra}");
    }
}

#[test]
fn appendix_a_axioms_survive_factorization() {
    // Fillin insertion is a structural modification — but one that
    // *preserves* the sparse-matrix invariants, which is exactly why the
    // full analysis may re-validate the axioms after it (§3.4).
    let axioms = adds::sparse_matrix_axioms();
    for seed in 0..5 {
        let mut m = random_sparse_matrix(7, 12, seed);
        let before = m.nnz();
        let res = factor(&mut m, LoopClassification::sequential());
        let (g, _) = m.heap_graph();
        assert_eq!(check_set(&g, &axioms), Ok(()), "seed {seed}");
        assert_eq!(m.nnz(), before + res.fillins);
    }
}

#[test]
fn section_5_paths_derived_by_the_analysis() {
    // The paper derives iteration-i and iteration-j access paths
    // hr.ncolE(ncolE)* and hr.(nrowE)+ncolE(ncolE)* for the L1 loop; the
    // APM analysis must produce those shapes from the IR program alone.
    let src = r"
        type Elem {
            ptr nrowE: Elem;
            ptr ncolE: Elem;
            data val;
            axiom A1: forall p <> q, p.ncolE <> q.ncolE;
            axiom A2: forall p, p.ncolE+ <> p.nrowE+;
            axiom A3: forall p, p.(ncolE|nrowE)+ <> p.eps;
        }
        proc factor_sweep(sub: Elem) {
            r = sub;
        L1: loop {
                e = r->ncolE;
            L2: loop {
                S:  e->val = fun();
                    e = e->ncolE;
                }
                r = r->nrowE;
            }
        }";
    let program = apt_ir::parse_program(src).expect("parses");
    let analysis = analyze_proc(&program, "factor_sweep").expect("analyzes");
    let (ri, rj) = analysis.loop_carried_pair("S", Some("L1")).expect("pair");
    assert_eq!(ri.access.path.to_string(), "ncolE.ncolE*");
    assert_eq!(rj.access.path.to_string(), "nrowE+.ncolE.ncolE*");
    assert_eq!(
        analysis
            .test_loop_carried("S", Some("L1"))
            .expect("query")
            .answer,
        Answer::No
    );
    // Inner loop too.
    assert_eq!(
        analysis
            .test_loop_carried("S", Some("L2"))
            .expect("query")
            .answer,
        Answer::No
    );
}

#[test]
fn factorization_correctness_across_sizes() {
    // End to end: factor + solve on random circuit-like systems matches
    // the dense reference.
    use apt_heaps::dense::solve_dense;
    use apt_heaps::numeric::solve;
    for (n, seed) in [(10, 0), (20, 1), (30, 2), (50, 3)] {
        let m0 = random_sparse_matrix(n, 4 * n, seed);
        let dense = m0.to_dense();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 17) as f64 - 8.0).collect();
        let expect = solve_dense(&dense, &b).expect("regular");
        let mut m = m0.clone();
        let fr = factor(&mut m, LoopClassification::full());
        let (x, _) = solve(&m, &fr.pivots, &b, LoopClassification::full());
        for (xi, ei) in x.iter().zip(&expect) {
            assert!((xi - ei).abs() < 1e-6, "n={n} seed={seed}");
        }
    }
}
