//! Cross-validation of the two independent regular-expression engines:
//! the NFA→DFA pipeline (used by the decision procedures) and the
//! Brzozowski-derivative matcher must agree on every word, and the
//! language operations must satisfy their algebraic laws.

use apt_regex::{dfa::Dfa, ops, sample, Component, Path, Regex, Symbol};
use proptest::prelude::*;

/// Strategy: a random regex over a tiny alphabet, depth-bounded.
fn regex_strategy() -> BoxedStrategy<Regex> {
    let leaf = prop_oneof![
        3 => prop::sample::select(vec!["a", "b", "c"]).prop_map(Regex::field),
        1 => Just(Regex::epsilon()),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Regex::concat(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Regex::alt(x, y)),
            inner.clone().prop_map(Regex::star),
            inner.prop_map(Regex::plus),
        ]
    })
    .boxed()
}

fn words_up_to_len(alpha: &[Symbol], max: usize) -> Vec<Vec<Symbol>> {
    let mut out: Vec<Vec<Symbol>> = vec![vec![]];
    let mut frontier = vec![vec![]];
    for _ in 0..max {
        let mut next = Vec::new();
        for w in &frontier {
            for &s in alpha {
                let mut v = w.clone();
                v.push(s);
                next.push(v);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

fn alphabet() -> Vec<Symbol> {
    ["a", "b", "c"].iter().map(|s| Symbol::intern(s)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// DFA acceptance == derivative matching, on every short word.
    #[test]
    fn dfa_and_derivatives_agree(re in regex_strategy()) {
        let alpha = alphabet();
        let dfa = Dfa::build(&re, &alpha);
        for w in words_up_to_len(&alpha, 4) {
            prop_assert_eq!(
                dfa.accepts(&w),
                re.matches(&w),
                "regex {} word {:?}", re, w
            );
        }
    }

    /// Minimization preserves the language.
    #[test]
    fn minimize_preserves_language(re in regex_strategy()) {
        let alpha = alphabet();
        let dfa = Dfa::build(&re, &alpha);
        let min = dfa.minimize();
        prop_assert!(min.state_count() <= dfa.state_count());
        for w in words_up_to_len(&alpha, 4) {
            prop_assert_eq!(dfa.accepts(&w), min.accepts(&w));
        }
    }

    /// Subset is a partial order consistent with membership.
    #[test]
    fn subset_respects_membership(a in regex_strategy(), b in regex_strategy()) {
        prop_assert!(ops::is_subset(&a, &a));
        if ops::is_subset(&a, &b) {
            for w in sample::words_up_to(&a, 4) {
                prop_assert!(b.matches(&w), "{} ⊆ {} but {:?} only in the former", a, b, w);
            }
        }
    }

    /// Disjointness means no shared short word; non-disjointness comes
    /// with a witness accepted by both.
    #[test]
    fn disjointness_and_witnesses(a in regex_strategy(), b in regex_strategy()) {
        if ops::is_disjoint(&a, &b) {
            for w in sample::words_up_to(&a, 4) {
                prop_assert!(!b.matches(&w));
            }
        } else {
            let w = ops::intersection_witness(&a, &b).expect("non-disjoint has witness");
            prop_assert!(a.matches(&w) && b.matches(&w));
        }
    }

    /// Path ↔ regex round trip preserves the language.
    #[test]
    fn path_roundtrip_preserves_language(re in regex_strategy()) {
        if let Ok(path) = Path::try_from(&re) {
            prop_assert!(ops::equivalent(&re, &path.to_regex()), "{}", re);
        }
    }

    /// The enumerated language is exactly the set of accepted short words.
    #[test]
    fn enumeration_is_exact(re in regex_strategy()) {
        let words = sample::words_up_to(&re, 3);
        for w in &words {
            prop_assert!(re.matches(w));
        }
        let alpha = alphabet();
        for w in words_up_to_len(&alpha, 3) {
            if re.matches(&w) {
                prop_assert!(words.contains(&w), "{} missing {:?}", re, w);
            }
        }
    }

    /// Plus unfolding law: a+ ≡ a·a* ≡ a*·a.
    #[test]
    fn plus_laws(re in regex_strategy()) {
        let plus = Regex::plus(re.clone());
        let left = Regex::concat(re.clone(), Regex::star(re.clone()));
        let right = Regex::concat(Regex::star(re.clone()), re.clone());
        prop_assert!(ops::equivalent(&plus, &left));
        prop_assert!(ops::equivalent(&plus, &right));
    }
}

/// Display/parse round trip on paths: printing and re-parsing yields the
/// same language (display uses flattened alternations, so compare
/// semantically).
#[test]
fn path_display_parse_roundtrip() {
    for text in [
        "L.L.N",
        "(L|R)+.N+",
        "nrowE+.ncolE.ncolE*",
        "(rows|cols).(relem|celem)*",
        "eps",
        "(a.b)*.c",
    ] {
        let p = Path::parse(text).expect("parses");
        let q = Path::parse(&p.to_string()).expect("display re-parses");
        assert!(
            ops::equivalent(&p.to_regex(), &q.to_regex()),
            "{text} -> {p} -> {q}"
        );
    }
}

/// Component-level sanity: splitting and re-concatenating is identity.
#[test]
fn path_split_concat_identity() {
    let p = Path::parse("a.(b|c)+.a*").expect("parses");
    for k in 0..=p.len() {
        // prefix(k) drops the last k components; suffix(k) keeps them.
        let joined = p.prefix(k).concat(&p.suffix(k));
        assert_eq!(joined, p);
    }
    let (head, tail) = p.split_first().expect("nonempty");
    let mut rebuilt = Path::new(vec![head.clone()]);
    rebuilt = rebuilt.concat(&tail);
    assert_eq!(rebuilt, p);
    assert!(matches!(p.components()[1], Component::Plus(_)));
}
