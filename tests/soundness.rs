//! The central soundness property of the reproduction, checked by
//! property-based testing across crates:
//!
//! > If APT answers **No** for two access paths under an axiom set `A`,
//! > then on *every* concrete heap satisfying `A` the two paths never
//! > reach a common vertex.
//!
//! Random heaps come from `apt-heaps::gen` (correct by construction and
//! re-verified by the model checker); random access paths come from a
//! proptest strategy over the structure's field alphabet.

use apt_axioms::check::check_set;
use apt_axioms::graph::{HeapGraph, NodeId};
use apt_axioms::{adds, AxiomSet};
use apt_core::{DepQuery, Origin, Prover};
use apt_heaps::gen;
use apt_regex::{Component, Path};
use proptest::prelude::*;

/// Strategy: a random access path over the given fields, with at most
/// `depth` components, drawing fields, alternations, stars and pluses.
fn path_strategy(fields: &'static [&'static str], depth: usize) -> BoxedStrategy<Path> {
    let field = prop::sample::select(fields.to_vec()).prop_map(|f| Component::Field(f.into()));
    let simple = prop::collection::vec(field.clone(), 0..=2).prop_map(Path::new);
    let component = prop_oneof![
        4 => field,
        1 => (simple.clone(), simple.clone())
            .prop_filter("alt arms nonempty", |(a, b)| !a.is_empty() && !b.is_empty())
            .prop_map(|(a, b)| Component::Alt(a, b)),
        1 => simple.clone().prop_filter("star body nonempty", |p| !p.is_empty())
            .prop_map(Component::Star),
        1 => simple.prop_filter("plus body nonempty", |p| !p.is_empty())
            .prop_map(Component::Plus),
    ];
    prop::collection::vec(component, 0..=depth)
        .prop_map(Path::new)
        .boxed()
}

/// Checks the soundness invariant of one No answer on one heap.
fn assert_no_is_sound(heap: &HeapGraph, origin: Origin, a: &Path, b: &Path) {
    let ra = a.to_regex();
    let rb = b.to_regex();
    for v in heap.nodes() {
        let ta = heap.targets(v, &ra);
        match origin {
            Origin::Same => {
                let tb = heap.targets(v, &rb);
                assert!(
                    ta.is_disjoint(&tb),
                    "No was unsound: {a} and {b} meet from {v} (same origin)"
                );
            }
            Origin::Distinct => {
                for w in heap.nodes() {
                    if v == w {
                        continue;
                    }
                    let tb = heap.targets(w, &rb);
                    assert!(
                        ta.is_disjoint(&tb),
                        "No was unsound: {a} from {v} meets {b} from {w}"
                    );
                }
            }
        }
    }
}

fn soundness_case(
    axioms: &AxiomSet,
    heaps: &[(HeapGraph, NodeId)],
    a: &Path,
    b: &Path,
    origin: Origin,
) {
    let mut prover = Prover::new(axioms);
    if let Some(proof) = DepQuery::disjoint(a, b)
        .origin(origin)
        .run_with(&mut prover)
        .proof
    {
        // Every produced derivation must pass the independent checker…
        apt_core::check_proof(axioms, &proof)
            .unwrap_or_else(|e| panic!("prover emitted an invalid proof: {e}\n{proof}"));
        // …and the verdict must hold on every conforming heap.
        for (heap, _root) in heaps {
            assert_no_is_sound(heap, origin, a, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Leaf-linked trees under the Figure 3 axioms.
    #[test]
    fn llt_no_answers_are_sound(
        a in path_strategy(&["L", "R", "N"], 4),
        b in path_strategy(&["L", "R", "N"], 4),
        same in any::<bool>(),
        seed in 0u64..64,
    ) {
        let axioms = adds::leaf_linked_tree_axioms();
        let heaps: Vec<_> = (0..3)
            .map(|k| gen::random_leaf_linked_tree(9 + 2 * (seed as usize % 4), seed + k * 101))
            .collect();
        // Sanity: generated instances satisfy the axioms.
        for (heap, _) in &heaps {
            prop_assert!(check_set(heap, &axioms).is_ok());
        }
        let origin = if same { Origin::Same } else { Origin::Distinct };
        soundness_case(&axioms, &heaps, &a, &b, origin);
    }

    /// Acyclic singly-linked lists.
    #[test]
    fn list_no_answers_are_sound(
        a in path_strategy(&["next"], 5),
        b in path_strategy(&["next"], 5),
        same in any::<bool>(),
        len in 2usize..12,
    ) {
        let axioms = AxiomSet::parse(
            "A1: forall p <> q, p.next <> q.next\n\
             A2: forall p, p.next+ <> p.eps",
        ).expect("axioms parse");
        let heaps = vec![gen::random_list(len, 0)];
        let origin = if same { Origin::Same } else { Origin::Distinct };
        soundness_case(&axioms, &heaps, &a, &b, origin);
    }

    /// Sparse matrices under the full Appendix A axiom set.
    #[test]
    fn sparse_no_answers_are_sound(
        a in path_strategy(&["nrowE", "ncolE", "relem", "nrowH"], 3),
        b in path_strategy(&["nrowE", "ncolE", "relem", "nrowH"], 3),
        same in any::<bool>(),
        seed in 0u64..32,
    ) {
        let axioms = adds::sparse_matrix_axioms();
        let m = gen::random_sparse_matrix(5, 7, seed);
        let (heap, root) = m.heap_graph();
        prop_assert!(check_set(&heap, &axioms).is_ok());
        let origin = if same { Origin::Same } else { Origin::Distinct };
        soundness_case(&axioms, &[(heap, root)], &a, &b, origin);
    }

    /// Yes answers are exact: identical definite paths really coincide on
    /// every heap where the walk is defined.
    #[test]
    fn definite_paths_reach_one_vertex(
        a in path_strategy(&["L", "R", "N"], 4),
        seed in 0u64..32,
    ) {
        prop_assume!(a.is_definite());
        let (heap, _root) = gen::random_leaf_linked_tree(11, seed);
        let re = a.to_regex();
        for v in heap.nodes() {
            prop_assert!(heap.targets(v, &re).len() <= 1);
        }
    }
}

/// The regression cases the paper highlights, as plain tests (these are
/// the proofs that MUST exist, complementing the must-not-be-unsound
/// property above).
#[test]
fn flagship_proofs_exist_and_are_sound() {
    let axioms = adds::leaf_linked_tree_axioms();
    let mut prover = Prover::new(&axioms);
    let a = Path::parse("L.L.N").expect("path");
    let b = Path::parse("L.R.N").expect("path");
    assert!(DepQuery::disjoint(&a, &b)
        .origin(Origin::Same)
        .run_with(&mut prover)
        .proof
        .is_some());
    for seed in 0..40 {
        let (heap, _) = gen::random_leaf_linked_tree(4 + (seed as usize % 14), seed);
        assert_no_is_sound(&heap, Origin::Same, &a, &b);
    }
}

#[test]
fn theorem_t_is_sound_on_real_matrices() {
    let axioms = adds::sparse_matrix_minimal_axioms();
    let mut prover = Prover::new(&axioms);
    let a = Path::parse("ncolE+").expect("path");
    let b = Path::parse("nrowE+.ncolE+").expect("path");
    assert!(DepQuery::disjoint(&a, &b)
        .origin(Origin::Same)
        .run_with(&mut prover)
        .proof
        .is_some());
    for seed in 0..10 {
        let m = gen::random_sparse_matrix(6, 9, seed);
        let (heap, _) = m.heap_graph();
        assert_no_is_sound(&heap, Origin::Same, &a, &b);
    }
}
