//! End-to-end crash and corruption recovery for the snapshot tier.
//!
//! The contract under test: a damaged snapshot can cost warmth, never
//! correctness or availability. Every case here mangles persisted
//! state a different way — truncation, a flipped bit, a stale version
//! header, a crash-orphaned temp file, an injected torn write — and
//! then demands the same three things of the restarted daemon: it
//! starts, it serves, and its verdicts match a cold start bit for bit.
//!
//! The protocol-chaos half drives the other robustness surfaces: the
//! slow-loris read deadline, client reconnection across a daemon
//! restart, and the distinct give-up error when the daemon stays dead.
//!
//! All daemons here speak over Unix sockets: restart tests rebind the
//! same address immediately, which TCP's TIME_WAIT would make flaky.

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use apt_axioms::adds::leaf_linked_tree_axioms;
use apt_serve::json::{obj, parse, Json};
use apt_serve::{Client, ClientError, FaultPlan, RetryPolicy, ServeConfig, Server, ServerHandle};

const SNAP_FILE: &str = "apt-serve.snap";
const TMP_FILE: &str = "apt-serve.snap.tmp";

/// The parity suite: provable disjointness (caches proofs, so the
/// restore-time spot-check runs), a star tower that fails proof search
/// (caches a definite Maybe), and a distinct-origin probe.
const QUERIES: &[(&str, &str, bool)] = &[
    ("L.N", "R.N", false),
    ("L.L.N", "R.R.N", false),
    ("L.L.L.N", "R.R.R.N", false),
    ("L.L.L.L.L.L.L.L.N", "(L|R)+.(L|R)+.(L|R)+.(L|R)+.N", false),
    ("L", "R", true),
];

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apt-snaprec-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    dir
}

fn sock_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("apt-snaprec-{name}-{}.sock", std::process::id()))
}

struct Daemon {
    handle: ServerHandle,
    thread: JoinHandle<()>,
    sock: PathBuf,
}

fn start(sock: &Path, config: ServeConfig) -> Daemon {
    let _ = std::fs::remove_file(sock);
    let mut server = Server::new(config);
    server.bind_unix(sock).expect("bind unix socket");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    Daemon {
        handle,
        thread,
        sock: sock.to_owned(),
    }
}

fn snapshot_config(dir: &Path) -> ServeConfig {
    let mut config = ServeConfig::new();
    config.snapshot_dir = Some(dir.to_owned());
    config
}

impl Daemon {
    /// Graceful stop: the drain path is what writes the shutdown
    /// snapshot, so every test ends daemons this way.
    fn stop(self) {
        self.handle.stop();
        // stop() only flags the shutdown; a shutdown verb wakes the
        // accept loop so the drain actually runs.
        if let Ok(mut c) = Client::connect_unix(&self.sock) {
            let _ = c.shutdown();
        }
        self.thread.join().expect("server thread");
    }
}

/// One verdict fingerprint per suite query, via a fresh client.
fn collect_verdicts(sock: &Path) -> Vec<String> {
    let mut client = Client::connect_unix(sock).expect("connect");
    let session = client
        .open_session(&leaf_linked_tree_axioms().to_string())
        .expect("open session");
    QUERIES
        .iter()
        .map(|&(a, b, distinct)| {
            let result = client
                .prove_disjoint(&session, a, b, distinct)
                .expect("prove round-trip");
            let verdict = apt_serve::proto::parse_verdict(&result).expect("verdict parses");
            let has_proof = !matches!(result.get("proof"), None | Some(Json::Null));
            format!("{verdict:?} proof={has_proof}")
        })
        .collect()
}

/// The `snapshot` block of the `stats` reply.
fn snapshot_stats(sock: &Path) -> Json {
    let mut client = Client::connect_unix(sock).expect("connect");
    let reply = client
        .roundtrip(obj(vec![("verb", "stats".into())]))
        .expect("stats round-trip");
    reply
        .get("server")
        .and_then(|s| s.get("snapshot"))
        .cloned()
        .expect("stats carries a snapshot block")
}

fn stat_str(snap: &Json, key: &str) -> String {
    snap.get(key)
        .and_then(Json::as_str)
        .unwrap_or("missing")
        .to_owned()
}

fn stat_u64(snap: &Json, key: &str) -> u64 {
    snap.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Warms a snapshotting daemon on the suite, stops it gracefully, and
/// returns the cold-start oracle verdicts alongside the snapshot path.
fn warm_snapshot(name: &str) -> (PathBuf, PathBuf, Vec<String>) {
    let dir = fresh_dir(name);
    let sock = sock_path(name);
    let daemon = start(&sock, snapshot_config(&dir));
    let oracle = collect_verdicts(&sock);
    daemon.stop();
    assert!(
        dir.join(SNAP_FILE).is_file(),
        "graceful shutdown must write {SNAP_FILE}"
    );
    (dir, sock, oracle)
}

/// Restarts against (possibly mangled) state in `dir` and asserts the
/// recovery contract: serving, verdict parity, expected restore kind.
fn assert_recovers(dir: &Path, sock: &Path, oracle: &[String], want_restore: &str) -> Json {
    let daemon = start(sock, snapshot_config(dir));
    let verdicts = collect_verdicts(sock);
    let snap = snapshot_stats(sock);
    daemon.stop();
    assert_eq!(verdicts, oracle, "verdicts must match a cold start");
    assert_eq!(stat_str(&snap, "last_restore"), want_restore, "{snap:?}");
    snap
}

#[test]
fn intact_snapshot_restores_warm() {
    let (dir, sock, oracle) = warm_snapshot("warm");
    let snap = assert_recovers(&dir, &sock, &oracle, "warm");
    assert!(stat_u64(&snap, "restored_goals") > 0, "{snap:?}");
    assert!(stat_u64(&snap, "restored_bytes") > 0, "{snap:?}");
    assert_eq!(stat_u64(&snap, "restored_sessions"), 1, "{snap:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_snapshot_recovers() {
    let (dir, sock, oracle) = warm_snapshot("trunc");
    let file = dir.join(SNAP_FILE);
    let bytes = std::fs::read(&file).expect("read snapshot");
    std::fs::write(&file, &bytes[..bytes.len() * 3 / 5]).expect("truncate snapshot");
    let snap = assert_recovers(&dir, &sock, &oracle, "cold");
    assert!(stat_u64(&snap, "corrupt_sections") >= 1, "{snap:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_section_recovers() {
    let (dir, sock, oracle) = warm_snapshot("flip");
    let file = dir.join(SNAP_FILE);
    let mut bytes = std::fs::read(&file).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&file, &bytes).expect("write flipped snapshot");
    let snap = assert_recovers(&dir, &sock, &oracle, "cold");
    assert!(stat_u64(&snap, "corrupt_sections") >= 1, "{snap:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_version_header_recovers() {
    let (dir, sock, oracle) = warm_snapshot("ver");
    let file = dir.join(SNAP_FILE);
    let mut bytes = std::fs::read(&file).expect("read snapshot");
    // The u32 version sits right after the 8-byte magic. A snapshot
    // from some future format must read as "no snapshot", not panic.
    bytes[8..12].copy_from_slice(&0xdead_beefu32.to_le_bytes());
    std::fs::write(&file, &bytes).expect("write future-version snapshot");
    assert_recovers(&dir, &sock, &oracle, "cold");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn orphaned_tmp_file_is_swept_and_snapshot_restores() {
    // A kill -9 between temp-file write and rename leaves the temp
    // behind next to a good (older) snapshot. Restore must use the
    // snapshot and sweep the orphan.
    let (dir, sock, oracle) = warm_snapshot("tmp");
    std::fs::write(dir.join(TMP_FILE), b"half-written garbage").expect("plant orphan tmp");
    let snap = assert_recovers(&dir, &sock, &oracle, "warm");
    assert!(stat_u64(&snap, "restored_goals") > 0, "{snap:?}");
    assert!(
        !dir.join(TMP_FILE).exists(),
        "restore must remove the orphaned temp file"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_shutdown_write_recovers() {
    // An injected torn write materializes the crash-after-rename-
    // before-flush state: the snapshot file exists but holds only a
    // prefix of the payload.
    let name = "torn";
    let dir = fresh_dir(name);
    let sock = sock_path(name);
    let mut config = snapshot_config(&dir);
    config.fault_plan = Some(Arc::new(FaultPlan::parse("torn=0.25").expect("fault spec")));
    let daemon = start(&sock, config);
    let oracle = collect_verdicts(&sock);
    daemon.stop();
    assert!(
        dir.join(SNAP_FILE).is_file(),
        "the torn write still renames into place"
    );
    let snap = assert_recovers(&dir, &sock, &oracle, "cold");
    assert!(stat_u64(&snap, "corrupt_sections") >= 1, "{snap:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flusher_survives_injected_write_error() {
    let name = "flush";
    let dir = fresh_dir(name);
    let sock = sock_path(name);
    let mut config = snapshot_config(&dir);
    config.snapshot_interval = Some(Duration::from_millis(50));
    config.fault_plan = Some(Arc::new(
        FaultPlan::parse("write_err=1").expect("fault spec"),
    ));
    let daemon = start(&sock, config);
    let oracle = collect_verdicts(&sock);

    // The first periodic flush eats the injected error; the fault is
    // one-shot, so a later flush must succeed while serving continues.
    let deadline = Instant::now() + Duration::from_secs(10);
    let healthy = loop {
        let snap = snapshot_stats(&sock);
        if stat_u64(&snap, "write_errors") >= 1 && stat_u64(&snap, "writes_total") >= 1 {
            break snap;
        }
        assert!(
            Instant::now() < deadline,
            "flusher never recovered: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(40));
    };
    assert!(stat_u64(&healthy, "last_write_bytes") > 0, "{healthy:?}");
    daemon.stop();

    // The flusher-written snapshot restores warm like a shutdown one.
    let snap = assert_recovers(&dir, &sock, &oracle, "warm");
    assert!(stat_u64(&snap, "restored_goals") > 0, "{snap:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_loris_partial_frame_gets_timeout_frame() {
    let name = "loris";
    let sock = sock_path(name);
    let mut config = ServeConfig::new();
    config.idle_timeout = Some(Duration::from_millis(200));
    let daemon = start(&sock, config);

    let mut stream = UnixStream::connect(&sock).expect("connect raw");
    // A frame that never finishes: bytes but no newline.
    stream
        .write_all(br#"{"verb":"prove","session":"#)
        .expect("dribble bytes");
    stream.flush().expect("flush");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read error frame");
    let frame = parse(line.trim()).expect("error frame parses");
    assert_eq!(
        frame.get("error").and_then(Json::as_str),
        Some("timeout"),
        "{line}"
    );
    // After the frame, the server hangs up.
    let mut rest = Vec::new();
    let n = reader.read_to_end(&mut rest).expect("read EOF");
    assert_eq!(n, 0, "connection must close after the timeout frame");
    daemon.stop();
}

#[test]
fn client_rides_out_a_daemon_restart() {
    let name = "ride";
    let dir = fresh_dir(name);
    let sock = sock_path(name);
    let axioms = leaf_linked_tree_axioms().to_string();

    let first = start(&sock, snapshot_config(&dir));
    let mut client = Client::connect_unix(&sock)
        .expect("connect")
        .with_retry(RetryPolicy::new());
    let session = client.open_session(&axioms).expect("open session");
    let before = client
        .prove_disjoint(&session, "L.N", "R.N", false)
        .expect("prove before restart");
    first.stop();

    // Same socket path, new process-equivalent. The client's next
    // idempotent call fails on the dead connection, reconnects, and the
    // registry's structural dedupe lands it on the restored engine.
    let second = start(&sock, snapshot_config(&dir));
    let session = client
        .open_session(&axioms)
        .expect("open_session retries across the restart");
    let after = client
        .prove_disjoint(&session, "L.N", "R.N", false)
        .expect("prove after restart");
    assert_eq!(
        apt_serve::proto::parse_verdict(&before),
        apt_serve::proto::parse_verdict(&after)
    );
    let snap = snapshot_stats(&sock);
    assert_eq!(stat_str(&snap, "last_restore"), "warm", "{snap:?}");
    second.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retries_exhausted_when_the_daemon_stays_dead() {
    let name = "dead";
    let sock = sock_path(name);
    let daemon = start(&sock, ServeConfig::new());
    let policy = RetryPolicy {
        max_attempts: 2,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(20),
    };
    let mut client = Client::connect_unix(&sock)
        .expect("connect")
        .with_retry(policy);
    let session = client
        .open_session(&leaf_linked_tree_axioms().to_string())
        .expect("open session");
    daemon.stop();
    let _ = std::fs::remove_file(&sock);

    let err = client
        .prove_disjoint(&session, "L.N", "R.N", false)
        .expect_err("the daemon is gone for good");
    match err {
        ClientError::RetriesExhausted { attempts, .. } => assert_eq!(attempts, 2),
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}
