//! Drives the `apt` CLI subcommands over the shipped demo files in
//! `examples/programs/` — the exact flows a downstream user runs first.

use apt_cli::{
    cmd_apm, cmd_prove, cmd_query_carried, cmd_query_sequential, cmd_report, PortfolioOpts,
};
use apt_core::{Origin, ProverConfig};

fn cfg() -> ProverConfig {
    ProverConfig::default()
}

fn demo(name: &str) -> String {
    let path = format!("{}/examples/programs/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn prove_on_shipped_adds_file() {
    let out = cmd_prove(
        &demo("llt.adds"),
        "L.L.N",
        "L.R.N",
        Origin::Same,
        &cfg(),
        &PortfolioOpts::off(),
    )
    .expect("runs");
    assert!(out.contains("PROVEN"), "{out}");
    assert!(out.contains("checked"), "{out}");
}

#[test]
fn prove_theorem_t_on_shipped_axiom_file() {
    let out = cmd_prove(
        &demo("sparse.axioms"),
        "ncolE+",
        "nrowE+.ncolE+",
        Origin::Same,
        &cfg(),
        &PortfolioOpts::off(),
    )
    .expect("runs");
    assert!(out.contains("PROVEN"), "{out}");
}

#[test]
fn query_subr_s_to_t() {
    let text = demo("subr.apt");
    let out =
        cmd_query_sequential(&text, None, "S", "T", &cfg(), &PortfolioOpts::off()).expect("runs");
    assert!(out.contains("answer: No"), "{out}");
    assert!(out.contains("by axiom A1"), "{out}");
}

#[test]
fn apm_shows_the_papers_matrices() {
    let out = cmd_apm(&demo("subr.apt"), None).expect("runs");
    assert!(out.contains("_hroot"), "{out}");
    assert!(out.contains("L.L.N"), "{out}");
    assert!(out.contains("L.R.N"), "{out}");
}

#[test]
fn factor_report_parallelizes_both_loops() {
    let text = demo("factor.apt");
    let report = cmd_report(&text, None, &cfg(), &PortfolioOpts::off()).expect("runs");
    assert!(report.contains("PARALLELIZABLE"), "{report}");
    // Both loop levels break.
    let l1 = cmd_query_carried(&text, None, "S", Some("L1"), &cfg(), &PortfolioOpts::off())
        .expect("runs");
    assert!(l1.contains("answer: No"), "{l1}");
    assert!(l1.contains("nrowE+"), "{l1}");
    let l2 = cmd_query_carried(&text, None, "S", Some("L2"), &cfg(), &PortfolioOpts::off())
        .expect("runs");
    assert!(l2.contains("answer: No"), "{l2}");
}
