//! Parity of the indexed proof search against the linear axiom scan.
//!
//! The compiled dispatch index (first-/last-symbol bitsets, compile-time
//! injectivity, negative memo) is a pure pruning layer: every axiom
//! orientation it skips could not have produced a subset match, and every
//! failure it caches was established without consulting budget state or
//! in-progress ancestors. Consequently the indexed prover must return the
//! **identical** verdict, degradation reason, and proof text as a prover
//! running the literal linear scan (`enable_axiom_dispatch = false`,
//! `enable_negative_memo = false`) — on the Figure 3 leaf-linked tree,
//! the §5 minimal sparse-matrix set, and the full Appendix A set, over
//! random path goals.
//!
//! Under a tight fuel budget the two kernels may degrade at different
//! points (the index does strictly less work per goal), so there parity
//! is conditional: when *neither* run degraded, the outcomes are
//! identical, and any clean answer must match the unbudgeted truth.

use apt_axioms::adds::{
    leaf_linked_tree_axioms, sparse_matrix_axioms, sparse_matrix_minimal_axioms,
};
use apt_axioms::AxiomSet;
use apt_core::{Answer, Budget, DepQuery, MaybeReason, Origin, Outcome, Prover, ProverConfig};
use apt_regex::{Component, Path, Symbol};
use proptest::prelude::*;

/// The pre-index search: every axiom tried in set order, no failure memo.
fn linear_config() -> ProverConfig {
    ProverConfig {
        enable_axiom_dispatch: false,
        enable_negative_memo: false,
        ..ProverConfig::default()
    }
}

/// The three paper axiom sets the parity suite runs over.
fn axiom_set(which: usize) -> AxiomSet {
    match which % 3 {
        0 => leaf_linked_tree_axioms(),      // Figure 3
        1 => sparse_matrix_minimal_axioms(), // §5
        _ => sparse_matrix_axioms(),         // Appendix A
    }
}

/// Decodes a path spec against an alphabet: each element picks a symbol
/// by index and a decoration (plain field, `sym+`, or `sym*`).
fn decode_path(spec: &[(usize, u8)], alphabet: &[Symbol]) -> Path {
    let mut path = Path::new(Vec::new());
    for &(i, deco) in spec {
        let sym = alphabet[i % alphabet.len()];
        let unit = Path::new(vec![Component::Field(sym)]);
        path.push(match deco % 4 {
            0 | 1 => Component::Field(sym),
            2 => Component::Plus(unit),
            _ => Component::Star(unit),
        });
    }
    path
}

type Fingerprint = (Answer, Option<MaybeReason>, Option<String>);

/// Everything observable about an outcome: answer, degradation pedigree,
/// and the rendered proof (text equality means the same proof tree).
fn fingerprint(outcome: &Outcome) -> Fingerprint {
    (
        outcome.verdict.answer,
        outcome.maybe_reason,
        outcome.proof.as_ref().map(|p| p.to_string()),
    )
}

fn degraded(outcome: &Outcome) -> bool {
    outcome.maybe_reason.is_some_and(|r| r.is_degraded())
}

fn spec_strategy() -> impl Strategy<Value = Vec<(usize, u8)>> {
    prop::collection::vec((0usize..8, any::<u8>()), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Disjointness: verdict, reason, and proof text all identical at the
    /// default budget.
    #[test]
    fn disjointness_scans_agree(
        which in 0usize..3,
        sa in spec_strategy(),
        sb in spec_strategy(),
        distinct in any::<bool>(),
    ) {
        let axioms = axiom_set(which);
        let alphabet = axioms.symbols();
        prop_assume!(!alphabet.is_empty());
        let a = decode_path(&sa, &alphabet);
        let b = decode_path(&sb, &alphabet);
        let origin = if distinct { Origin::Distinct } else { Origin::Same };
        let query = DepQuery::disjoint(&a, &b).origin(origin);
        let mut linear = Prover::with_config(&axioms, linear_config());
        let mut indexed = Prover::with_config(&axioms, ProverConfig::default());
        prop_assert_eq!(
            fingerprint(&query.run_with(&mut linear)),
            fingerprint(&query.run_with(&mut indexed)),
            "{} <> {} under {:?}", a, b, origin
        );
    }

    /// Equality queries (R9's customers) agree the same way.
    #[test]
    fn equality_scans_agree(
        which in 0usize..3,
        sa in spec_strategy(),
        sb in spec_strategy(),
    ) {
        let axioms = axiom_set(which);
        let alphabet = axioms.symbols();
        prop_assume!(!alphabet.is_empty());
        let a = decode_path(&sa, &alphabet);
        let b = decode_path(&sb, &alphabet);
        let query = DepQuery::equal(&a, &b);
        let mut linear = Prover::with_config(&axioms, linear_config());
        let mut indexed = Prover::with_config(&axioms, ProverConfig::default());
        prop_assert_eq!(
            fingerprint(&query.run_with(&mut linear)),
            fingerprint(&query.run_with(&mut indexed)),
            "{} = {}", a, b
        );
    }

    /// Budget-tripped parity: under a tight fuel budget, if neither kernel
    /// degraded the outcomes are identical, and any clean answer matches
    /// the unbudgeted truth (a budget may only degrade to Maybe, never
    /// flip a verdict).
    #[test]
    fn tight_budgets_keep_parity(
        which in 0usize..3,
        sa in spec_strategy(),
        sb in spec_strategy(),
        fuel in 1u64..64,
    ) {
        let axioms = axiom_set(which);
        let alphabet = axioms.symbols();
        prop_assume!(!alphabet.is_empty());
        let a = decode_path(&sa, &alphabet);
        let b = decode_path(&sb, &alphabet);
        let query = DepQuery::disjoint(&a, &b).origin(Origin::Same);
        let budget = Budget::new().with_fuel(fuel);
        let linear_cfg = ProverConfig { budget: budget.clone(), ..linear_config() };
        let indexed_cfg = ProverConfig { budget, ..ProverConfig::default() };
        let lo = query.run_with(&mut Prover::with_config(&axioms, linear_cfg));
        let io = query.run_with(&mut Prover::with_config(&axioms, indexed_cfg));
        if !degraded(&lo) && !degraded(&io) {
            prop_assert_eq!(
                fingerprint(&lo),
                fingerprint(&io),
                "clean runs diverged on {} <> {}", a, b
            );
        }
        let truth = query.run_with(&mut Prover::with_config(&axioms, linear_config()));
        for (name, o) in [("linear", &lo), ("indexed", &io)] {
            if !degraded(o) {
                prop_assert_eq!(
                    o.verdict.answer,
                    truth.verdict.answer,
                    "{} kernel's clean answer contradicts the truth on {} <> {}",
                    name, a, b
                );
            }
        }
    }
}

/// The §3.3 worked example must produce byte-identical proofs: the
/// dispatch index preserves axiom iteration order, so the first proof
/// found is the same proof.
#[test]
fn paper_example_proofs_are_byte_identical() {
    let axioms = leaf_linked_tree_axioms();
    let p = |s: &str| Path::parse(s).expect("example path parses");
    let examples = [
        ("L.L.N", "L.R.N"),
        ("L.N+", "R.N+"),
        ("L", "R"),
        ("N.N", "N"),
    ];
    for (a, b) in examples {
        let query = DepQuery::disjoint(&p(a), &p(b)).origin(Origin::Same);
        let linear = query.run_with(&mut Prover::with_config(&axioms, linear_config()));
        let indexed = query.run_with(&mut Prover::with_config(&axioms, ProverConfig::default()));
        assert_eq!(
            fingerprint(&linear),
            fingerprint(&indexed),
            "{a} <> {b} diverged"
        );
    }
}

/// Guard against the flag being plumbed but ignored: on the Figure 3 set
/// the dispatch signatures must actually prune orientations, and the
/// linear configuration must never touch the dispatch counters.
#[test]
fn dispatch_counters_separate_the_kernels() {
    let axioms = leaf_linked_tree_axioms();
    let p = |s: &str| Path::parse(s).expect("path parses");
    let queries = [("L.L.N", "L.R.N"), ("L.N+", "R.N+"), ("N.N", "N.N")];

    let mut indexed = Prover::with_config(&axioms, ProverConfig::default());
    let mut linear = Prover::with_config(&axioms, linear_config());
    for (a, b) in queries {
        let q = DepQuery::disjoint(&p(a), &p(b)).origin(Origin::Same);
        q.run_with(&mut indexed);
        q.run_with(&mut linear);
    }
    let is = indexed.stats();
    let ls = linear.stats();
    assert!(is.dispatch_hits > 0, "index never admitted an axiom");
    assert!(
        is.subset_checks <= ls.subset_checks,
        "indexed search did more subset work ({} > {})",
        is.subset_checks,
        ls.subset_checks
    );
    assert_eq!(ls.dispatch_hits, 0, "linear scan consulted the index");
    assert_eq!(ls.dispatch_misses, 0, "linear scan consulted the index");
    assert_eq!(ls.neg_memo_hits, 0, "linear scan consulted the memo");
}
