//! Parity suite for the flat-table DFA core.
//!
//! `Dfa` stores its transition function as one contiguous row-major
//! `u32` table. This suite pins that layout to the semantics of the
//! nested-`Vec<Vec<usize>>` representation it replaced: a reference
//! subset construction (embedded here, nested vectors, identical
//! worklist discipline and metering) is run side by side with the
//! production builder on random regexes, and everything observable must
//! match — every transition, acceptance of every short word, the
//! limit-tripped outcome under the same state budget, and the
//! minimized-DFA state count.

use apt_regex::bitset::BitSet;
use apt_regex::dfa::Dfa;
use apt_regex::nfa::Nfa;
use apt_regex::{LimitExceeded, Limits, Regex, Symbol};
use proptest::prelude::*;

/// The pre-flattening representation: one heap `Vec` of successors per
/// state. Built by the same bitset subset construction, same worklist
/// order, same per-state metering (`check_states` after each state is
/// materialized, exactly like the production `Meter`).
struct RefDfa {
    alphabet: Vec<Symbol>,
    trans: Vec<Vec<usize>>,
    accept: Vec<bool>,
    start: usize,
}

impl RefDfa {
    fn try_build(
        re: &Regex,
        alphabet: &[Symbol],
        limits: &Limits,
    ) -> Result<RefDfa, LimitExceeded> {
        let nfa = Nfa::build(re);
        let n = nfa.state_count();
        let k = alphabet.len();
        let closures = nfa.epsilon_closures();
        let mut states: std::collections::HashMap<BitSet, usize> = std::collections::HashMap::new();
        let mut trans: Vec<Vec<usize>> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut worklist: Vec<(usize, BitSet)> = Vec::new();
        let mut metered = 0usize;
        let add_state = |metered: &mut usize| -> Result<(), LimitExceeded> {
            *metered += 1;
            limits.check_states(*metered)
        };

        let start_set = closures[nfa.start()].clone();
        add_state(&mut metered)?;
        states.insert(start_set.clone(), 0);
        trans.push(vec![usize::MAX; k]);
        accept.push(start_set.contains(nfa.accept()));
        worklist.push((0, start_set));

        while let Some((id, set)) = worklist.pop() {
            for (ai, &sym) in alphabet.iter().enumerate() {
                let mut next = BitSet::new(n);
                nfa.step_closure_into(&set, sym, &closures, &mut next);
                let next_id = match states.get(&next) {
                    Some(&i) => i,
                    None => {
                        add_state(&mut metered)?;
                        let i = accept.len();
                        states.insert(next.clone(), i);
                        trans.push(vec![usize::MAX; k]);
                        accept.push(next.contains(nfa.accept()));
                        worklist.push((i, next));
                        i
                    }
                };
                trans[id][ai] = next_id;
            }
        }
        Ok(RefDfa {
            alphabet: alphabet.to_vec(),
            trans,
            accept,
            start: 0,
        })
    }

    fn accepts(&self, word: &[Symbol]) -> bool {
        let mut s = self.start;
        for sym in word {
            let ai = self.alphabet.iter().position(|a| a == sym).unwrap();
            s = self.trans[s][ai];
        }
        self.accept[s]
    }

    /// Moore refinement over the nested representation — only the final
    /// block count is compared (minimized DFAs are unique up to
    /// isomorphism, so equal counts + equal language is the full claim,
    /// and the language side is covered by the word checks).
    fn minimized_state_count(&self) -> usize {
        let n = self.accept.len();
        let mut block_of: Vec<usize> = self.accept.iter().map(|&a| usize::from(!a)).collect();
        let mut block_count = if self.accept.iter().all(|&a| a == self.accept[0]) {
            block_of.fill(0);
            1
        } else {
            2
        };
        loop {
            let mut sig_to_block: std::collections::HashMap<Vec<usize>, usize> =
                std::collections::HashMap::new();
            let mut new_block_of = vec![0usize; n];
            for s in 0..n {
                let mut sig = vec![block_of[s]];
                sig.extend(self.trans[s].iter().map(|&t| block_of[t]));
                let next = sig_to_block.len();
                let b = *sig_to_block.entry(sig).or_insert(next);
                new_block_of[s] = b;
            }
            if sig_to_block.len() == block_count {
                return block_count;
            }
            block_count = sig_to_block.len();
            block_of = new_block_of;
        }
    }
}

fn alphabet() -> Vec<Symbol> {
    ["a", "b", "c"].iter().map(|s| Symbol::intern(s)).collect()
}

/// All words over the alphabet up to length 4 (121 words).
fn short_words(alpha: &[Symbol]) -> Vec<Vec<Symbol>> {
    let mut words = vec![vec![]];
    let mut frontier = vec![vec![]];
    for _ in 0..4 {
        let mut next = Vec::new();
        for base in &frontier {
            for &s in alpha {
                let mut w = base.clone();
                w.push(s);
                next.push(w);
            }
        }
        words.extend(next.iter().cloned());
        frontier = next;
    }
    words
}

fn regex_strategy() -> BoxedStrategy<Regex> {
    let leaf = prop_oneof![
        3 => prop::sample::select(vec!["a", "b", "c"]).prop_map(Regex::field),
        1 => Just(Regex::epsilon()),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Regex::concat(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Regex::alt(x, y)),
            inner.clone().prop_map(Regex::star),
            inner.prop_map(Regex::plus),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Unbounded: the flat table is transition-for-transition identical
    /// to the nested reference (same state ids — both constructions pop
    /// the same worklist in the same order), and agrees on every short
    /// word.
    #[test]
    fn flat_table_matches_nested_reference(re in regex_strategy()) {
        let alpha = alphabet();
        let flat = Dfa::try_build(&re, &alpha, &Limits::none()).unwrap();
        let reference = RefDfa::try_build(&re, &alpha, &Limits::none()).unwrap();
        prop_assert_eq!(flat.state_count(), reference.accept.len());
        prop_assert_eq!(flat.start(), reference.start);
        for s in 0..flat.state_count() {
            prop_assert_eq!(flat.is_accepting(s), reference.accept[s], "accept of {}", s);
            for (ai, &sym) in alpha.iter().enumerate() {
                prop_assert_eq!(
                    flat.next_state(s, sym),
                    reference.trans[s][ai],
                    "transition ({}, {})", s, sym
                );
            }
        }
        for word in short_words(&alpha) {
            prop_assert_eq!(flat.accepts(&word), reference.accepts(&word), "word {:?}", word);
        }
    }

    /// Metering parity: under every budget at or below the true state
    /// count, both constructions trip the identical `States` error; at
    /// the exact count and above, both succeed.
    #[test]
    fn state_budgets_trip_identically(re in regex_strategy()) {
        let alpha = alphabet();
        let full = Dfa::try_build(&re, &alpha, &Limits::none()).unwrap();
        let n = full.state_count();
        for budget in [1, n.saturating_sub(1).max(1), n, n + 1] {
            let limits = Limits::none().with_max_states(budget);
            let flat = Dfa::try_build(&re, &alpha, &limits).map(|d| d.state_count());
            let reference = RefDfa::try_build(&re, &alpha, &limits).map(|d| d.accept.len());
            prop_assert_eq!(flat, reference, "budget {}", budget);
            if budget >= n {
                prop_assert!(Dfa::try_build(&re, &alpha, &limits).is_ok());
            } else {
                prop_assert_eq!(
                    Dfa::try_build(&re, &alpha, &limits).err(),
                    Some(LimitExceeded::States { budget })
                );
            }
        }
    }

    /// Minimization parity: the flat quotient has exactly as many states
    /// as Moore refinement over the nested representation, preserves the
    /// language on short words, and never grows.
    #[test]
    fn minimized_state_counts_match(re in regex_strategy()) {
        let alpha = alphabet();
        let flat = Dfa::try_build(&re, &alpha, &Limits::none()).unwrap();
        let min = flat.minimize();
        let reference = RefDfa::try_build(&re, &alpha, &Limits::none()).unwrap();
        prop_assert_eq!(min.state_count(), reference.minimized_state_count());
        prop_assert!(min.state_count() <= flat.state_count());
        for word in short_words(&alpha) {
            prop_assert_eq!(min.accepts(&word), flat.accepts(&word), "word {:?}", word);
        }
    }
}
