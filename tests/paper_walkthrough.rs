//! Integration tests reproducing the paper's worked examples exactly:
//! Figure 1 (the motivating loop), Figure 3 + §3.3 (leaf-linked tree),
//! and the structural-modification discussion of §3.4.

use apt_core::{Answer, DepQuery, Origin, Prover, Rule};
use apt_paths::analyze_proc;
use apt_regex::Path;

const TREE_TYPE: &str = r"
    type LLBinaryTree {
        ptr L: LLBinaryTree;
        ptr R: LLBinaryTree;
        ptr N: LLBinaryTree;
        data d;
        axiom A1: forall p, p.L <> p.R;
        axiom A2: forall p <> q, p.(L|R) <> q.(L|R);
        axiom A3: forall p <> q, p.N <> q.N;
        axiom A4: forall p, p.(L|R|N)+ <> p.eps;
    }";

#[test]
fn section_3_3_subr_full_pipeline() {
    let src = format!(
        "{TREE_TYPE}
        proc subr(root: LLBinaryTree) {{
            root = root->L;
            p = root->L;
            p = p->N;
        S:  p->d = 100;
            p = root;
            q = root->R;
            q = q->N;
        T:  t = q->d;
        }}"
    );
    let program = apt_ir::parse_program(&src).expect("parses");
    let analysis = analyze_proc(&program, "subr").expect("analyzes");

    // The APM at S carries the paper's exact paths.
    let s = analysis.snapshot("S").expect("S snapshot");
    let p_paths: Vec<String> = s
        .apm
        .paths_of("p")
        .into_iter()
        .map(|(h, p)| format!("{h}:{p}"))
        .collect();
    assert!(
        p_paths.iter().any(|x| x.ends_with(":L.L.N")),
        "expected _hroot.L.L.N, got {p_paths:?}"
    );
    assert!(
        p_paths.iter().any(|x| x.ends_with(":N")),
        "expected _hp.N, got {p_paths:?}"
    );
    // root itself is at L from its original handle.
    let root_paths: Vec<String> = s
        .apm
        .paths_of("root")
        .into_iter()
        .map(|(_, p)| p.to_string())
        .collect();
    assert_eq!(root_paths, vec!["L".to_owned()]);

    // At T, q is _hroot.L.R.N and p was re-anchored (the paper's _hp2).
    let t = analysis.snapshot("T").expect("T snapshot");
    let q_paths: Vec<String> = t
        .apm
        .paths_of("q")
        .into_iter()
        .map(|(_, p)| p.to_string())
        .collect();
    assert!(q_paths.contains(&"L.R.N".to_owned()), "{q_paths:?}");
    let p_at_t: Vec<String> = t
        .apm
        .paths_of("p")
        .into_iter()
        .map(|(_, p)| p.to_string())
        .collect();
    assert!(p_at_t.contains(&"eps".to_owned()), "{p_at_t:?}");

    // The dependence is disproven, with the paper's proof shape: A3 peels
    // the common N, then the common L head peels, then A1 closes.
    let outcome = analysis.test_sequential("S", "T").expect("query");
    assert_eq!(outcome.answer, Answer::No);
    let proof = &outcome.proofs[0];
    let used = proof.axioms_used();
    assert!(used.contains(&"A1".to_owned()) && used.contains(&"A3".to_owned()));
    assert!(matches!(proof.rule, Rule::TailPeel { .. }));
}

#[test]
fn figure_1_loop_carried_output_dependence() {
    // "there exists a loop-carried output dependence from the statement U
    // to itself iff q from one iteration points to the same memory
    // location as a q from a later iteration" — with listness axioms APT
    // breaks it.
    let src = r"
        type Thing {
            ptr link: Thing;
            data f;
            axiom A1: forall p <> q, p.link <> q.link;
            axiom A2: forall p, p.link+ <> p.eps;
        }
        proc figure1(head: Thing) {
            q = head;
            loop {
            U:  q->f = fun();
                q = q->link;
            }
        }";
    let program = apt_ir::parse_program(src).expect("parses");
    let analysis = analyze_proc(&program, "figure1").expect("analyzes");
    let (ri, rj) = analysis.loop_carried_pair("U", None).expect("pair");
    assert_eq!(ri.access.path.to_string(), "eps");
    assert_eq!(rj.access.path.to_string(), "link+");
    assert_eq!(
        analysis.test_loop_carried("U", None).expect("query").answer,
        Answer::No
    );
}

#[test]
fn figure_1_without_acyclicity_stays_conservative() {
    // On a possibly-circular list the same loop DOES carry a dependence;
    // removing the acyclicity axiom must flip the answer to Maybe.
    let src = r"
        type Ring {
            ptr link: Ring;
            data f;
            axiom A1: forall p <> q, p.link <> q.link;
        }
        proc walk(head: Ring) {
            q = head;
            loop {
            U:  q->f = fun();
                q = q->link;
            }
        }";
    let program = apt_ir::parse_program(src).expect("parses");
    let analysis = analyze_proc(&program, "walk").expect("analyzes");
    assert_eq!(
        analysis.test_loop_carried("U", None).expect("query").answer,
        Answer::Maybe
    );
}

#[test]
fn section_3_4_modification_invalidates_queries() {
    // "When a data structure undergoes structural modification … this can
    // invalidate both access paths and axioms." Paths that traverse the
    // stored field are refused across the modification…
    let src = format!(
        "{TREE_TYPE}
        proc grow(root: LLBinaryTree) {{
            p = root->L;
        S:  p->d = 1;
            n = malloc(LLBinaryTree);
            p->L = n;
            q = root->L;
        T:  t = q->d;
        }}"
    );
    let program = apt_ir::parse_program(&src).expect("parses");
    let analysis = analyze_proc(&program, "grow").expect("analyzes");
    assert!(analysis.sequential_pairs("S", "T").is_err());
    // …while axioms over the stored field become suspect until a
    // reassert (the §3.4 intersection of valid axiom sets).
    let s = analysis.snapshot("S").expect("S");
    let t = analysis.snapshot("T").expect("T");
    let valid = analysis.valid_axioms(&[s, t]);
    assert!(valid.by_name("A1").is_none(), "A1 mentions L");
    assert!(valid.by_name("A3").is_some(), "A3 is over N only");
    // …and the same query BEFORE the modification works fine.
    let src2 = format!(
        "{TREE_TYPE}
        proc read_only(root: LLBinaryTree) {{
            p = root->L;
        S:  p->d = 1;
            q = root->R;
        T:  t = q->d;
        }}"
    );
    let program2 = apt_ir::parse_program(&src2).expect("parses");
    let analysis2 = analyze_proc(&program2, "read_only").expect("analyzes");
    assert_eq!(
        analysis2.test_sequential("S", "T").expect("query").answer,
        Answer::No
    );
}

#[test]
fn proof_traces_render_the_paper_narrative() {
    // The §3.3 proof text: "Applying A3, theorem is true if _hroot.LL <>
    // _hroot.LR. Since both paths start from the same vertex and begin
    // with L, reduces to showing that _hroot'.L <> _hroot'.R. Applying A1,
    // this holds."
    let axioms = apt_axioms::adds::leaf_linked_tree_axioms();
    let mut prover = Prover::new(&axioms);
    let proof = DepQuery::disjoint(
        &Path::parse("L.L.N").expect("path"),
        &Path::parse("L.R.N").expect("path"),
    )
    .origin(Origin::Same)
    .run_with(&mut prover)
    .proof
    .expect("provable");
    let rendered = proof.to_string();
    assert!(rendered.contains("applying A3"), "got:\n{rendered}");
    assert!(
        rendered.contains("both paths start from the same vertex"),
        "got:\n{rendered}"
    );
    assert!(rendered.contains("by axiom A1"), "got:\n{rendered}");
}
