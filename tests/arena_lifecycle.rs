//! Lifecycle tests for the epoch-scoped regex arena.
//!
//! The arena is process-global, so these tests serialize on one mutex:
//! a concurrently open scope from another test would (soundly but
//! unhelpfully) retain entries these assertions expect to see freed.
//! Each test also uses its own unique field symbols, so hash-consing
//! can never land its expressions on entries some other test pinned.

use apt::core::{Answer, DepEngine, DepQuery, MemorySample, Origin};
use apt::regex::{arena_stats, parse, ArenaScope, Path, RegexId};
use apt::serve::SessionRegistry;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn scoped_interns_are_reclaimed_and_pins_survive() {
    let _guard = serialize();
    let pinned = RegexId::intern(&parse("alcPinA.alcPinB").unwrap());
    let before = arena_stats();

    let scope = ArenaScope::new();
    let ids: Vec<RegexId> = (0..32)
        .map(|i| RegexId::intern(&parse(&format!("alcScopedA{i}.alcScopedB{i}")).unwrap()))
        .collect();
    let during = arena_stats();
    assert!(during.live_nodes > before.live_nodes);
    assert!(during.live_bytes > before.live_bytes);
    assert_eq!(during.active_scopes, before.active_scopes + 1);
    // Every scoped id is usable while the scope lives.
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(
            id.to_regex().to_string(),
            format!("alcScopedA{i}.alcScopedB{i}")
        );
    }

    drop(scope);
    let after = arena_stats();
    assert!(
        after.live_nodes < during.live_nodes,
        "dropping the only scope must compact its entries \
         ({} -> {})",
        during.live_nodes,
        after.live_nodes
    );
    assert!(after.live_bytes < during.live_bytes);
    assert!(after.freed_total > before.freed_total);
    // Entries interned outside any scope are pinned and stay valid.
    assert_eq!(pinned.to_regex().to_string(), "alcPinA.alcPinB");
}

#[test]
fn overlapping_scopes_keep_shared_ids_valid_across_compaction() {
    let _guard = serialize();
    let outer = ArenaScope::new();
    let shared = RegexId::intern(&parse("alcSharedX.alcSharedY+").unwrap());

    // Inner scopes churn through private expressions and die. Attribution
    // is conservative: while `outer` is open it is charged for every
    // intern too, so the churned entries are *retained* until the outer
    // epoch also closes — over-retention, never a dangle.
    let freed_before = arena_stats().freed_total;
    for round in 0..8 {
        let _inner = ArenaScope::new();
        // Re-touch the shared expression under the new scope set, then
        // intern round-private garbage.
        assert_eq!(
            RegexId::intern(&parse("alcSharedX.alcSharedY+").unwrap()),
            shared
        );
        for i in 0..16 {
            let _ = RegexId::intern(&parse(&format!("alcChurnR{round}n{i}.alcTail")).unwrap());
        }
    }
    let live_while_outer_held = arena_stats();
    // The shared id is valid throughout: some open scope always held it.
    assert_eq!(shared.to_regex().to_string(), "alcSharedX.alcSharedY+");
    assert!(!shared.is_nullable());

    // Closing the outer epoch releases its charges; everything the churn
    // created (shared expression included) is compacted now.
    drop(outer);
    let end = arena_stats();
    assert!(
        end.freed_total > freed_before,
        "closing the last holding epoch must compact the churned entries"
    );
    assert!(end.live_nodes < live_while_outer_held.live_nodes);
}

/// The serving-layer churn story end to end: sessions opened past the
/// registry cap evict LRU engines, each eviction drops the engine's
/// arena scope, and the arena footprint plateaus instead of growing with
/// the number of sets ever opened.
#[test]
fn session_churn_bounds_arena_growth() {
    let _guard = serialize();
    let registry = SessionRegistry::new(2);

    let axioms_for = |i: usize| {
        format!(
            "A1: forall p <> q, p.alcSesF{i} <> q.alcSesF{i}\n\
             A2: forall p, p.alcSesG{i}+ <> p.alcSesH{i}.alcSesG{i}*"
        )
    };

    // Warm-up: fill the registry to its cap, then record the footprint.
    for i in 0..2 {
        registry.open(&axioms_for(i)).expect("open");
    }
    let full = arena_stats();

    // Churn 24 more distinct sets through the 2-slot registry. Each open
    // beyond the cap evicts an engine, closing its scope.
    let mut peak = full.live_bytes;
    for i in 2..26 {
        let opened = registry.open(&axioms_for(i)).expect("open");
        assert!(!opened.deduped);
        peak = peak.max(arena_stats().live_bytes);
    }
    let end = arena_stats();
    assert!(
        end.freed_total > full.freed_total,
        "evictions must compact the evicted sessions' arena entries"
    );
    // Bounded growth: the resident footprint tracks the 2 live sessions,
    // not the 26 sets ever opened. Allow generous slack (3 sets' worth)
    // for the in-flight overlap window during each open.
    let per_set = (full.live_bytes.saturating_sub(0)) / 2;
    let slack = 3 * per_set.max(4096);
    assert!(
        end.live_bytes <= full.live_bytes + slack,
        "arena grew with churn: {} bytes after churn vs {} warm (peak {})",
        end.live_bytes,
        full.live_bytes,
        peak
    );

    // A session surviving the churn still answers queries — its ids were
    // charged to its own scope, which never closed.
    let last = registry.open(&axioms_for(25)).expect("reopen");
    assert!(last.deduped, "same text must dedupe onto the live session");
    let engine = registry.get(&last.session).expect("live engine");
    let p = Path::parse("alcSesF25").expect("path");
    let q = DepQuery::disjoint(&p, &p).origin(Origin::Distinct);
    let outcome = engine.run(&q);
    // A1 makes alcSesF25 injective, so distinct origins stay disjoint.
    assert_eq!(outcome.verdict.answer, Answer::No);
}

/// Ids held by a live engine never dangle, even while other engines are
/// created and destroyed in bulk around it.
#[test]
fn live_engine_ids_survive_neighbor_compaction() {
    let _guard = serialize();
    let set = apt::axioms::AxiomSet::parse(
        "K1: forall p <> q, p.alcLiveN <> q.alcLiveN\n\
         K2: forall p, p.alcLiveL+ <> p.alcLiveR+",
    )
    .expect("parse");
    let engine = DepEngine::new(set);
    let lhs_ids: Vec<RegexId> = engine.axioms().iter().map(|a| a.lhs_id()).collect();

    for i in 0..6 {
        let scratch = apt::axioms::AxiomSet::parse(&format!(
            "S1: forall p <> q, p.alcScratch{i} <> q.alcScratch{i}"
        ))
        .expect("parse");
        let neighbor = DepEngine::new(scratch);
        drop(neighbor);
    }

    // All of the engine's interned sides still resolve.
    for (axiom, id) in engine.axioms().iter().zip(&lhs_ids) {
        assert_eq!(id.to_regex(), axiom.lhs().clone());
    }
    let mem = MemorySample::take();
    assert!(mem.arena.live_nodes >= 2);
}
