//! Parser fuzzing: every user-facing front end — regular path
//! expressions, axiom lines, ADDS descriptions, and the IR mini
//! language — must survive arbitrary bytes and near-miss mutations of
//! valid inputs without panicking, and every rejection must carry
//! usable position information (a byte offset or 1-based line).

use apt_axioms::{adds::parse_adds, Axiom, AxiomSet};
use proptest::prelude::*;

const REGEX_CORPUS: &[&str] = &[
    "L.L.N",
    "(L|R)+.N*",
    "ncolE+.nrowE",
    "eps",
    "(a|b)*.a.(a|b)",
    "L+|R+",
    "((L|R).N)*",
];

const AXIOM_CORPUS: &[&str] = &[
    "A1: forall p, p.L <> p.R",
    "forall p <> q, p.(L|R) <> q.(L|R)",
    "C1: forall p, p.next.prev = p.eps",
    "A4: forall p, p.(L|R|N)+ <> p.eps",
];

const ADDS_CORPUS: &[&str] = &[
    "structure T { tree L, R; list N; acyclic L, R, N; }",
    "structure M { tree L, R; }",
    "structure D { list next; cycle next, prev; }",
];

const IR_CORPUS: &[&str] = &[
    "type List { ptr link: List; data f; }\nproc f(h: List) { q = h; }",
    "type T { ptr L: T; ptr R: T; data d;\n  axiom A1: forall p, p.L <> p.R;\n}\nproc g(root: T) {\n  p = root->L;\nS:  p->d = 1;\n}",
    "type C { ptr n: C; }\nproc w(h: C) { loop { h = h->n; } }",
];

/// One deterministic near-miss edit of `base`, driven by two fuzz words:
/// overwrite / insert / delete / truncate at a pseudo-random spot.
fn mutate(base: &str, a: u16, b: u16) -> String {
    let mut bytes = base.as_bytes().to_vec();
    if bytes.is_empty() {
        return String::from_utf8_lossy(&[(b % 256) as u8]).into_owned();
    }
    let i = (a as usize) % bytes.len();
    let byte = (b / 4 % 256) as u8;
    match b % 4 {
        0 => bytes[i] = byte,
        1 => bytes.insert(i, byte),
        2 => {
            bytes.remove(i);
        }
        _ => bytes.truncate(i),
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn corpus(entries: &'static [&'static str]) -> impl Strategy<Value = String> {
    proptest::sample::select(entries.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
}

fn check_regex(input: &str) {
    if let Err(e) = apt_regex::parse(input) {
        assert!(
            e.position <= input.len(),
            "error position {} past end of {input:?}",
            e.position
        );
    }
}

fn check_axiom_set(input: &str) {
    if let Err(e) = AxiomSet::parse(input) {
        let lines = input.lines().count().max(1);
        let line = e.line.expect("set-level errors must carry a line");
        assert!(
            (1..=lines).contains(&line),
            "error line {line} outside 1..={lines} for {input:?}"
        );
    }
}

fn check_adds(input: &str) {
    if let Err(e) = parse_adds(input) {
        let lines = input.lines().count().max(1);
        assert!(
            (1..=lines).contains(&e.line),
            "error line {} outside 1..={lines} for {input:?}",
            e.line
        );
    }
}

fn check_ir(input: &str) {
    if let Err(e) = apt_ir::parse_program(input) {
        let lines = input.lines().count().max(1);
        assert!(
            (1..=lines).contains(&e.line),
            "error line {} outside 1..={lines} for {input:?}",
            e.line
        );
    }
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic_any_parser(
        bytes in proptest::collection::vec(any::<u8>(), 0..120)
    ) {
        let input = String::from_utf8_lossy(&bytes).into_owned();
        check_regex(&input);
        check_axiom_set(&input);
        check_adds(&input);
        check_ir(&input);
    }

    #[test]
    fn regex_near_misses_parse_or_point_at_the_error(
        base in corpus(REGEX_CORPUS), a in any::<u16>(), b in any::<u16>()
    ) {
        check_regex(&mutate(&base, a, b));
    }

    #[test]
    fn axiom_near_misses_parse_or_point_at_the_error(
        base in corpus(AXIOM_CORPUS), a in any::<u16>(), b in any::<u16>()
    ) {
        let mutated = mutate(&base, a, b);
        check_axiom_set(&mutated);
        // The single-axiom parser must also stay panic-free (its errors
        // carry no line — that is the set parser's job).
        let _ = mutated.parse::<Axiom>();
    }

    #[test]
    fn adds_near_misses_parse_or_point_at_the_error(
        base in corpus(ADDS_CORPUS), a in any::<u16>(), b in any::<u16>()
    ) {
        check_adds(&mutate(&base, a, b));
    }

    #[test]
    fn ir_near_misses_parse_or_point_at_the_error(
        base in corpus(IR_CORPUS), a in any::<u16>(), b in any::<u16>()
    ) {
        check_ir(&mutate(&base, a, b));
    }
}

#[test]
fn axiom_set_error_reports_the_offending_line() {
    let e = AxiomSet::parse("A1: forall p, p.L <> p.R\n\ngarbage here\n").unwrap_err();
    assert_eq!(e.line, Some(3));
    assert!(e.to_string().contains("line 3"), "{e}");
}
