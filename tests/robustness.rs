//! Robustness: the prover and its satellites must terminate gracefully on
//! adversarial inputs — contradictory axioms, unsatisfiable-ish sets, deep
//! nesting, starvation — and the property-based pieces must round-trip.

use apt_axioms::{Axiom, AxiomSet};
use apt_core::{check_proof, DepQuery, Origin, Prover, ProverConfig};
use apt_regex::{Component, Path};
use proptest::prelude::*;

#[test]
fn contradictory_axioms_do_not_hang() {
    // "∀p, p.L <> p.L" is satisfiable only by heaps where L is always
    // null; the prover must simply use it, not loop.
    let axioms = AxiomSet::parse(
        "W1: forall p, p.L <> p.L\n\
         W2: forall p <> q, p.L <> q.L",
    )
    .expect("parses");
    let mut prover = Prover::new(&axioms);
    let proof = DepQuery::disjoint(
        &Path::parse("L").expect("path"),
        &Path::parse("L").expect("path"),
    )
    .origin(Origin::Same)
    .run_with(&mut prover)
    .proof
    .expect("W1 applies literally");
    check_proof(&axioms, &proof).expect("still a valid derivation");
}

#[test]
fn self_referential_equalities_terminate() {
    // Rewriting with p.next = p.next must not diverge (the rewrite budget
    // and goal cache bound the search).
    let axioms = AxiomSet::parse(
        "E1: forall p, p.next = p.next\n\
         E2: forall p, p.next = p.prev\n\
         E3: forall p, p.prev = p.next",
    )
    .expect("parses");
    let mut prover = Prover::new(&axioms);
    assert!(DepQuery::disjoint(
        &Path::parse("next.next").expect("path"),
        &Path::parse("prev").expect("path")
    )
    .origin(Origin::Same)
    .run_with(&mut prover)
    .proof
    .is_none());
}

#[test]
fn deeply_nested_paths_respect_depth_cutoff() {
    let axioms = apt_axioms::adds::leaf_linked_tree_axioms();
    let config = ProverConfig {
        max_depth: 4,
        ..ProverConfig::default()
    };
    let mut prover = Prover::with_config(&axioms, config);
    // A provable-but-deep query under a tiny depth bound: must return
    // (None is acceptable), never panic or hang.
    let deep = Path::fields(std::iter::repeat_n("L", 40).chain(std::iter::repeat_n("N", 40)));
    let mut other_fields: Vec<&str> = vec!["L"; 39];
    other_fields.push("R");
    other_fields.extend(std::iter::repeat_n("N", 40));
    let other = Path::fields(other_fields);
    let result = DepQuery::disjoint(&deep, &other)
        .origin(Origin::Same)
        .run_with(&mut prover)
        .proof;
    if let Some(p) = result {
        check_proof(&axioms, &p).expect("any found proof must check");
    }
    assert!(prover.stats().cutoffs.total() > 0 || prover.stats().goals_attempted > 0);
}

#[test]
fn fuel_starvation_is_a_clean_maybe() {
    // (The full Appendix A set proves Theorem T in one direct S4
    // application, so starve the prover on the minimal §5 axioms, whose
    // proof needs real search.)
    let axioms = apt_axioms::adds::sparse_matrix_minimal_axioms();
    let config = ProverConfig {
        budget: apt_core::Budget::new().with_fuel(2),
        ..ProverConfig::default()
    };
    let mut prover = Prover::with_config(&axioms, config);
    let r = DepQuery::disjoint(
        &Path::parse("ncolE+").expect("path"),
        &Path::parse("nrowE+.ncolE+").expect("path"),
    )
    .origin(Origin::Same)
    .run_with(&mut prover)
    .proof;
    assert!(r.is_none(), "starved prover must fail, not lie");
    assert!(prover.stats().cutoffs.fuel > 0);
}

#[test]
fn giant_alternation_terminates() {
    // 16-way alternations stress the DFA product and the alt splitter.
    let fields: Vec<String> = (0..16).map(|i| format!("f{i}")).collect();
    let alt = fields.join("|");
    let axioms = AxiomSet::parse(&format!(
        "T1: forall p <> q, p.({alt}) <> q.({alt})\n\
         T2: forall p, p.({alt})+ <> p.eps"
    ))
    .expect("parses");
    let mut prover = Prover::new(&axioms);
    let a = Path::parse(&format!("f0.({alt})*")).expect("path");
    let b = Path::epsilon();
    let proof = DepQuery::disjoint(&a, &b)
        .origin(Origin::Same)
        .run_with(&mut prover)
        .proof
        .expect("acyclicity covers it");
    check_proof(&axioms, &proof).expect("checks");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Axiom display → parse is the identity (modulo nothing: structural
    /// equality).
    #[test]
    fn axiom_display_parse_roundtrip(
        kind in 0u8..3,
        lhs in path_strategy(),
        rhs in path_strategy(),
    ) {
        let axiom = match kind {
            0 => Axiom::disjoint_same_origin(lhs.to_regex(), rhs.to_regex()),
            1 => Axiom::disjoint_distinct_origins(lhs.to_regex(), rhs.to_regex()),
            _ => Axiom::equal(lhs.to_regex(), rhs.to_regex()),
        }
        .named("X1");
        let reparsed: Axiom = axiom.to_string().parse().expect("round trip parses");
        prop_assert_eq!(reparsed.kind(), axiom.kind());
        prop_assert!(apt_regex::ops::equivalent(reparsed.lhs(), axiom.lhs()));
        prop_assert!(apt_regex::ops::equivalent(reparsed.rhs(), axiom.rhs()));
    }

    /// The prover is deterministic: same query twice, same verdict, and
    /// any proof found passes the checker.
    #[test]
    fn prover_is_deterministic_and_checked(
        a in path_strategy(),
        b in path_strategy(),
    ) {
        let axioms = apt_axioms::adds::leaf_linked_tree_axioms();
        let mut p1 = Prover::new(&axioms);
        let r1 = DepQuery::disjoint(&a, &b).origin(Origin::Same).run_with(&mut p1).proof;
        let mut p2 = Prover::new(&axioms);
        let r2 = DepQuery::disjoint(&a, &b).origin(Origin::Same).run_with(&mut p2).proof;
        prop_assert_eq!(r1.is_some(), r2.is_some());
        if let Some(proof) = r1 {
            prop_assert!(check_proof(&axioms, &proof).is_ok());
        }
    }
}

fn path_strategy() -> BoxedStrategy<Path> {
    let field = prop::sample::select(vec!["L", "R", "N"]).prop_map(|f| Component::Field(f.into()));
    let simple = prop::collection::vec(field.clone(), 1..=2).prop_map(Path::new);
    let component = prop_oneof![
        3 => field,
        1 => (simple.clone(), simple.clone()).prop_map(|(a, b)| Component::Alt(a, b)),
        1 => simple.clone().prop_map(Component::Star),
        1 => simple.prop_map(Component::Plus),
    ];
    prop::collection::vec(component, 0..=3)
        .prop_map(Path::new)
        .boxed()
}
