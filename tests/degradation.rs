//! Degradation soundness: exhausting any resource budget (fuel, depth,
//! wall-clock deadline, DFA state budget, cancellation) must weaken an
//! answer to an explicit Maybe with the matching [`MaybeReason`] — it
//! must never flip a provable verdict, never crash, and never poison the
//! proof cache against a later, better-funded retry.

use apt_axioms::adds;
use apt_core::{check_proof, AccessPath};
use apt_core::{
    Answer, Budget, CancelToken, DepQuery, DepTest, Handle, HandleRelation, MaybeReason, MemRef,
    Origin, Prover, ProverConfig, SearchLimit,
};
use apt_regex::Path;
use std::time::{Duration, Instant};

fn p(s: &str) -> Path {
    Path::parse(s).expect("valid path")
}

/// The three proving suites of the paper, each with a query its axioms
/// decide: Fig. 3 (leaf-linked tree), §5 (minimal sparse matrix), and
/// Appendix A (full sparse matrix).
fn provable_suites() -> Vec<(apt_axioms::AxiomSet, Path, Path)> {
    vec![
        (adds::leaf_linked_tree_axioms(), p("L.L.N"), p("L.R.N")),
        (
            adds::sparse_matrix_minimal_axioms(),
            p("ncolE+"),
            p("nrowE+.ncolE+"),
        ),
        (
            adds::sparse_matrix_axioms(),
            p("ncolE+"),
            p("nrowE+.ncolE+"),
        ),
    ]
}

#[test]
fn starved_fuel_reports_fuel_not_a_wrong_answer() {
    for (axioms, a, b) in provable_suites() {
        let config = ProverConfig::with_budget(Budget::new().with_fuel(1));
        let mut prover = Prover::with_config(&axioms, config);
        let (proof, why) = {
            let out = DepQuery::disjoint(&a, &b)
                .origin(Origin::Same)
                .run_with(&mut prover);
            (out.proof, out.maybe_reason)
        };
        // With one goal of fuel either the proof is trivially found or the
        // prover must degrade — it may never invent a bogus proof.
        match proof {
            Some(pf) => check_proof(&axioms, &pf).expect("found proof must check"),
            None => {
                assert_eq!(why, Some(MaybeReason::SearchExhausted(SearchLimit::Fuel)));
                assert!(prover.stats().cutoffs.fuel > 0);
            }
        }
    }
}

#[test]
fn expired_deadline_reports_deadline() {
    for (axioms, a, b) in provable_suites() {
        let config = ProverConfig::with_budget(Budget::new().with_deadline(Duration::ZERO));
        let mut prover = Prover::with_config(&axioms, config);
        let (proof, why) = {
            let out = DepQuery::disjoint(&a, &b)
                .origin(Origin::Same)
                .run_with(&mut prover);
            (out.proof, out.maybe_reason)
        };
        assert!(proof.is_none(), "an already-expired deadline cannot prove");
        assert_eq!(why, Some(MaybeReason::DeadlineExceeded));
        assert!(prover.stats().cutoffs.deadline > 0);
    }
}

#[test]
fn tiny_dfa_budget_reports_regex_budget() {
    // One DFA state is never enough for a real automaton-backed subset
    // check. Proofs whose subset obligations all close on the hash-consing
    // fast paths (∅ ⊆ X, X ⊆ X) can still succeed — those decide without
    // building any DFA — but they must be genuine, checkable proofs; any
    // suite that does need an automaton must degrade with the RegexBudget
    // pedigree (never a wrong No).
    let mut degraded_at_least_once = false;
    for (axioms, a, b) in provable_suites() {
        let config = ProverConfig::with_budget(Budget::new().with_max_dfa_states(1));
        let mut prover = Prover::with_config(&axioms, config);
        let (proof, why) = {
            let out = DepQuery::disjoint(&a, &b)
                .origin(Origin::Same)
                .run_with(&mut prover);
            (out.proof, out.maybe_reason)
        };
        match proof {
            Some(pf) => check_proof(&axioms, &pf).expect("DFA-free proof must check"),
            None => {
                assert_eq!(why, Some(MaybeReason::RegexBudget));
                assert!(prover.stats().cutoffs.regex_budget > 0);
                degraded_at_least_once = true;
            }
        }
    }
    assert!(
        degraded_at_least_once,
        "every suite proved DFA-free — the degradation leg never ran"
    );
}

#[test]
fn cancellation_reports_cancelled() {
    let axioms = adds::leaf_linked_tree_axioms();
    let token = CancelToken::new();
    token.cancel(); // cancelled before the query even starts
    let config = ProverConfig::with_budget(Budget::new().with_cancel(token));
    let mut prover = Prover::with_config(&axioms, config);
    let (proof, why) = {
        let out = DepQuery::disjoint(&p("L.L.N"), &p("L.R.N"))
            .origin(Origin::Same)
            .run_with(&mut prover);
        (out.proof, out.maybe_reason)
    };
    assert!(proof.is_none());
    assert_eq!(why, Some(MaybeReason::Cancelled));
    assert!(prover.stats().cutoffs.cancelled > 0);
}

#[test]
fn starved_then_refunded_prover_still_proves() {
    // The anti-poisoning property: a cache populated during an exhausted
    // run must not block the same prover from proving once re-funded.
    let mut starved_at_least_once = false;
    for (axioms, a, b) in provable_suites() {
        let config = ProverConfig::with_budget(Budget::new().with_fuel(2));
        let mut prover = Prover::with_config(&axioms, config);
        let (starved, _) = {
            let out = DepQuery::disjoint(&a, &b)
                .origin(Origin::Same)
                .run_with(&mut prover);
            (out.proof, out.maybe_reason)
        };
        // Shallow proofs (Fig. 3 is one direct axiom hit) may fit in 2
        // goals; the deep sparse-matrix searches cannot.
        starved_at_least_once |= starved.is_none();

        prover.set_budget(Budget::new());
        let (proof, why) = {
            let out = DepQuery::disjoint(&a, &b)
                .origin(Origin::Same)
                .run_with(&mut prover);
            (out.proof, out.maybe_reason)
        };
        let proof = proof.unwrap_or_else(|| panic!("refunded prover must prove ({why:?})"));
        check_proof(&axioms, &proof).expect("refunded proof checks");
    }
    assert!(
        starved_at_least_once,
        "2 fuel completed every suite — the starvation leg never ran"
    );
}

#[test]
fn deadline_starved_then_refunded_prover_still_proves() {
    let axioms = adds::sparse_matrix_minimal_axioms();
    let config = ProverConfig::with_budget(Budget::new().with_deadline(Duration::ZERO));
    let mut prover = Prover::with_config(&axioms, config);
    let (starved, why) = {
        let out = DepQuery::disjoint(&p("ncolE+"), &p("nrowE+.ncolE+"))
            .origin(Origin::Same)
            .run_with(&mut prover);
        (out.proof, out.maybe_reason)
    };
    assert!(starved.is_none());
    assert_eq!(why, Some(MaybeReason::DeadlineExceeded));

    prover.set_budget(Budget::new());
    let (proof, why) = {
        let out = DepQuery::disjoint(&p("ncolE+"), &p("nrowE+.ncolE+"))
            .origin(Origin::Same)
            .run_with(&mut prover);
        (out.proof, out.maybe_reason)
    };
    assert!(proof.is_some(), "deadline retry must prove ({why:?})");
}

#[test]
fn adversarial_nested_star_axioms_degrade_within_the_deadline() {
    // An axiom set engineered to detonate the subset construction: the
    // (a|b)*-then-discriminator family needs 2^n DFA states. Under a
    // wall-clock deadline plus a state budget the query must come back
    // quickly with an explicit degradation verdict.
    let n = 22;
    let bomb = format!("(a|b)*.a{}", ".(a|b)".repeat(n));
    let axioms = apt_axioms::AxiomSet::parse(&format!(
        "B1: forall x, x.{bomb} <> x.c\n\
         B2: forall x, x.(a|b)+ <> x.eps"
    ))
    .expect("bomb axioms parse");
    let deadline = Duration::from_millis(300);
    let config = ProverConfig::with_budget(
        Budget::new()
            .with_deadline(deadline)
            .with_max_dfa_states(2_000),
    );
    let mut prover = Prover::with_config(&axioms, config);
    let started = Instant::now();
    let (proof, why) = {
        let out = DepQuery::disjoint(&p(&bomb), &p("c.a"))
            .origin(Origin::Same)
            .run_with(&mut prover);
        (out.proof, out.maybe_reason)
    };
    let elapsed = started.elapsed();
    // Generous margin: the brakes poll every goal attempt and every 64
    // DFA states, so even slow CI should come in well under 10x.
    assert!(
        elapsed < deadline * 10,
        "degradation took {elapsed:?}, way past the {deadline:?} deadline"
    );
    if proof.is_none() {
        assert!(
            matches!(
                why,
                Some(MaybeReason::DeadlineExceeded | MaybeReason::RegexBudget)
            ) || matches!(why, Some(MaybeReason::SearchExhausted(_))),
            "expected a resource-degradation reason, got {why:?}"
        );
    }
}

#[test]
fn degraded_deptest_reports_reason_and_stays_sound() {
    // End-to-end through DepTest: the Maybe carries the pedigree, and the
    // same query under a generous budget gives the true No.
    let axioms = adds::leaf_linked_tree_axioms();
    let h = Handle::for_variable("root");
    let s = MemRef::new(AccessPath::new(h.clone(), p("L.L.N")), "d");
    let t = MemRef::new(AccessPath::new(h, p("L.R.N")), "d");

    let starved = DepTest::with_config(
        &axioms,
        ProverConfig::with_budget(Budget::new().with_fuel(1)),
    );
    let o = starved.test(&s, &t, HandleRelation::Same);
    assert_eq!(o.answer, Answer::Maybe);
    assert_eq!(
        o.maybe,
        Some(MaybeReason::SearchExhausted(SearchLimit::Fuel))
    );
    assert!(o.is_degraded());
    assert!(o.verdict().is_degraded());

    let funded = DepTest::new(&axioms);
    let o = funded.test(&s, &t, HandleRelation::Same);
    assert_eq!(o.answer, Answer::No);
    assert_eq!(o.maybe, None);
    assert!(!o.is_degraded());
}

#[test]
fn genuinely_unknown_is_not_flagged_as_degraded() {
    // No axioms at all: the Maybe is the axioms' fault, not a budget's.
    let axioms = apt_axioms::AxiomSet::new();
    let tester = DepTest::new(&axioms);
    let h = Handle::for_variable("x");
    let s = MemRef::new(AccessPath::new(h.clone(), p("L")), "d");
    let t = MemRef::new(AccessPath::new(h, p("R")), "d");
    let o = tester.test(&s, &t, HandleRelation::Same);
    assert_eq!(o.answer, Answer::Maybe);
    assert_eq!(o.maybe, Some(MaybeReason::GenuinelyUnknown));
    assert!(!o.is_degraded());
}

#[test]
fn bounded_cache_does_not_change_answers() {
    // A 4-entry proof cache forces constant eviction; answers must agree
    // with the unbounded prover on every suite.
    for (axioms, a, b) in provable_suites() {
        let config = ProverConfig::with_budget(Budget::new().with_cache_capacity(4));
        let mut bounded = Prover::with_config(&axioms, config);
        let (proof, why) = {
            let out = DepQuery::disjoint(&a, &b)
                .origin(Origin::Same)
                .run_with(&mut bounded);
            (out.proof, out.maybe_reason)
        };
        let proof = proof.unwrap_or_else(|| panic!("bounded cache lost the proof ({why:?})"));
        check_proof(&axioms, &proof).expect("bounded-cache proof checks");
    }
}

mod soundness_properties {
    use super::*;
    use proptest::prelude::*;

    fn small_path() -> impl Strategy<Value = Path> {
        proptest::sample::select(vec![
            p("L"),
            p("R"),
            p("N"),
            p("L.L.N"),
            p("L.R.N"),
            p("L+"),
            p("(L|R)+"),
            p("(L|R)+.N+"),
            p("N*"),
            p("eps"),
        ])
    }

    fn tight_budgets() -> impl Strategy<Value = Budget> {
        prop_oneof![
            (1u64..6).prop_map(|f| Budget::new().with_fuel(f)),
            (1u64..40).prop_map(|s| Budget::new().with_max_dfa_states(s as usize)),
            Just(Budget::new().with_deadline(Duration::ZERO)),
            (1u64..4).prop_map(|c| Budget::new().with_cache_capacity(c as usize)),
        ]
    }

    proptest! {
        #[test]
        fn degraded_never_flips_a_verdict(a in small_path(), b in small_path(), budget in tight_budgets()) {
            let axioms = adds::leaf_linked_tree_axioms();
            for origin in [Origin::Same, Origin::Distinct] {
                // Ground truth from an effectively unbounded prover.
                let mut full = Prover::new(&axioms);
                let truth = DepQuery::disjoint(&a, &b).origin(origin).run_with(&mut full).proof;

                let mut tight = Prover::with_config(&axioms, ProverConfig::with_budget(budget.clone()));
                let (got, why) = { let out = DepQuery::disjoint(&a, &b).origin(origin).run_with(&mut tight); (out.proof, out.maybe_reason) };
                match got {
                    // A proof found under pressure must still be a real proof.
                    Some(pf) => {
                        check_proof(&axioms, &pf).expect("degraded-run proof must check");
                        prop_assert!(truth.is_some(), "tight budget proved what full search could not");
                    }
                    // No proof: the only allowed divergence is a degradation
                    // with a stated reason.
                    None => {
                        if truth.is_some() {
                            prop_assert!(
                                why.is_some_and(|r| r.is_degraded()),
                                "lost a provable verdict without a degradation reason"
                            );
                        }
                    }
                }
            }
        }

        #[test]
        fn prove_equal_degrades_soundly(budget in tight_budgets()) {
            // Equality proving under pressure may only miss equalities —
            // never claim a false one.
            let axioms = apt_axioms::AxiomSet::parse(
                "C1: forall p, p.next.prev = p.eps\n\
                 C2: forall p, p.prev.next = p.eps",
            ).expect("cycle axioms");
            let a = p("next.prev.next");
            let b = p("next");
            let mut tight = Prover::with_config(&axioms, ProverConfig::with_budget(budget));
            let (equal, why) = { let out = DepQuery::equal(&a, &b).run_with(&mut tight); (out.is_definite(), out.maybe_reason) };
            if equal {
                // Cross-check against the unbounded prover.
                let mut full = Prover::new(&axioms);
                prop_assert!(DepQuery::equal(&a, &b).run_with(&mut full).is_definite());
            } else {
                prop_assert!(why.is_some(), "a failed equality must carry a reason");
            }
            // The definitely-unequal pair must never become equal.
            let (never, _) = { let out = DepQuery::equal(&p("next"), &p("prev")).run_with(&mut tight); (out.is_definite(), out.maybe_reason) };
            prop_assert!(!never);
        }
    }
}
