//! Validates the dependence verdicts against *real* parallel execution:
//! the loops APT declares independent are run concurrently on real threads
//! and must produce exactly the sequential results.

use apt_core::{DepQuery, Origin, Prover};
use apt_heaps::gen::random_sparse_matrix;
use apt_heaps::llt::LeafLinkedTree;
use apt_heaps::numeric::{factor, solve, LoopClassification};
use apt_parsim::execute_parallel;
use apt_regex::Path;

/// The scale loop touches every element exactly once, so its iterations
/// are independent — run it as genuine parallel mutation over disjoint
/// chunks and compare against the sequential kernel.
#[test]
fn parallel_scale_matches_sequential() {
    let m0 = random_sparse_matrix(64, 400, 3);

    let mut seq = m0.clone();
    let _ = apt_heaps::numeric::scale(&mut seq, 2.5, LoopClassification::sequential());

    let mut par = m0.clone();
    {
        let mut refs: Vec<&mut f64> = par.values_mut().collect();
        let chunk = refs.len().div_ceil(7);
        crossbeam::thread::scope(|scope| {
            for part in refs.chunks_mut(chunk) {
                scope.spawn(move |_| {
                    for v in part.iter_mut() {
                        **v *= 2.5;
                    }
                });
            }
        })
        .expect("threads joined");
    }
    assert_eq!(seq.to_dense(), par.to_dense());
}

/// One elimination step, row tasks executed concurrently: Theorem T says
/// distinct target rows never overlap, so per-row updates computed in
/// parallel must commit to exactly the sequential factor state.
#[test]
fn parallel_elimination_step_matches_sequential() {
    // First prove the licence (Theorem T), then use it.
    let axioms = apt_axioms::adds::sparse_matrix_minimal_axioms();
    let mut prover = Prover::new(&axioms);
    assert!(DepQuery::disjoint(
        &Path::parse("ncolE+").expect("path"),
        &Path::parse("nrowE+.ncolE+").expect("path")
    )
    .origin(Origin::Same)
    .run_with(&mut prover)
    .proof
    .is_some());

    let m0 = random_sparse_matrix(24, 120, 11);

    // Sequential reference: eliminate with pivot (0,0) by hand.
    let pivot_row: Vec<(usize, f64)> = m0
        .iter_row(0)
        .map(|id| (m0.elem(id).col, m0.elem(id).val))
        .filter(|&(c, _)| c != 0)
        .collect();
    let piv = m0.get(0, 0);
    assert!(piv != 0.0);
    let targets: Vec<usize> = m0
        .iter_col(0)
        .map(|id| m0.elem(id).row)
        .filter(|&r| r != 0 && m0.get(r, 0) != 0.0)
        .collect();

    let eliminate_row = |m: &apt_heaps::sparse::SparseMatrix, r: usize| -> Vec<(usize, f64)> {
        let mult = m.get(r, 0) / piv;
        let mut updates = vec![(0usize, mult)]; // store multiplier at (r, 0)
        for &(c, v) in &pivot_row {
            updates.push((c, m.get(r, c) - mult * v));
        }
        updates
    };

    // Sequential commit.
    let mut seq = m0.clone();
    for &r in &targets {
        for (c, v) in eliminate_row(&m0, r) {
            seq.set(r, c, v);
        }
    }

    // Parallel computation of the per-row updates (concurrent reads of the
    // shared matrix — safe because rows are disjoint), then commit.
    let tasks: Vec<_> = targets
        .iter()
        .map(|&r| {
            let m0 = &m0;
            let f = &eliminate_row;
            move || (r, f(m0, r))
        })
        .collect();
    let results = execute_parallel(tasks, 7);
    let mut par = m0.clone();
    for (r, updates) in results {
        for (c, v) in updates {
            par.set(r, c, v);
        }
    }
    assert_eq!(seq.to_dense(), par.to_dense());
}

/// The leaf sweep of the Figure 1 loop: independent per-leaf writes run on
/// threads and agree with the sequential sweep.
#[test]
fn parallel_leaf_sweep_matches_sequential() {
    let mut seq_tree = LeafLinkedTree::complete(7);
    let leaves = seq_tree.leaves();
    for (i, leaf) in leaves.iter().enumerate() {
        *seq_tree.data_mut(*leaf) = (i * i) as f64;
    }

    let mut par_tree = LeafLinkedTree::complete(7);
    let tasks: Vec<_> = (0..leaves.len()).map(|i| move || (i * i) as f64).collect();
    let values = execute_parallel(tasks, 5);
    for (leaf, v) in leaves.iter().zip(values) {
        *par_tree.data_mut(*leaf) = v;
    }
    for leaf in &leaves {
        assert_eq!(seq_tree.node(*leaf).data, par_tree.node(*leaf).data);
    }
}

/// The full factor+solve pipeline is deterministic regardless of the loop
/// classification (the classification changes the *schedule*, never the
/// numbers).
#[test]
fn classification_never_changes_numerics() {
    let m0 = random_sparse_matrix(32, 160, 5);
    let b: Vec<f64> = (0..32).map(|i| (i % 9) as f64).collect();
    let mut results = Vec::new();
    for cls in [
        LoopClassification::sequential(),
        LoopClassification::partial(),
        LoopClassification::full(),
    ] {
        let mut m = m0.clone();
        let fr = factor(&mut m, cls);
        let (x, _) = solve(&m, &fr.pivots, &b, cls);
        results.push(x);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}
