//! C-SEND-SYNC conformance: the public data types are thread-safe, so the
//! tester can run inside a parallel compiler.

use apt_core::DepQuery;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn core_data_types_are_send_and_sync() {
    assert_send_sync::<apt_regex::Regex>();
    assert_send_sync::<apt_regex::Path>();
    assert_send_sync::<apt_regex::Component>();
    assert_send_sync::<apt_regex::Symbol>();
    assert_send_sync::<apt_regex::DfaCache>();
    assert_send_sync::<apt_axioms::Axiom>();
    assert_send_sync::<apt_axioms::AxiomSet>();
    assert_send_sync::<apt_axioms::graph::HeapGraph>();
    assert_send_sync::<apt_core::Handle>();
    assert_send_sync::<apt_core::Goal>();
    assert_send_sync::<apt_core::Proof>();
    assert_send_sync::<apt_core::MemRef>();
    assert_send_sync::<apt_core::TestOutcome>();
    assert_send_sync::<apt_core::Prover<'static>>();
    assert_send_sync::<apt_core::DepEngine>();
    assert_send_sync::<apt_core::DepQuery>();
    assert_send_sync::<apt_core::Outcome>();
    assert_send_sync::<apt_core::DepTest>();
    assert_send_sync::<apt_heaps::sparse::SparseMatrix>();
    assert_send_sync::<apt_heaps::llt::LeafLinkedTree>();
    assert_send_sync::<apt_heaps::octree::Octree>();
    assert_send_sync::<apt_parsim::Trace>();
    assert_send_sync::<apt_ir::Program>();
    assert_send_sync::<apt_paths::Apm>();
}

/// Provers really can run on worker threads (parallel compilation).
#[test]
fn provers_run_concurrently() {
    let axioms = std::sync::Arc::new(apt_axioms::adds::leaf_linked_tree_axioms());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let axioms = std::sync::Arc::clone(&axioms);
            std::thread::spawn(move || {
                let mut prover = apt_core::Prover::new(&axioms);
                let p = apt_regex::Path::parse("L.L.N").expect("path");
                let q = apt_regex::Path::parse("L.R.N").expect("path");
                DepQuery::disjoint(&p, &q)
                    .origin(apt_core::Origin::Same)
                    .run_with(&mut prover)
                    .proof
                    .is_some()
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().expect("no panic"));
    }
}
