//! Loopback integration tests for the `apt-serve` daemon.
//!
//! Everything runs against a real server on an ephemeral TCP port:
//! concurrent clients must see exactly the verdicts an in-process
//! [`DepEngine`] produces, a client vanishing mid-proof must cancel its
//! work without poisoning the session's shared caches, and malformed
//! frames must come back as structured errors — never a dropped
//! connection, never a server panic.

use apt::axioms::adds::{leaf_linked_tree_axioms, sparse_matrix_axioms};
use apt::prelude::*;
use apt::serve::json::{obj, Json};
use apt::serve::proto::parse_verdict;
use apt::serve::{Client, ClientError, ServeConfig, Server, ServerHandle};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Starts a server on an ephemeral port; returns its address, a stop
/// handle, and the join handle for its run loop.
fn start_server(config: ServeConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let mut server = Server::new(config);
    let addr = server.bind_tcp("127.0.0.1:0").expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, handle, join)
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect_tcp(&addr.to_string()).expect("connect")
}

/// A disjointness query that takes O(seconds) of genuine search: a long
/// literal chain against a tower of `(L|R)+` components (unprovable, so
/// the prover exhausts its alternatives). `k` tunes the duration —
/// k=24 ≈ 0.9s, k=32 ≈ 2.6s on a warm machine.
fn blocker_paths(k: usize) -> (String, String) {
    (
        format!("{}.N", vec!["L"; 2 * k].join(".")),
        format!("{}.N", vec!["(L|R)+"; k].join(".")),
    )
}

fn llt_text() -> String {
    leaf_linked_tree_axioms().to_string()
}

#[test]
fn concurrent_clients_match_in_process_verdicts() {
    let (addr, handle, join) = start_server(ServeConfig::new());

    // The comparison oracle: a fresh in-process engine over the same set.
    let axioms_text = sparse_matrix_axioms().to_string();
    let engine = DepEngine::new(sparse_matrix_axioms());

    // A mixed suite: provable, unprovable, equality, both origins.
    let mut suite: Vec<(String, String, &str, &str)> = Vec::new();
    for i in 1..=3usize {
        for j in 1..=3usize {
            suite.push((
                vec!["ncolE"; i].join("."),
                format!("{}.ncolE+", vec!["nrowE"; j].join(".")),
                "disjoint",
                "same",
            ));
            suite.push((
                vec!["ncolE"; i].join("."),
                format!("ncolE+.{}", vec!["ncolE"; j].join(".")),
                "disjoint",
                "same",
            ));
            suite.push((
                vec!["ncolE"; i].join("."),
                vec!["nrowE"; j].join("."),
                "disjoint",
                "distinct",
            ));
        }
        suite.push((
            vec!["ncolE"; i].join("."),
            vec!["nrowE"; i].join("."),
            "equal",
            "same",
        ));
    }

    let expected: Vec<(Answer, Option<MaybeReason>)> = suite
        .iter()
        .map(|(a, b, kind, origin)| {
            let pa = Path::parse(a).expect("path");
            let pb = Path::parse(b).expect("path");
            let query = if *kind == "equal" {
                DepQuery::equal(&pa, &pb)
            } else {
                DepQuery::disjoint(&pa, &pb)
            };
            let query = query.origin(if *origin == "distinct" {
                Origin::Distinct
            } else {
                Origin::Same
            });
            let outcome = query.run(&engine);
            (outcome.verdict.answer, outcome.verdict.reason)
        })
        .collect();

    // Four clients hammer the same (deduped) session concurrently, each
    // walking the suite from a different offset.
    let workers: Vec<_> = (0..4)
        .map(|offset| {
            let suite = suite.clone();
            let expected = expected.clone();
            let axioms_text = axioms_text.clone();
            std::thread::spawn(move || {
                let mut client = connect(addr);
                let session = client.open_session(&axioms_text).expect("open");
                for step in 0..suite.len() {
                    let idx = (step + offset * 7) % suite.len();
                    let (a, b, kind, origin) = &suite[idx];
                    let frame = client
                        .roundtrip(obj(vec![
                            ("verb", "prove".into()),
                            ("session", session.as_str().into()),
                            ("kind", (*kind).into()),
                            ("a", a.as_str().into()),
                            ("b", b.as_str().into()),
                            ("origin", (*origin).into()),
                        ]))
                        .expect("prove");
                    let result = frame.get("result").expect("result");
                    let got = parse_verdict(result).expect("verdict parses");
                    assert_eq!(
                        got, expected[idx],
                        "client {offset} query {idx} ({a} vs {b}, {kind}/{origin})"
                    );
                }
                session
            })
        })
        .collect();
    let sessions: Vec<String> = workers
        .into_iter()
        .map(|w| w.join().expect("client"))
        .collect();
    assert!(
        sessions.windows(2).all(|w| w[0] == w[1]),
        "all clients should have deduped onto one session: {sessions:?}"
    );

    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn disconnect_mid_proof_cancels_without_poisoning_the_session() {
    let (addr, handle, join) = start_server(ServeConfig::new());
    let axioms_text = llt_text();

    let mut opener = connect(addr);
    let session = opener.open_session(&axioms_text).expect("open");

    // A raw connection fires a multi-second query, then vanishes.
    let (a, b) = blocker_paths(32);
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    let frame = obj(vec![
        ("verb", "prove".into()),
        ("session", session.as_str().into()),
        ("a", a.as_str().into()),
        ("b", b.as_str().into()),
        ("fuel", 5_000_000u64.into()),
    ]);
    let mut line = frame.render();
    line.push('\n');
    raw.write_all(line.as_bytes()).expect("send blocker");
    raw.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(300)); // let the proof start
    drop(raw); // disconnect mid-proof

    // The cancel must land well before the blocker's natural runtime
    // (~2.6s optimized, far longer in debug builds): poll `stats` until
    // disconnect_cancels ticks up. The bound is generous for debug
    // builds, where the prover's cancellation checks are further apart.
    let started = Instant::now();
    let deadline = Duration::from_millis(15_000);
    let cancels = loop {
        let stats = opener
            .roundtrip(obj(vec![("verb", "stats".into())]))
            .expect("stats");
        let cancels = stats
            .get("server")
            .and_then(|s| s.get("disconnect_cancels"))
            .and_then(Json::as_u64)
            .expect("disconnect_cancels counter");
        if cancels > 0 {
            break cancels;
        }
        assert!(
            started.elapsed() < deadline,
            "disconnect did not cancel the in-flight proof within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(cancels, 1);

    // The session still answers correctly afterwards: a cancelled run
    // must publish nothing, so this provable query gets its proof.
    let result = opener
        .prove_disjoint(&session, "L.L.N", "L.R.N", false)
        .expect("prove after disconnect");
    assert_eq!(
        parse_verdict(&result).expect("verdict"),
        (Answer::No, None),
        "session poisoned by the cancelled run: {result:?}"
    );
    // And the cancelled (unfinished) blocker must not have been cached
    // as a failure: re-running it with a tiny deadline degrades with a
    // *deadline* pedigree, proving the search really re-ran rather than
    // hitting a poisoned negative-cache entry. (A cancelled verdict was
    // never published; only this connection's token was cancelled.)
    let rerun = opener
        .roundtrip(obj(vec![
            ("verb", "prove".into()),
            ("session", session.as_str().into()),
            ("a", a.as_str().into()),
            ("b", b.as_str().into()),
            ("deadline_ms", 50u64.into()),
        ]))
        .expect("rerun blocker");
    let verdict = parse_verdict(rerun.get("result").expect("result")).expect("verdict");
    assert_eq!(verdict.0, Answer::Maybe);
    assert!(
        verdict.1.expect("maybe reason").is_degraded(),
        "expected a degraded Maybe from the deadline, got {verdict:?}"
    );

    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn malformed_frames_get_structured_errors_and_the_connection_survives() {
    let (addr, handle, join) = start_server(ServeConfig::new());
    let mut client = connect(addr);
    let session = client.open_session(&llt_text()).expect("open");

    let expect_code = |client: &mut Client, raw: &str, want: &str| match client.roundtrip_raw(raw) {
        Err(ClientError::Server(code, _)) => {
            assert_eq!(code, want, "frame {raw:?}");
        }
        other => panic!("frame {raw:?}: expected {want} error, got {other:?}"),
    };

    expect_code(&mut client, "this is not json", "parse_error");
    expect_code(&mut client, "[1,2,3]", "parse_error");
    expect_code(&mut client, "{\"truncated\": ", "parse_error");
    expect_code(&mut client, &format!("{}1", "[".repeat(200)), "parse_error");
    expect_code(&mut client, r#"{"no":"verb"}"#, "bad_request");
    expect_code(&mut client, r#"{"verb":"frobnicate"}"#, "unsupported");
    expect_code(
        &mut client,
        r#"{"verb":"prove","session":"s0"}"#,
        "bad_request",
    );
    expect_code(
        &mut client,
        &format!(r#"{{"verb":"prove","session":"{session}","a":"L..L","b":"R"}}"#),
        "bad_request",
    );
    expect_code(
        &mut client,
        &format!(r#"{{"verb":"prove","session":"{session}","a":"L","b":"R","fuel":"lots"}}"#),
        "bad_request",
    );
    expect_code(
        &mut client,
        r#"{"verb":"prove","session":"nope","a":"L.L.N","b":"L.R.N"}"#,
        "no_such_session",
    );
    expect_code(
        &mut client,
        r#"{"verb":"open_session","axioms":"forall p, p.( <> q"}"#,
        "bad_request",
    );

    // After all that abuse, the same connection still proves correctly.
    let result = client
        .prove_disjoint(&session, "L.L.N", "L.R.N", false)
        .expect("prove after malformed frames");
    assert_eq!(parse_verdict(&result).expect("verdict"), (Answer::No, None));

    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn versioned_protocol_hello_analyze_invalidate() {
    let (addr, handle, join) = start_server(ServeConfig::new());
    let mut client = connect(addr);

    // `hello` reports the protocol version and the full verb list, so a
    // client can feature-detect instead of probing.
    let hello = client
        .roundtrip(obj(vec![("verb", "hello".into())]))
        .expect("hello");
    assert_eq!(
        hello.get("proto_version").and_then(Json::as_u64),
        Some(apt::serve::PROTO_VERSION)
    );
    let verbs = match hello.get("verbs") {
        Some(Json::Arr(items)) => items
            .iter()
            .filter_map(Json::as_str)
            .map(str::to_owned)
            .collect::<Vec<_>>(),
        other => panic!("hello verbs missing: {other:?}"),
    };
    for verb in ["prove", "batch", "analyze", "invalidate", "stats"] {
        assert!(verbs.iter().any(|v| v == verb), "hello lacks {verb}");
    }

    // An unknown verb comes back machine-readable: code `unsupported`,
    // the rejected verb echoed, and the server's version — enough for an
    // old client talking to a new server (or vice versa) to explain
    // itself. Read the raw frame to see all three fields.
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    raw.write_all(b"{\"verb\":\"explain\"}\n").expect("send");
    raw.flush().expect("flush");
    let mut reader = std::io::BufReader::new(raw);
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).expect("read");
    let frame = apt::serve::json::parse(line.trim()).expect("frame parses");
    assert_eq!(
        frame.get("error").and_then(Json::as_str),
        Some("unsupported")
    );
    assert_eq!(frame.get("verb").and_then(Json::as_str), Some("explain"));
    assert_eq!(
        frame.get("proto_version").and_then(Json::as_u64),
        Some(apt::serve::PROTO_VERSION)
    );

    // Whole-program analysis over the wire: a cold run proves, a warm
    // re-run of the identical program replays everything definite.
    let program = "type List {\n    ptr link: List;\n    data f;\n    \
         axiom A1: forall p <> q, p.link <> q.link;\n    \
         axiom A2: forall p, p.link+ <> p.eps;\n}\n\
         proc update(head: List) {\n    q = head;\n    loop {\n    \
         U:  q->f = fun();\n        q = q->link;\n    }\n}\n\
         proc touch(h: List) {\nW:  h->f = 9;\nX:  v = h->f;\n}\n";
    let analyze_frame = |name: &str| {
        obj(vec![
            ("verb", "analyze".into()),
            ("program", program.into()),
            ("name", name.into()),
        ])
    };
    let cold = client.roundtrip(analyze_frame("t1")).expect("cold analyze");
    assert_eq!(cold.get("replayed").and_then(Json::as_u64), Some(0));
    let cold_reproved = cold
        .get("reproved")
        .and_then(Json::as_u64)
        .expect("reproved");
    assert!(cold_reproved > 0);
    assert_eq!(cold.get("procs_reused").and_then(Json::as_u64), Some(0));

    let warm = client.roundtrip(analyze_frame("t1")).expect("warm analyze");
    assert_eq!(warm.get("procs_reused").and_then(Json::as_u64), Some(2));
    let warm_replayed = warm
        .get("replayed")
        .and_then(Json::as_u64)
        .expect("replayed");
    assert!(warm_replayed > 0, "warm run replayed nothing: {warm:?}");
    assert_eq!(
        warm.get("any_maybe"),
        cold.get("any_maybe"),
        "replay changed the overall verdict"
    );
    // Tables are per-name: a different name starts cold.
    let other = client.roundtrip(analyze_frame("t2")).expect("other table");
    assert_eq!(other.get("replayed").and_then(Json::as_u64), Some(0));

    // Invalidate one procedure: only it re-proves on the next run.
    let inv = client
        .roundtrip(obj(vec![
            ("verb", "invalidate".into()),
            ("name", "t1".into()),
            ("proc", "update".into()),
        ]))
        .expect("invalidate");
    assert!(
        inv.get("dropped_verdicts")
            .and_then(Json::as_u64)
            .expect("dropped")
            > 0
    );
    let after = client
        .roundtrip(analyze_frame("t1"))
        .expect("after invalidate");
    assert_eq!(after.get("procs_reused").and_then(Json::as_u64), Some(1));
    let procs = match after.get("procs") {
        Some(Json::Arr(items)) => items,
        other => panic!("procs missing: {other:?}"),
    };
    for proc in procs {
        let name = proc.get("proc").and_then(Json::as_str).expect("proc name");
        let reused = proc.get("reused").expect("reused flag");
        assert_eq!(
            reused,
            &Json::Bool(name != "update"),
            "only the invalidated procedure should re-prove"
        );
    }

    // `stats` carries the version too, and counted the analyze traffic.
    let stats = client
        .roundtrip(obj(vec![("verb", "stats".into())]))
        .expect("stats");
    assert_eq!(
        stats.get("proto_version").and_then(Json::as_u64),
        Some(apt::serve::PROTO_VERSION)
    );
    let server_stats = stats.get("server").expect("server stats");
    assert!(
        server_stats
            .get("analyze_replayed")
            .and_then(Json::as_u64)
            .expect("analyze_replayed")
            > 0
    );

    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn structurally_equal_axiom_sets_dedupe_across_connections() {
    let (addr, handle, join) = start_server(ServeConfig::new());

    let mut c1 = connect(addr);
    let frame = c1
        .roundtrip(obj(vec![
            ("verb", "open_session".into()),
            ("axioms", llt_text().as_str().into()),
        ]))
        .expect("open 1");
    let s1 = frame
        .get("session")
        .and_then(Json::as_str)
        .expect("id")
        .to_owned();
    assert_eq!(frame.get("deduped"), Some(&Json::Bool(false)));

    // Same axioms, different connection, different text (extra comments
    // and whitespace) — must land on the same compiled session.
    let noisy = format!("# leaf-linked tree (Figure 3)\n\n  {}", llt_text());
    let mut c2 = connect(addr);
    let frame = c2
        .roundtrip(obj(vec![
            ("verb", "open_session".into()),
            ("axioms", noisy.as_str().into()),
        ]))
        .expect("open 2");
    assert_eq!(frame.get("deduped"), Some(&Json::Bool(true)));
    assert_eq!(
        frame.get("session").and_then(Json::as_str),
        Some(s1.as_str())
    );

    // A different set gets a fresh session.
    let frame = c2
        .roundtrip(obj(vec![
            ("verb", "open_session".into()),
            ("axioms", sparse_matrix_axioms().to_string().as_str().into()),
        ]))
        .expect("open 3");
    assert_eq!(frame.get("deduped"), Some(&Json::Bool(false)));
    assert_ne!(
        frame.get("session").and_then(Json::as_str),
        Some(s1.as_str())
    );

    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn overload_refuses_instead_of_timing_out_or_crashing() {
    let mut config = ServeConfig::new();
    config.workers = 1;
    config.high_water = 1;
    let (addr, handle, join) = start_server(config);

    let mut opener = connect(addr);
    let session = opener.open_session(&llt_text()).expect("open");
    let (a, b) = blocker_paths(32);

    // Fire four concurrent slow queries. With one worker and one queue
    // slot, two get served (eventually) and the rest must be refused
    // with `overloaded` — quickly, not via timeout.
    let blocker_frame = |session: &str| {
        let mut line = obj(vec![
            ("verb", Json::from("prove")),
            ("session", session.into()),
            ("a", a.as_str().into()),
            ("b", b.as_str().into()),
            ("fuel", 5_000_000u64.into()),
            ("deadline_ms", 10_000u64.into()),
        ])
        .render();
        line.push('\n');
        line
    };
    let mut streams = Vec::new();
    for _ in 0..4 {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(blocker_frame(&session).as_bytes())
            .expect("send");
        s.flush().expect("flush");
        streams.push(s);
        // Order the arrivals so exactly: run, queue, refuse, refuse.
        std::thread::sleep(Duration::from_millis(150));
    }

    // The refused connections answer fast; read with a short timeout.
    let mut refused = 0;
    let mut served = 0;
    for s in &streams {
        s.set_read_timeout(Some(Duration::from_millis(500)))
            .expect("timeout");
    }
    for s in streams {
        let mut reader = std::io::BufReader::new(s);
        let mut line = String::new();
        match std::io::BufRead::read_line(&mut reader, &mut line) {
            Ok(n) if n > 0 => {
                let frame = apt::serve::json::parse(line.trim()).expect("response parses");
                if frame.get("ok") == Some(&Json::Bool(true)) {
                    served += 1;
                } else {
                    let code = frame.get("error").and_then(Json::as_str).unwrap_or("?");
                    assert_eq!(code, "overloaded", "unexpected error frame: {line}");
                    refused += 1;
                }
            }
            // Still proving (the served/queued connections): that's fine.
            _ => served += 1,
        }
    }
    assert_eq!(refused, 2, "expected exactly two overload refusals");
    assert_eq!(served, 2);

    // Metrics recorded the refusals, and the server is still healthy.
    let stats = opener
        .roundtrip(obj(vec![("verb", "stats".into())]))
        .expect("stats");
    let refusals = stats
        .get("server")
        .and_then(|s| s.get("overload_refusals"))
        .and_then(Json::as_u64)
        .expect("overload_refusals");
    assert_eq!(refusals, 2);

    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn per_request_budgets_are_clamped_by_the_server_ceiling() {
    let mut config = ServeConfig::new();
    // A ceiling tight enough that the blocker cannot finish: 200ms.
    config.ceiling = Budget::new().with_deadline(Duration::from_millis(200));
    config.default_budget = config.ceiling.clone();
    let (addr, handle, join) = start_server(config);

    let mut client = connect(addr);
    let session = client.open_session(&llt_text()).expect("open");
    let (a, b) = blocker_paths(32);

    // The client asks for a 60-second deadline; the ceiling must win.
    let started = Instant::now();
    let frame = client
        .roundtrip(obj(vec![
            ("verb", "prove".into()),
            ("session", session.as_str().into()),
            ("a", a.as_str().into()),
            ("b", b.as_str().into()),
            ("deadline_ms", 60_000u64.into()),
        ]))
        .expect("prove");
    let elapsed = started.elapsed();
    let verdict = parse_verdict(frame.get("result").expect("result")).expect("verdict");
    assert_eq!(verdict.0, Answer::Maybe);
    assert!(
        verdict.1.expect("reason").is_degraded(),
        "ceiling should have degraded the answer: {verdict:?}"
    );
    // Generous bound (debug builds check the deadline less often), but
    // far below the requested 60s: the ceiling, not the request, won.
    assert!(
        elapsed < Duration::from_secs(20),
        "ceiling not enforced: query ran {elapsed:?}"
    );

    handle.stop();
    join.join().expect("server thread");
}
