//! Cyclic data structures: the third axiom form (`∀p, p.RE1 = p.RE2`,
//! "useful for describing cycles in a cyclic data structure", §3.1),
//! exercised on circular doubly-linked lists with model-checked axioms and
//! prover queries that need equality rewriting.

use apt_axioms::{check::check_set, AxiomSet};
use apt_core::{check_proof, DepQuery, Origin, Prover};
use apt_heaps::list::{List, ListKind};
use apt_regex::Path;

/// The circular doubly-linked list axioms: the two cycle laws, listness in
/// both directions, and no self-loop (true for length ≥ 2).
fn circular_dll_axioms() -> AxiomSet {
    AxiomSet::parse(
        "C1: forall p, p.next.prev = p.eps\n\
         C2: forall p, p.prev.next = p.eps\n\
         L1: forall p <> q, p.next <> q.next\n\
         L2: forall p <> q, p.prev <> q.prev\n\
         S1: forall p, p.next <> p.eps\n\
         S2: forall p, p.prev <> p.eps",
    )
    .expect("axioms parse")
}

#[test]
fn axioms_hold_on_circular_dlls_of_length_two_plus() {
    let axioms = circular_dll_axioms();
    for len in 2..8 {
        let l = List::build(ListKind::CircularDoubly, len);
        let (g, _) = l.heap_graph();
        assert_eq!(check_set(&g, &axioms), Ok(()), "len {len}");
    }
}

#[test]
fn one_element_ring_violates_the_self_loop_axiom() {
    // The model checker catches that S1 is false on a 1-cycle — the axiom
    // set genuinely constrains instances.
    let l = List::build(ListKind::CircularDoubly, 1);
    let (g, _) = l.heap_graph();
    let violation = check_set(&g, &circular_dll_axioms()).unwrap_err();
    assert!(
        violation.axiom.contains("S1") || violation.axiom.contains("S2"),
        "violated: {}",
        violation.axiom
    );
}

#[test]
fn rewriting_proves_back_and_forth_disjointness() {
    // head.next.prev.next is head.next (by C1), which is never head (S1):
    // a proof that NEEDS the equality rewrite.
    let axioms = circular_dll_axioms();
    let mut prover = Prover::new(&axioms);
    let a = Path::parse("next.prev.next").expect("path");
    let b = Path::epsilon();
    let proof = DepQuery::disjoint(&a, &b)
        .origin(Origin::Same)
        .run_with(&mut prover)
        .proof
        .expect("provable via C1 + S1");
    check_proof(&axioms, &proof).expect("checker accepts");
    let used = proof.axioms_used();
    assert!(
        used.iter().any(|x| x == "C1") || used.iter().any(|x| x == "C2"),
        "must use a cycle law, used {used:?}"
    );

    // Ground truth on concrete rings.
    for len in 2..7 {
        let l = List::build(ListKind::CircularDoubly, len);
        let (g, root) = l.heap_graph();
        let root = root.expect("nonempty");
        let target = g
            .targets(root, &a.to_regex())
            .into_iter()
            .collect::<Vec<_>>();
        assert_eq!(target.len(), 1);
        assert_ne!(target[0], root, "len {len}");
    }
}

#[test]
fn without_self_loop_axiom_the_query_is_maybe() {
    // Dropping S1/S2 re-admits the 1-cycle, where next.prev.next DOES
    // return to head — the prover must not find a proof.
    let axioms = AxiomSet::parse(
        "C1: forall p, p.next.prev = p.eps\n\
         C2: forall p, p.prev.next = p.eps\n\
         L1: forall p <> q, p.next <> q.next",
    )
    .expect("axioms parse");
    let mut prover = Prover::new(&axioms);
    let a = Path::parse("next.prev.next").expect("path");
    assert!(DepQuery::disjoint(&a, &Path::epsilon())
        .origin(Origin::Same)
        .run_with(&mut prover)
        .proof
        .is_none());
}

#[test]
fn ring_walk_loop_carried_dependence_is_real_and_not_disproven() {
    // On a circular list the Figure 1 loop DOES carry a dependence (the
    // walk laps): the prover must answer Maybe under circular axioms.
    let axioms = circular_dll_axioms();
    let mut prover = Prover::new(&axioms);
    assert!(
        DepQuery::disjoint(&Path::epsilon(), &Path::parse("next+").expect("path"))
            .origin(Origin::Same)
            .run_with(&mut prover)
            .proof
            .is_none()
    );
    // Ground truth: from any cell, next+ reaches the cell itself.
    let l = List::build(ListKind::CircularDoubly, 4);
    let (g, root) = l.heap_graph();
    let root = root.expect("nonempty");
    let reach = g.targets(root, &apt_regex::parse("next+").expect("regex"));
    assert!(reach.contains(&root));
}

#[test]
fn distinct_cells_next_prev_round_trips_stay_distinct() {
    // ∀x<>y: x.next.prev (= x) <> y.eps (= y) — rewriting inside a
    // distinct-origin goal.
    let axioms = circular_dll_axioms();
    let mut prover = Prover::new(&axioms);
    let a = Path::parse("next.prev").expect("path");
    let proof = DepQuery::disjoint(&a, &Path::epsilon())
        .origin(Origin::Distinct)
        .run_with(&mut prover)
        .proof
        .expect("x.next.prev = x <> y");
    check_proof(&axioms, &proof).expect("checker accepts");
}
