//! Soundness of the failure memo: a cached or published "no proof"
//! verdict must be a genuine, context-free property of the goal — never a
//! budget cutoff and never an artifact of the ancestor stack it was first
//! searched under.
//!
//! The prover publishes a failed goal to the engine's shared cache only
//! when the subtree search (1) never degraded, (2) never consulted an
//! in-progress ancestor, and (3) spent no equality-rewrite allowance.
//! These tests exercise each clause from the outside: starved runs must
//! leave no trace, every published failure must survive re-proving by an
//! unbudgeted linear-scan prover, and answers must not depend on the
//! order queries reached the engine.

use apt_axioms::adds::{
    leaf_linked_tree_axioms, sparse_matrix_axioms, sparse_matrix_minimal_axioms,
};
use apt_core::{Answer, Budget, DepEngine, DepQuery, Origin, ProverConfig};
use apt_regex::Path;

fn p(s: &str) -> Path {
    Path::parse(s).expect("test path parses")
}

/// A mixed workload over the Appendix A sparse-matrix set: provable
/// Theorem T instances, unprovable equality-shaped disjointness probes,
/// and loop-carried shapes.
fn sparse_workload() -> Vec<DepQuery> {
    let mut queries = Vec::new();
    for i in 1..=3usize {
        for j in 1..=3usize {
            queries.push(
                DepQuery::disjoint(
                    &p(&vec!["ncolE"; i].join(".")),
                    &p(&format!("{}.ncolE+", vec!["nrowE"; j].join("."))),
                )
                .origin(Origin::Same),
            );
            queries.push(
                DepQuery::disjoint(
                    &p(&vec!["ncolE"; i].join(".")),
                    &p(&vec!["nrowE"; j].join(".")),
                )
                .origin(Origin::Same),
            );
        }
        // Overlapping languages — genuinely unprovable disjointness.
        queries.push(
            DepQuery::disjoint(&p("ncolE+"), &p(&vec!["ncolE"; i].join("."))).origin(Origin::Same),
        );
        queries.push(
            DepQuery::disjoint(&p("nrowE*.ncolE"), &p(&vec!["ncolE"; i].join(".")))
                .origin(Origin::Same),
        );
        queries.push(DepQuery::equal(
            &p(&vec!["ncolE"; i].join(".")),
            &p(&vec!["nrowE"; i].join(".")),
        ));
    }
    queries
}

/// A starved query degrades to Maybe — and the degraded failure must not
/// be published: the shared failed-goal set stays empty, and re-running
/// the same query with the full budget on the same engine proves it.
#[test]
fn starved_failures_are_never_published() {
    // The §5 minimal set has no direct covering axiom for this goal, so
    // the proof needs a recursive search — fuel 1 must trip.
    let engine = DepEngine::new(sparse_matrix_minimal_axioms());
    let query = DepQuery::disjoint(&p("ncolE+"), &p("nrowE+.ncolE+")).origin(Origin::Same);
    let starved = query
        .clone()
        .with_budget(Budget::new().with_fuel(1))
        .run(&engine);
    assert_eq!(starved.verdict.answer, Answer::Maybe);
    assert!(starved.verdict.is_degraded(), "fuel 1 must trip");
    assert!(
        engine.shared_cache().failed_goal_snapshot().is_empty(),
        "a degraded subtree leaked into the shared failure set"
    );
    let funded = query.run(&engine);
    assert_eq!(
        funded.verdict.answer,
        Answer::No,
        "the starved attempt poisoned the engine"
    );
    assert!(funded.proof.is_some());
}

/// Every goal the engine publishes as Failed must still fail when
/// re-proved from scratch by a linear-scan prover with no dispatch, no
/// memo, and the default (generous) budget: publication never caches a
/// context- or budget-dependent failure.
#[test]
fn published_failures_are_genuinely_unprovable() {
    let engine = DepEngine::new(sparse_matrix_axioms());
    for query in sparse_workload() {
        query.run(&engine);
    }
    let snapshot = engine.shared_cache().failed_goal_snapshot();
    assert!(
        !snapshot.is_empty(),
        "workload should settle at least one unprovable goal"
    );
    assert_eq!(
        snapshot.total,
        engine.cache_stats().failed_goals,
        "snapshot total must agree with the live counter"
    );
    let failed = snapshot.sample;
    let linear = ProverConfig {
        enable_axiom_dispatch: false,
        enable_negative_memo: false,
        ..ProverConfig::default()
    };
    let referee = DepEngine::with_config(sparse_matrix_axioms(), linear);
    for goal in failed {
        let outcome = DepQuery::disjoint(goal.a(), goal.b())
            .origin(goal.origin())
            .run(&referee);
        assert!(
            outcome.proof.is_none(),
            "published failure {} <> {} ({:?}) is provable by the linear scan",
            goal.a(),
            goal.b(),
            goal.origin()
        );
        assert!(
            !outcome.verdict.is_degraded(),
            "referee degraded on {} <> {} — verdict inconclusive",
            goal.a(),
            goal.b()
        );
    }
}

/// Answers must not depend on the order queries reach the engine: the
/// memo may only re-serve verdicts, never let an earlier goal's subtree
/// change a later verdict.
#[test]
fn answers_are_order_independent() {
    let forward_engine = DepEngine::new(sparse_matrix_axioms());
    let reverse_engine = DepEngine::new(sparse_matrix_axioms());
    let workload = sparse_workload();
    let forward: Vec<Answer> = workload
        .iter()
        .map(|q| q.run(&forward_engine).verdict.answer)
        .collect();
    let mut reversed: Vec<Answer> = workload
        .iter()
        .rev()
        .map(|q| q.run(&reverse_engine).verdict.answer)
        .collect();
    reversed.reverse();
    assert_eq!(forward, reversed);
}

/// Engine answers with the memo on equal the answers with the memo off,
/// on both paper workloads.
#[test]
fn memo_on_and_off_agree() {
    let no_memo = ProverConfig {
        enable_negative_memo: false,
        ..ProverConfig::default()
    };
    let with = DepEngine::new(sparse_matrix_axioms());
    let without = DepEngine::with_config(sparse_matrix_axioms(), no_memo.clone());
    for query in sparse_workload() {
        assert_eq!(
            query.run(&with).verdict.answer,
            query.run(&without).verdict.answer
        );
    }

    let tree_with = DepEngine::new(leaf_linked_tree_axioms());
    let tree_without = DepEngine::with_config(leaf_linked_tree_axioms(), no_memo);
    for (a, b) in [
        ("L.L.N", "L.R.N"),
        ("L.N+", "R.N+"),
        ("N", "N.N"),
        ("L", "L"),
    ] {
        let q = DepQuery::disjoint(&p(a), &p(b)).origin(Origin::Same);
        assert_eq!(
            q.run(&tree_with).verdict.answer,
            q.run(&tree_without).verdict.answer,
            "{a} <> {b}"
        );
    }
}
