//! **apt** — an umbrella crate re-exporting the whole APT reproduction.
//!
//! This workspace reproduces Hummel, Hendren & Nicolau, *A General Data
//! Dependence Test for Dynamic, Pointer-Based Data Structures* (PLDI
//! 1994). The subsystems:
//!
//! * [`regex`] — regular expressions over pointer-field alphabets (NFA,
//!   DFA, subset test, derivatives, the component-path view);
//! * [`axioms`] — the three aliasing-axiom forms, the ADDS-like
//!   description layer, heap graphs, and the axiom model checker;
//! * [`core`] — the APT theorem prover and the `deptest` entry point;
//! * [`ir`] — the mini imperative pointer language;
//! * [`paths`] — access-path matrices and the §3.3 flow analysis;
//! * [`baselines`] — the k-limited, Larus–Hilfinger, and Hendren–Nicolau
//!   comparison testers;
//! * [`heaps`] — leaf-linked trees, lists, orthogonal-list sparse matrices
//!   with Gaussian elimination, 2-D range trees;
//! * [`parsim`] — the multiprocessor scheduling model for the Figure 7
//!   speedup study;
//! * [`serve`] — the resident dependence-query daemon: compiled axiom-set
//!   sessions behind a JSON-lines protocol on TCP/Unix sockets, with
//!   admission control and live metrics.
//!
//! Most programs only need the [`prelude`]:
//!
//! ```
//! use apt::prelude::*;
//!
//! let axioms = parse_adds("structure Tree { tree L, R; }").unwrap();
//! let engine = DepEngine::new(axioms);
//! let p = Path::parse("L.L").unwrap();
//! let q = Path::parse("L.R").unwrap();
//! let outcome = DepQuery::disjoint(&p, &q).origin(Origin::Same).run(&engine);
//! assert!(outcome.proof.is_some());
//! ```
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use apt_axioms as axioms;
pub use apt_baselines as baselines;
pub use apt_core as core;
pub use apt_heaps as heaps;
pub use apt_ir as ir;
pub use apt_parsim as parsim;
pub use apt_paths as paths;
pub use apt_regex as regex;
pub use apt_serve as serve;

pub mod prelude {
    //! The types most users need, in one import.
    //!
    //! Covers the query layer (build a [`DepQuery`], run it on a
    //! [`DepEngine`]), the statement-level tester ([`DepTest`]), the
    //! whole-procedure analysis ([`analyze_proc`] and batch queries), the
    //! whole-program incremental analysis ([`analyze_program`] and its
    //! [`DepTable`]), and the axiom/path inputs they consume.

    pub use apt_axioms::{adds::parse_adds, Axiom, AxiomSet};
    pub use apt_core::{
        AccessPath, Answer, Budget, CacheStats, DepEngine, DepQuery, DepTest, FieldLayout, Handle,
        HandleRelation, MaybeReason, MemRef, Origin, Outcome, Proof, Prover, ProverConfig,
        ProverStats, TestOutcome, Verdict,
    };
    pub use apt_ir::parse_program;
    pub use apt_paths::{
        analyze_proc, analyze_program, Analysis, BatchOptions, BatchQuery, BatchReport, DepTable,
        ProgramAnalysis, ProgramReport, QueryError, RowOutcome,
    };
    pub use apt_regex::{Path, Regex};
}
