//! **apt** — an umbrella crate re-exporting the whole APT reproduction.
//!
//! This workspace reproduces Hummel, Hendren & Nicolau, *A General Data
//! Dependence Test for Dynamic, Pointer-Based Data Structures* (PLDI
//! 1994). The subsystems:
//!
//! * [`regex`] — regular expressions over pointer-field alphabets (NFA,
//!   DFA, subset test, derivatives, the component-path view);
//! * [`axioms`] — the three aliasing-axiom forms, the ADDS-like
//!   description layer, heap graphs, and the axiom model checker;
//! * [`core`] — the APT theorem prover and the `deptest` entry point;
//! * [`ir`] — the mini imperative pointer language;
//! * [`paths`] — access-path matrices and the §3.3 flow analysis;
//! * [`baselines`] — the k-limited, Larus–Hilfinger, and Hendren–Nicolau
//!   comparison testers;
//! * [`heaps`] — leaf-linked trees, lists, orthogonal-list sparse matrices
//!   with Gaussian elimination, 2-D range trees;
//! * [`parsim`] — the multiprocessor scheduling model for the Figure 7
//!   speedup study.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use apt_axioms as axioms;
pub use apt_baselines as baselines;
pub use apt_core as core;
pub use apt_heaps as heaps;
pub use apt_ir as ir;
pub use apt_parsim as parsim;
pub use apt_paths as paths;
pub use apt_regex as regex;
